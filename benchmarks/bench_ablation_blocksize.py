"""Ablation: CUDA thread-block granularity (§3.2).

"warps are grouped into blocks depending on the CUDA thread block
granularity" — this sweep varies warps-per-block and reports the modelled
full-workload time on each device, exposing the occupancy cliff (Fermi's
1536-thread SM limit prefers 256-thread blocks; huge blocks quantise badly).
"""

from __future__ import annotations

from repro.engine.executor import MultiGpuExecutor
from repro.experiments.trace import analytic_trace
from repro.hardware.cuda import KernelConfig, launch_geometry, occupancy_blocks_per_sm
from repro.hardware.node import hertz

from conftest import emit

WARPS_CHOICES = (1, 2, 4, 8, 16, 32)


def _sweep():
    trace = analytic_trace("M2", 919, 3264, 45)
    rows = []
    for warps in WARPS_CHOICES:
        config = KernelConfig(warps_per_block=warps)
        executor = MultiGpuExecutor(hertz(), config=config, seed=13)
        timing, _ = executor.replay(trace, "gpu-heterogeneous")
        occupancies = [
            launch_geometry(gpu, 10_000, config).occupancy for gpu in hertz().gpus
        ]
        rows.append((warps, timing.total_s, occupancies))
    return rows


def test_blocksize_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: thread-block granularity on Hertz (M2/2BSM, het computation)",
        "\n".join(
            f"{w:3d} warps/block ({w * 32:5d} threads): {t:8.2f} s   "
            f"occupancy K40c {o[0]:.2f} / GTX580 {o[1]:.2f}"
            for w, t, o in rows
        ),
    )
    times = {w: t for w, t, _ in rows}
    # The default (8 warps = 256 threads) achieves full occupancy on both
    # devices and must be within a whisker of the best configuration.
    assert times[8] <= min(times.values()) * 1.02
    # Tiny blocks leave Fermi's block-slot limit binding: strictly worse.
    assert times[1] > times[8]
    # 256-thread blocks reach full occupancy everywhere.
    for gpu in hertz().gpus:
        config = KernelConfig(warps_per_block=8)
        per_sm = occupancy_blocks_per_sm(gpu, config)
        assert per_sm * config.threads_per_block == gpu.max_threads_per_sm
