"""Ablation: energy to solution (§6's "waste energy" + Table 1's perf/W).

Prices every execution strategy in joules on both machines: the GPU path
finishes so much sooner that it wins on energy despite burning more watts,
and on Hertz the balanced schedulers cut the idle-GPU waste of the equal
split.
"""

from __future__ import annotations

from repro.engine.executor import MultiGpuExecutor
from repro.experiments.trace import analytic_trace
from repro.hardware.energy import energy_report
from repro.hardware.node import hertz, jupiter

from conftest import emit

MODES = ("openmp", "gpu-homogeneous", "gpu-heterogeneous", "gpu-dynamic")


def _sweep(node):
    trace = analytic_trace("M2", 919, 3264, 45)
    executor = MultiGpuExecutor(node, seed=9)
    rows = []
    for mode in MODES:
        timing, _ = executor.replay(trace, mode)
        report = energy_report(node, timing, gpus_used=mode != "openmp")
        rows.append((mode, timing.total_s, report))
    return rows


def _format(rows) -> str:
    return "\n".join(
        f"{mode:20s} {t:9.2f} s  {r.total_j / 1e3:9.2f} kJ  "
        f"(idle waste {r.waste_fraction:5.1%})"
        for mode, t, r in rows
    )


def test_energy_hertz(benchmark):
    rows = benchmark.pedantic(lambda: _sweep(hertz()), rounds=1, iterations=1)
    emit("Ablation: energy to solution on Hertz (M2/2BSM)", _format(rows))
    energy = {mode: r.total_j for mode, _, r in rows}
    # GPUs beat the CPU on energy, not just time.
    assert energy["gpu-heterogeneous"] < energy["openmp"] / 5
    # Balancing also saves energy (less idle waste on the K40c).
    assert energy["gpu-heterogeneous"] < energy["gpu-homogeneous"]


def test_energy_jupiter(benchmark):
    rows = benchmark.pedantic(lambda: _sweep(jupiter()), rounds=1, iterations=1)
    emit("Ablation: energy to solution on Jupiter (M2/2BSM)", _format(rows))
    energy = {mode: r.total_j for mode, _, r in rows}
    assert energy["gpu-heterogeneous"] < energy["openmp"] / 5
    # Near-equal GPUs: balancing changes energy only marginally.
    ratio = energy["gpu-homogeneous"] / energy["gpu-heterogeneous"]
    assert 0.9 < ratio < 1.15
