"""Ablation: scheduling strategy (the abstract's "dynamic assignment of
jobs" and "cooperative scheduling").

Compares the three schedulers on both machines for the same full-scale M2
workload: static equal (Algorithm 2), static proportional (warm-up, Eq. 1)
and the dynamic cooperative spot queue. Expected shape: on Hertz the
balanced schedulers beat the equal split by ~1.3–1.6×; the dynamic queue
matches the warm-up split without needing a warm-up phase; on Jupiter all
three are within a few percent.
"""

from __future__ import annotations

from repro.engine.executor import MultiGpuExecutor
from repro.experiments.trace import analytic_trace
from repro.hardware.node import hertz, jupiter

from conftest import emit

MODES = ("gpu-homogeneous", "gpu-heterogeneous", "gpu-dynamic")


def _compare(node):
    trace = analytic_trace("M2", 919, 3264, 45)
    executor = MultiGpuExecutor(node, seed=11)
    out = {}
    for mode in MODES:
        timing, scheduler = executor.replay(trace, mode)
        out[mode] = (timing.total_s, timing.balance, scheduler)
    return out


def _format(results) -> str:
    return "\n".join(
        f"{mode:18s} ({sched:20s}) {t:9.2f} s   balance {b:5.3f}"
        for mode, (t, b, sched) in results.items()
    )


def test_scheduler_ablation_hertz(benchmark):
    results = benchmark.pedantic(lambda: _compare(hertz()), rounds=1, iterations=1)
    emit("Ablation: schedulers on Hertz (M2/2BSM full scale)", _format(results))
    equal_t = results["gpu-homogeneous"][0]
    warm_t = results["gpu-heterogeneous"][0]
    dyn_t = results["gpu-dynamic"][0]
    assert 1.25 < equal_t / warm_t < 1.65
    assert 1.25 < equal_t / dyn_t < 1.70
    # The dynamic queue needs no warm-up and balances at least as well.
    assert dyn_t <= warm_t * 1.10
    # Balance diagnostics: equal split leaves the K40c idle.
    assert results["gpu-homogeneous"][1] < results["gpu-dynamic"][1]


def test_scheduler_ablation_jupiter(benchmark):
    results = benchmark.pedantic(lambda: _compare(jupiter()), rounds=1, iterations=1)
    emit("Ablation: schedulers on Jupiter (M2/2BSM full scale)", _format(results))
    equal_t = results["gpu-homogeneous"][0]
    warm_t = results["gpu-heterogeneous"][0]
    dyn_t = results["gpu-dynamic"][0]
    # Near-homogeneous GPUs: all schedulers within ~10 %.
    assert 0.95 < equal_t / warm_t < 1.12
    assert 0.95 < equal_t / dyn_t < 1.12
