"""Ablation: cooperative scheduling of whole-ligand jobs.

The abstract's "dynamic assignment of jobs to heterogeneous resources which
perform independent metaheuristic executions under different molecular
interactions": in a library screen the jobs are whole per-ligand docking
runs of *different sizes*. Compares naive round-robin pre-assignment with
the cooperative pull queue on Hertz, for uniform and mixed ligand
libraries.
"""

from __future__ import annotations

import numpy as np

from repro.engine.screening_schedule import (
    LigandWorkload,
    dynamic_screening_makespan,
    static_screening_makespan,
)
from repro.experiments.trace import analytic_trace
from repro.hardware.node import hertz

from conftest import emit


def _library(sizes):
    return [
        LigandWorkload(
            ligand_id=i,
            trace=analytic_trace("M3", 32, 3264, int(n), workload_scale=0.5),
        )
        for i, n in enumerate(sizes)
    ]


def test_screening_schedule_ablation(benchmark):
    node = hertz()
    rng = np.random.default_rng(17)
    libraries = {
        "uniform (24 x 32-atom)": [32] * 24,
        "mixed (24 x 10..64-atom)": rng.integers(10, 65, 24).tolist(),
    }

    def run():
        rows = []
        for label, sizes in libraries.items():
            work = _library(sizes)
            static = static_screening_makespan(work, node)
            dynamic = dynamic_screening_makespan(work, node)
            rows.append((label, static, dynamic))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: whole-ligand job scheduling on Hertz (M3 per ligand)",
        "\n".join(
            f"{label:26s} round-robin {s.makespan_s:7.3f}s (balance {s.balance:5.3f})"
            f"   pull-queue {d.makespan_s:7.3f}s (balance {d.balance:5.3f})"
            f"   gain {s.makespan_s / d.makespan_s:5.2f}x"
            for label, s, d in rows
        ),
    )
    for _, static, dynamic in rows:
        assert dynamic.makespan_s < static.makespan_s
        assert dynamic.balance > static.balance
    # Size heterogeneity hurts the static schedule more than the dynamic one.
    uniform_gain = rows[0][1].makespan_s / rows[0][2].makespan_s
    mixed_gain = rows[1][1].makespan_s / rows[1][2].makespan_s
    assert mixed_gain > uniform_gain * 0.9  # at least comparable, usually larger
