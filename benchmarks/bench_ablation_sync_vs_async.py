"""Ablation: Algorithm 2's per-launch barrier vs independent per-spot runs.

The paper's §3.2 (Algorithm 2) splits *every launch* across devices and
synchronises; §3.3 emphasises that spot searches are independent. This
ablation quantifies the barrier cost: the asynchronous decomposition drops
both the per-launch straggler wait and the serial host section, at the
price of spot-granular balance.
"""

from __future__ import annotations

import numpy as np

from repro.engine.async_mode import simulate_async_trace
from repro.engine.executor import MultiGpuExecutor
from repro.experiments.trace import analytic_trace
from repro.hardware.node import hertz, jupiter

from conftest import emit


def _compare(node, n_spots):
    trace = analytic_trace("M2", n_spots, 3264, 45)
    executor = MultiGpuExecutor(node, seed=19)
    sync, _ = executor.replay(trace, "gpu-heterogeneous")
    weights = np.array([g.pairs_per_sec for g in node.gpus])
    async_t = simulate_async_trace(trace, node, weights)
    return sync, async_t


def test_sync_vs_async(benchmark):
    def run():
        rows = []
        for node in (jupiter(), hertz()):
            for n_spots in (16, 64, 919):
                sync, async_t = _compare(node, n_spots)
                rows.append((node.name, n_spots, sync, async_t))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: Algorithm 2 barrier vs independent per-spot execution (M2/2BSM)",
        "\n".join(
            f"{name:8s} {spots:4d} spots: sync {s.total_s:8.3f}s "
            f"(host {s.host_s:6.3f}s)   async {a.total_s:8.3f}s "
            f"(balance {a.balance:5.3f})   barrier cost {s.total_s / a.total_s:5.2f}x"
            for name, spots, s, a in rows
        ),
    )
    for _, n_spots, sync, async_t in rows:
        # Async never loses at realistic spot counts (fine granularity).
        if n_spots >= 64:
            assert async_t.total_s <= sync.total_s * 1.02
    # The barrier + serial-host cost is visible but bounded at paper scale.
    full = [r for r in rows if r[1] == 919]
    for _, _, sync, async_t in full:
        assert 1.0 <= sync.total_s / async_t.total_s < 1.6
