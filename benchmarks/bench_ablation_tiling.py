"""Ablation: shared-memory tiling (§5).

"Our CUDA implementations take advantage of data-locality through tiling
implementation via shared memory, which benefits the receptor scalability."

Two views:

1. *Host microbenchmark*: the tile-looped scorer versus the naive row
   scorer on the real NumPy kernels (pytest-benchmark timings) — tiling
   bounds the working set, which on large receptors keeps operands in
   cache.
2. *Model view*: without tiling, every warp would stream the receptor from
   DRAM; the roofline then turns the kernel memory-bound on large
   receptors. We quantify the modelled effect by recomputing launch times
   with per-warp (untiled) traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.perf_model import gpu_launch_time
from repro.hardware.registry import get_gpu
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.molecules.transforms import random_quaternion
from repro.scoring.base import OPS_PER_LJ_PAIR
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.tiled import TiledLennardJonesScoring

from conftest import emit


@pytest.fixture(scope="module")
def complex_and_poses():
    receptor = generate_receptor(2000, seed=31)
    ligand = generate_ligand(24, seed=32)
    rng = np.random.default_rng(33)
    translations = rng.normal(0, 12, (32, 3))
    quaternions = random_quaternion(rng, 32)
    return receptor, ligand, translations, quaternions


def test_host_naive_scorer(benchmark, complex_and_poses):
    receptor, ligand, t, q = complex_and_poses
    scorer = LennardJonesScoring(chunk_size=16).bind(receptor, ligand)
    scorer.score(t[:4], q[:4])  # warm
    benchmark(scorer.score, t, q)


def test_host_tiled_scorer(benchmark, complex_and_poses):
    receptor, ligand, t, q = complex_and_poses
    scorer = TiledLennardJonesScoring(tile=128, chunk_size=16).bind(receptor, ligand)
    scorer.score(t[:4], q[:4])
    benchmark(scorer.score, t, q)


def test_tiled_equals_naive(complex_and_poses):
    receptor, ligand, t, q = complex_and_poses
    naive = LennardJonesScoring().bind(receptor, ligand).score(t, q)
    tiled = TiledLennardJonesScoring(tile=128).bind(receptor, ligand).score(t, q)
    np.testing.assert_allclose(tiled, naive, rtol=1e-9)


def test_modelled_untiled_kernel_is_memory_bound(benchmark):
    """Without shared-memory staging every thread of a warp re-reads the
    receptor from DRAM (×32 traffic amplification once the working set
    leaves L2). The modelled untiled kernel flips to the memory side of the
    roofline and slows down at every receptor size of the evaluation."""
    gpu = get_gpu("GeForce GTX 590")
    l2_bytes = 768 * 1024

    def sweep():
        rows = []
        for n_rec in (3264, 8609, 20000):
            flops = n_rec * 45 * OPS_PER_LJ_PAIR
            tiled = gpu_launch_time(gpu, 50_000, flops)
            # Per-thread redundant loads; L2 absorbs them only while the
            # receptor fits (20 B/atom × 32 threads of footprint pressure).
            amplification = 32.0 if n_rec * 20 * 32 > l2_bytes else 1.0
            untiled = gpu_launch_time(
                gpu, 50_000, flops, bytes_per_pose=n_rec * 20.0 * amplification
            )
            rows.append((n_rec, tiled, untiled))
        return rows

    rows = benchmark(sweep)
    emit(
        "Ablation: modelled tiled vs untiled kernel (GTX 590, 50k poses)",
        "\n".join(
            f"n_rec {n:6d}: tiled {a.total_s:8.3f}s (compute-bound)  "
            f"untiled {b.total_s:8.3f}s (memory {b.memory_s:7.3f}s)  "
            f"slowdown {b.total_s / a.total_s:5.2f}x"
            for n, a, b in rows
        ),
    )
    for _, tiled, untiled in rows:
        assert tiled.compute_s > tiled.memory_s  # tiled: compute-bound
        assert untiled.memory_s > untiled.compute_s  # untiled: memory-bound
        assert untiled.total_s > 1.2 * tiled.total_s
