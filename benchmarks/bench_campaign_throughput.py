"""Campaign benchmark: durable-store throughput and resume overhead.

Runs a synthetic screening campaign end-to-end through the durable
:class:`CampaignRunner` path (SQLite store + fsync'd journal), then measures
what durability costs:

* ``ligands_per_second`` — end-to-end campaign throughput, all durability
  writes included,
* ``resume_noop_seconds`` — the fixed cost of resuming an already-complete
  campaign (journal replay + store reconciliation, zero docking),
* ``store_bytes_per_1k_ligands`` — on-disk footprint of the result store,
  normalised so different scales are comparable,
* ``journal_bytes`` — the write-ahead journal's footprint,
* ``ligands_per_second_persistent_pool`` / ``ligands_per_second_fresh_pool``
  / ``persistent_pool_speedup`` — the same campaign on 2 host worker
  processes, with the campaign-owned persistent pool vs a fresh pool
  (spawn + receptor staging + Eq. 1 warm-up) per ligand.

The docking work itself dominates wall-clock by design (that is the honest
baseline: durability overhead should be measured against real work, not an
empty loop). The smoke variant keeps CI fast; the assertions check
correctness and that the fixed resume cost stays small, not absolute
wall-clock.

Run standalone::

    python benchmarks/bench_campaign_throughput.py [--smoke] [--out artifact.json]

or through pytest (smoke scale): ``pytest benchmarks/bench_campaign_throughput.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.campaign import CampaignRunner, SyntheticSource
from repro.molecules.synthetic import generate_receptor

#: (name, receptor atoms, ligands, shard size)
FULL_CASES = [("steady", 600, 96, 16), ("fine-shards", 600, 96, 4)]
SMOKE_CASES = [("smoke", 300, 12, 4)]


def _make_runner(
    workdir, receptor, n_ligands, shard_size, seed=7,
    name="campaign.sqlite", **overrides,
):
    return CampaignRunner(
        receptor,
        SyntheticSource(n_ligands, atoms_range=(8, 14), seed=seed + 1),
        store_path=os.path.join(workdir, name),
        n_spots=2,
        metaheuristic="M1",
        seed=seed,
        workload_scale=0.05,
        shard_size=shard_size,
        **overrides,
    )


def bench_case(name, n_rec, n_ligands, shard_size, seed=7):
    """Benchmark one campaign; returns the artifact dict for this case."""
    receptor = generate_receptor(n_rec, seed=seed, title=name)
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as workdir:
        runner = _make_runner(workdir, receptor, n_ligands, shard_size, seed=seed)

        t0 = time.perf_counter()
        with runner.run() as store:
            run_seconds = time.perf_counter() - t0
            counts = store.counts()
            complete = store.is_complete()
        store_bytes = os.path.getsize(runner.store_path)
        journal_bytes = os.path.getsize(runner.journal.path)

        t0 = time.perf_counter()
        with _make_runner(
            workdir, receptor, n_ligands, shard_size, seed=seed
        ).resume() as store:
            resume_noop_seconds = time.perf_counter() - t0
            resumed_counts = store.counts()

        # Host-pool mode comparison: the same campaign on 2 worker
        # processes with one persistent pool for the whole run vs a fresh
        # pool (spawn + receptor staging + warm-up) per ligand. Capped so
        # the fresh-pool column stays affordable at full scale.
        pool_ligands = min(n_ligands, 16)
        pool_seconds = {}
        for label, persistent in (("persistent_pool", True), ("fresh_pool", False)):
            t0 = time.perf_counter()
            with _make_runner(
                workdir, receptor, pool_ligands, shard_size, seed=seed,
                name=f"{label}.sqlite", host_workers=2,
                persistent_pool=persistent,
            ).run():
                pool_seconds[label] = time.perf_counter() - t0

    return {
        "case": name,
        "receptor_atoms": n_rec,
        "ligands": n_ligands,
        "shard_size": shard_size,
        "run_seconds": run_seconds,
        "ligands_per_second": n_ligands / run_seconds,
        "resume_noop_seconds": resume_noop_seconds,
        "store_bytes": store_bytes,
        "store_bytes_per_1k_ligands": store_bytes / n_ligands * 1000,
        "journal_bytes": journal_bytes,
        "pool_ligands": pool_ligands,
        "ligands_per_second_persistent_pool": (
            pool_ligands / pool_seconds["persistent_pool"]
        ),
        "ligands_per_second_fresh_pool": pool_ligands / pool_seconds["fresh_pool"],
        "persistent_pool_speedup": (
            pool_seconds["fresh_pool"] / pool_seconds["persistent_pool"]
        ),
        "complete": bool(complete),
        "counts": counts,
        "counts_after_resume": resumed_counts,
    }


def run_benchmark(smoke=False, out_path=None):
    cases = SMOKE_CASES if smoke else FULL_CASES
    artifact = {
        "benchmark": "campaign_throughput",
        "cases": [
            bench_case(name, n_rec, n_ligands, shard_size)
            for name, n_rec, n_ligands, shard_size in cases
        ],
    }
    if out_path:
        from table_utils import write_bench_artifact

        write_bench_artifact("campaign_throughput", artifact, path=out_path)
    return artifact


def _report(artifact):
    lines = []
    for case in artifact["cases"]:
        lines.append(
            f"{case['case']}: {case['ligands']} ligands, shard size "
            f"{case['shard_size']}, {case['ligands_per_second']:.2f} lig/s "
            f"({case['run_seconds']:.2f} s total)"
        )
        lines.append(
            f"  resume no-op: {case['resume_noop_seconds'] * 1e3:.1f} ms   "
            f"store: {case['store_bytes_per_1k_ligands'] / 1024:.1f} KiB per "
            f"1k ligands   journal: {case['journal_bytes']} B"
        )
        lines.append(
            f"  host pool x{case['pool_ligands']} ligands: persistent "
            f"{case['ligands_per_second_persistent_pool']:.2f} lig/s, fresh "
            f"{case['ligands_per_second_fresh_pool']:.2f} lig/s "
            f"({case['persistent_pool_speedup']:.1f}x)"
        )
        counts = case["counts"]
        lines.append(
            f"  done {counts['done']}, failed {counts['failed']}, "
            f"complete={'yes' if case['complete'] else 'NO'}"
        )
    return "\n".join(lines)


def test_campaign_throughput_smoke(benchmark, tmp_path):
    """CI smoke: a tiny durable campaign — correctness over wall-clock."""
    out = tmp_path / "campaign_throughput.json"
    artifact = benchmark.pedantic(
        lambda: run_benchmark(smoke=True, out_path=str(out)),
        rounds=1,
        iterations=1,
    )
    from conftest import emit
    from table_utils import load_bench_artifact

    emit("Campaign — durable throughput smoke", _report(artifact))
    assert load_bench_artifact(out)["benchmark"] == "campaign_throughput"
    for case in artifact["cases"]:
        assert case["complete"], "campaign must run to completion"
        assert case["counts"]["done"] == case["ligands"]
        assert case["counts"]["failed"] == 0
        # A no-op resume must not re-dock anything...
        assert case["counts_after_resume"] == case["counts"]
        # ...and its fixed cost must be a small fraction of the real run.
        assert case["resume_noop_seconds"] < case["run_seconds"]
        assert case["ligands_per_second"] > 0
        # Reusing one pool must beat spawning one per ligand.
        assert case["persistent_pool_speedup"] > 1.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small/fast variant")
    parser.add_argument(
        "--out", default="campaign_throughput.json", help="JSON artifact"
    )
    args = parser.parse_args(argv)
    artifact = run_benchmark(smoke=args.smoke, out_path=args.out)
    print(_report(artifact))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
