"""Paper Eq. 1 and §3.3: the warm-up phase.

Regenerates the Percent computation on both machines and checks its
properties: the slowest GPU anchors at 1.0, shares are inversely
proportional, and — the paper's claim — "five to ten iterations" suffice
(more iterations barely change the weights).
"""

from __future__ import annotations

import numpy as np

from repro.engine.warmup import run_warmup
from repro.hardware.node import hertz, jupiter
from repro.scoring.base import OPS_PER_LJ_PAIR

from conftest import emit

FLOPS = 3264 * 45 * OPS_PER_LJ_PAIR


def _format(node, result) -> str:
    lines = [f"{'device':20s} {'measured (ms)':>14s} {'Percent':>8s} {'share':>7s}"]
    for gpu, t, p, w in zip(
        node.gpus, result.measured_times, result.percent, result.weights
    ):
        lines.append(f"{gpu.name:20s} {t * 1e3:14.3f} {p:8.3f} {w:7.3f}")
    lines.append(f"warm-up elapsed: {result.elapsed_s * 1e3:.2f} ms")
    return "\n".join(lines)


def test_eq1_percent_hertz(benchmark):
    node = hertz()
    rng = np.random.default_rng(7)
    result = benchmark.pedantic(
        lambda: run_warmup(node.gpus, FLOPS, rng=np.random.default_rng(7)),
        rounds=1,
        iterations=1,
    )
    emit(
        "Eq. 1 warm-up — Hertz (K40c + GTX 580)",
        _format(node, result),
        name="eq1_warmup_hertz",
        data={
            "measured_s": result.measured_times.tolist(),
            "percent": result.percent.tolist(),
            "weights": result.weights.tolist(),
        },
    )
    assert result.percent.max() == 1.0
    assert result.percent[0] < result.percent[1]  # K40c faster
    assert result.weights[0] > 0.55  # K40c takes most of the work
    del rng


def test_eq1_percent_jupiter(benchmark):
    node = jupiter()
    result = benchmark.pedantic(
        lambda: run_warmup(node.gpus, FLOPS, rng=np.random.default_rng(8)),
        rounds=1,
        iterations=1,
    )
    emit(
        "Eq. 1 warm-up — Jupiter (4× GTX 590 + 2× C2075)",
        _format(node, result),
        name="eq1_warmup_jupiter",
        data={
            "measured_s": result.measured_times.tolist(),
            "percent": result.percent.tolist(),
            "weights": result.weights.tolist(),
        },
    )
    # Near-uniform shares: the Fermi cards are nearly equal.
    assert result.weights.max() / result.weights.min() < 1.3


def test_five_to_ten_iterations_suffice(benchmark):
    """§3.3: warm-up runs 'five to ten' iterations. Verify that weights
    computed from 5–10 iterations already sit within a few percent of a
    100-iteration reference (noise averages out fast)."""
    node = hertz()

    def weights_at(iters, seed=0):
        return run_warmup(
            node.gpus, FLOPS, iterations=iters, rng=np.random.default_rng(seed)
        ).weights

    reference = benchmark.pedantic(
        lambda: weights_at(100), rounds=1, iterations=1
    )
    rows = []
    for iters in (1, 2, 5, 8, 10, 20):
        w = weights_at(iters)
        err = float(np.abs(w - reference).max())
        rows.append(f"{iters:4d} iterations: shares {w.round(3)}  max dev {err:.4f}")
        if 5 <= iters <= 10:
            assert err < 0.03
    emit(
        "Warm-up length sweep (deviation from 100-iteration reference)",
        "\n".join(rows),
        name="eq1_warmup_sweep",
        data={"reference_weights": reference.tolist()},
    )
