"""Paper Figure 1: "Binding two molecules; receptor (red) and ligand (blue)".

The figure is an illustration of a docked complex. We regenerate it as data:
dock the benchmark ligand against the receptor, emit the best complex as a
PDB artifact plus an ASCII depth-projection (receptor ``#``, ligand ``@``),
and assert the geometric properties a correct binding figure shows — the
ligand nestled against the receptor surface, in van-der-Waals contact,
without interpenetration.
"""

from __future__ import annotations

import numpy as np

from repro.molecules.pdb import dumps_pdb
from repro.vs.docking import dock
from repro.vs.visualize import ascii_projection

from conftest import emit


def test_figure1_binding(benchmark, bench_receptor, bench_ligand, tmp_path):
    result = benchmark.pedantic(
        lambda: dock(
            bench_receptor,
            bench_ligand,
            n_spots=6,
            metaheuristic="M2",
            workload_scale=0.2,
            seed=1,
        ),
        rounds=1,
        iterations=1,
    )
    docked = result.docked_ligand()
    art = ascii_projection([(bench_receptor, "#"), (docked, "@")])
    emit(
        "Paper Figure 1 — docked complex "
        f"(receptor '#', ligand '@', best score {result.best_score:.2f} kcal/mol)",
        art,
    )
    pdb_path = tmp_path / "figure1_complex.pdb"
    pdb_path.write_text(dumps_pdb(result.complex_molecule()))
    assert pdb_path.stat().st_size > 0

    # Figure-correctness assertions: bound, touching, not interpenetrating.
    assert result.best_score < -5.0
    d = np.linalg.norm(
        bench_receptor.coords[None, :, :] - docked.coords[:, None, :], axis=-1
    )
    assert 1.2 < d.min() < 4.5  # van-der-Waals contact, no clash
    centroid_dist = np.linalg.norm(docked.coords.mean(axis=0) - bench_receptor.centroid())
    assert centroid_dist < bench_receptor.max_radius() + 8.0  # at the surface
