"""Future work (§6): flexible-ligand docking.

The paper docks rigid ligands; AutoDock-class engines also search ligand
torsions. This bench runs the flexible extension against the rigid engine
on the same complex and quantifies the cost of the extra degrees of
freedom (conformer construction per pose).
"""

from __future__ import annotations

import numpy as np

from repro.molecules.flexibility import FlexibleLigand
from repro.vs.docking import dock
from repro.vs.flexible import dock_flexible

from conftest import emit


def test_flexible_vs_rigid(benchmark, bench_receptor, bench_ligand, bench_spots):
    flex_info = FlexibleLigand(bench_ligand, max_torsions=6)

    rigid = dock(
        bench_receptor,
        bench_ligand,
        spots=bench_spots,
        metaheuristic="M2",
        workload_scale=0.1,
        seed=3,
    )
    flexible = benchmark.pedantic(
        lambda: dock_flexible(
            bench_receptor,
            bench_ligand,
            spots=bench_spots,
            max_torsions=6,
            walkers_per_spot=8,
            steps=30,
            seed=3,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Future work: flexible vs rigid docking",
        f"ligand rotatable bonds searched: {flexible.n_torsions} "
        f"(of {FlexibleLigand(bench_ligand).n_torsions} total)\n"
        f"rigid    best {rigid.best_score:10.2f} kcal/mol "
        f"({rigid.evaluations} evaluations)\n"
        f"flexible best {flexible.best_score:10.2f} kcal/mol "
        f"({flexible.evaluations} evaluations)",
    )
    assert flex_info.n_torsions > 0  # the synthetic ligands are flexible
    assert flexible.best_score < -5.0
    assert np.isfinite(flexible.best_score)
    # Every reported pose preserves the ligand's covalent geometry.
    for pose in flexible.per_spot:
        conf = flex_info.conformer(pose.torsions[: flex_info.n_torsions])
        assert flex_info.bond_lengths_preserved(conf, atol=1e-5)
