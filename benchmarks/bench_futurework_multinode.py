"""Future work (§6): multi-node message-passing clusters.

"adapt our virtual screening method to more complex systems comprising
several computational nodes working together with the message-passing
paradigm". Simulates the M4/2BSM workload on clusters built from Jupiter
and Hertz nodes, reporting scaling and the communication share.
"""

from __future__ import annotations

from repro.engine.cluster import ClusterSpec, simulate_cluster_run
from repro.engine.executor import MultiGpuExecutor
from repro.experiments.datasets import get_dataset
from repro.experiments.trace import analytic_trace
from repro.hardware.node import hertz, jupiter

from conftest import emit


def _workload():
    dataset = get_dataset("2BSM")
    trace = analytic_trace(
        "M4", dataset.n_spots, dataset.receptor_atoms, dataset.ligand_atoms
    )
    # Broadcast payload: receptor + ligand coordinates and parameters (SP).
    structure_bytes = (dataset.receptor_atoms + dataset.ligand_atoms) * 5 * 4
    return dataset, trace, structure_bytes


def test_multinode_scaling(benchmark):
    dataset, trace, payload = _workload()

    def sweep():
        rows = []
        for label, nodes in (
            ("1x Jupiter", (jupiter(),)),
            ("2x Jupiter", (jupiter(),) * 2),
            ("4x Jupiter", (jupiter(),) * 4),
            ("8x Jupiter", (jupiter(),) * 8),
        ):
            cluster = ClusterSpec(name=label, nodes=nodes)
            timing = simulate_cluster_run(
                cluster, trace, dataset.n_spots, payload
            )
            rows.append((label, timing))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = rows[0][1].total_s
    emit(
        "Future work: multi-node scaling (M4/2BSM, heterogeneous computation)",
        "\n".join(
            f"{label:12s} {t.total_s:9.2f} s  speed-up {base / t.total_s:5.2f}x  "
            f"comm {(t.broadcast_s + t.gather_s) * 1e3:7.3f} ms  balance {t.balance:5.3f}"
            for label, t in rows
        ),
    )
    speedups = [base / t.total_s for _, t in rows]
    assert speedups == sorted(speedups)
    assert speedups[2] > 3.2  # 4 nodes near-linear
    # Communication is negligible against the compute (spot independence).
    for _, timing in rows:
        assert timing.broadcast_s + timing.gather_s < 0.01 * timing.total_s


def test_mixed_cluster_balances_by_node_power(benchmark):
    dataset, trace, payload = _workload()

    def run():
        cluster = ClusterSpec(
            name="jupiter+hertz", nodes=(jupiter(), hertz())
        )
        return simulate_cluster_run(cluster, trace, dataset.n_spots, payload)

    timing = benchmark.pedantic(run, rounds=1, iterations=1)
    solo_jupiter, _ = MultiGpuExecutor(jupiter(), seed=0).replay(
        trace, "gpu-heterogeneous"
    )
    emit(
        "Future work: mixed Jupiter+Hertz cluster (M4/2BSM)",
        f"spot shares: {timing.spot_shares.tolist()}\n"
        f"node compute: {timing.node_compute_s.round(2).tolist()} s\n"
        f"total {timing.total_s:.2f} s vs Jupiter alone {solo_jupiter.total_s:.2f} s",
    )
    # Adding a Hertz node must help, proportionally to its GPU power.
    assert timing.total_s < solo_jupiter.total_s
    assert timing.spot_shares[0] > timing.spot_shares[1]
    assert timing.balance > 0.8
