"""Future-work benchmark: one campaign across real worker-node processes.

The paper closes by proposing to "adapt our virtual screening method to
more complex systems comprising several computational nodes working
together with the message-passing paradigm" (§6). Earlier revisions of
this benchmark *simulated* that design from analytic traces; it now runs
for real: the same durable campaign is executed by ``repro.cluster``
fleets of 1 and 2 worker-node processes (coordinator socket, Eq. 1 node
shares, lease/steal protocol), and the artifact records what distribution
buys and what it must not cost:

* ``scaling`` — wall-clock and ``ligands_per_second`` per node count, each
  run's :meth:`~repro.campaign.store.CampaignStore.science_digest` checked
  bitwise against an in-process (``nodes=0``) reference run,
* ``speedup_2_nodes`` — 2-node over 1-node throughput (both through the
  full cluster stack, so coordination overhead is inside the measurement),
* ``steal_case`` — inter-node steal traffic when Eq. 1 mis-partitions
  (one node's warm-up probe is overridden to read 3x slower),
* ``recovery_case`` — SIGKILL one worker mid-campaign: the coordinator's
  lease-reclaim-and-reassign time once the death is declared (detection
  itself is bounded by ``heartbeat_timeout_s``), and the digest still
  matching.

CI hosts are oversubscribed (N node processes share one core), so each
fleet runs with ``ClusterConfig.service_time_s`` emulating the
device-bound regime the paper targets: workers sleep a fixed per-ligand
service time, which is the component a second node genuinely overlaps.
The digests come from real docking — only the timing is shaped.

Run standalone::

    python benchmarks/bench_futurework_multinode.py [--smoke] [--out artifact.json]

or through pytest (smoke scale): ``pytest benchmarks/bench_futurework_multinode.py``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import threading
import time

from repro.campaign import CampaignRunner, SyntheticSource
from repro.cluster import ClusterConfig
from repro.molecules.synthetic import generate_receptor

#: ligands, receptor atoms, per-ligand device service time (seconds)
FULL_PARAMS = {"ligands": 32, "receptor_atoms": 120, "service_time_s": 0.25}
SMOKE_PARAMS = {"ligands": 12, "receptor_atoms": 80, "service_time_s": 0.3}


def _make_runner(workdir, params, *, name, nodes=0, cluster=None):
    return CampaignRunner(
        generate_receptor(params["receptor_atoms"], seed=11, title="multinode"),
        SyntheticSource(params["ligands"], atoms_range=(8, 14), seed=12),
        store_path=os.path.join(workdir, f"{name}.sqlite"),
        n_spots=2,
        metaheuristic="M1",
        seed=11,
        workload_scale=0.04,
        shard_size=2,
        max_attempts=1,
        raise_on_failure=True,
        nodes=nodes,
        cluster=cluster,
    )


def _run_fleet(workdir, params, *, name, nodes, cluster, kill_after_s=None):
    """One timed fleet run; returns (seconds, digest, fleet summary)."""
    runner = _make_runner(workdir, params, name=name, nodes=nodes, cluster=cluster)

    def kill_one_worker():
        time.sleep(kill_after_s)
        fleet = runner.fleet
        if fleet is not None and fleet.processes:
            os.kill(fleet.processes[0].pid, signal.SIGKILL)

    killer = None
    if kill_after_s is not None:
        killer = threading.Thread(target=kill_one_worker, daemon=True)
        killer.start()
    t0 = time.perf_counter()
    with runner.run() as store:
        seconds = time.perf_counter() - t0
        assert store.is_complete()
        digest = store.science_digest()
    if killer is not None:
        killer.join()
    return seconds, digest, runner.fleet.summary


def run_benchmark(smoke=False, out_path=None):
    params = SMOKE_PARAMS if smoke else FULL_PARAMS
    service = params["service_time_s"]
    with tempfile.TemporaryDirectory(prefix="bench-multinode-") as workdir:
        # In-process (nodes=0) reference: the digest every fleet must hit.
        with _make_runner(workdir, params, name="reference").run() as store:
            assert store.is_complete()
            reference_digest = store.science_digest()

        scaling = []
        by_nodes = {}
        for nodes in (1, 2):
            seconds, digest, summary = _run_fleet(
                workdir,
                params,
                name=f"fleet{nodes}",
                nodes=nodes,
                # Fast heartbeat tick: grant/steal reactions stay small
                # against the service time, so the tail is not noise.
                cluster=ClusterConfig(
                    service_time_s=service, heartbeat_interval_s=0.1
                ),
            )
            by_nodes[nodes] = seconds
            scaling.append(
                {
                    "nodes": nodes,
                    "seconds": seconds,
                    "ligands_per_second": params["ligands"] / seconds,
                    "steals": summary["steals"],
                    "digest_match": digest == reference_digest,
                }
            )

        # Eq. 1 mis-partition: node 1's probe reads 3x slower, so it gets a
        # quarter of the shards, drains early, and steals the rest back.
        _, steal_digest, steal_summary = _run_fleet(
            workdir,
            params,
            name="steal",
            nodes=2,
            cluster=ClusterConfig(
                probe_seconds_override=((0, 1.0), (1, 3.0)),
                service_time_s=0.05,
                heartbeat_interval_s=0.1,
            ),
        )

        # Node death: SIGKILL one of two workers mid-run; the survivor
        # inherits the reclaimed leases and the science is unchanged.
        recovery_total_s, recovery_digest, recovery_summary = _run_fleet(
            workdir,
            params,
            name="recovery",
            nodes=2,
            cluster=ClusterConfig(
                service_time_s=service,
                heartbeat_interval_s=0.1,
                heartbeat_timeout_s=1.0,
            ),
            kill_after_s=1.0,
        )

    artifact = {
        "benchmark": "multinode",
        "mode": "smoke" if smoke else "full",
        "ligands": params["ligands"],
        "service_time_s": service,
        "reference_digest": reference_digest,
        "scaling": scaling,
        "speedup_2_nodes": by_nodes[1] / by_nodes[2],
        "steal_case": {
            "steals": steal_summary["steals"],
            "digest_match": steal_digest == reference_digest,
        },
        "recovery_case": {
            "seconds": recovery_total_s,
            "node_deaths": recovery_summary["node_deaths"],
            "recovery_seconds": recovery_summary["recovery_seconds"],
            "digest_match": recovery_digest == reference_digest,
        },
    }
    if out_path:
        from table_utils import write_bench_artifact

        write_bench_artifact("multinode", artifact, path=out_path)
    return artifact


def _report(artifact):
    lines = [
        f"{artifact['ligands']} ligands, "
        f"{artifact['service_time_s'] * 1e3:.0f} ms device service time, "
        f"reference digest {artifact['reference_digest'][:16]}"
    ]
    for case in artifact["scaling"]:
        lines.append(
            f"  {case['nodes']} node(s): {case['ligands_per_second']:.2f} lig/s "
            f"({case['seconds']:.2f} s, {case['steals']} steals, "
            f"digest {'ok' if case['digest_match'] else 'MISMATCH'})"
        )
    lines.append(f"  speedup at 2 nodes: {artifact['speedup_2_nodes']:.2f}x")
    steal = artifact["steal_case"]
    lines.append(
        f"  skewed Eq. 1 shares: {steal['steals']} steals, "
        f"digest {'ok' if steal['digest_match'] else 'MISMATCH'}"
    )
    recovery = artifact["recovery_case"]
    recovered = recovery["recovery_seconds"]
    lines.append(
        f"  SIGKILL one of 2 workers: {recovery['node_deaths']} node death(s), "
        "leases reassigned in "
        f"{'n/a' if recovered is None else f'{recovered * 1e3:.1f} ms'}, "
        f"digest {'ok' if recovery['digest_match'] else 'MISMATCH'}"
    )
    return "\n".join(lines)


def test_multinode_fleet_smoke(benchmark, tmp_path):
    """CI smoke: real 1/2-node fleets — parity, speedup, stealing, recovery."""
    out = tmp_path / "multinode.json"
    artifact = benchmark.pedantic(
        lambda: run_benchmark(smoke=True, out_path=str(out)),
        rounds=1,
        iterations=1,
    )
    from conftest import emit
    from table_utils import load_bench_artifact

    emit("Future work — multi-node campaign fleet", _report(artifact))
    assert load_bench_artifact(out)["benchmark"] == "multinode"
    for case in artifact["scaling"]:
        assert case["digest_match"], "fleet science must match single-node"
    # Both node counts pay full cluster overhead, so in the device-bound
    # regime a second node must buy a real fraction of linear scaling.
    assert artifact["speedup_2_nodes"] >= 1.5
    assert artifact["steal_case"]["steals"] >= 1
    assert artifact["steal_case"]["digest_match"]
    recovery = artifact["recovery_case"]
    assert recovery["node_deaths"] >= 1
    assert recovery["recovery_seconds"] is not None
    assert recovery["digest_match"], "recovery must not change the science"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small/fast variant")
    parser.add_argument("--out", default="multinode.json", help="JSON artifact")
    args = parser.parse_args(argv)
    artifact = run_benchmark(smoke=args.smoke, out_path=args.out)
    print(_report(artifact))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
