"""Future work (§6): "many other types of scoring functions still to be
explored".

Runs the same M2 search under every scoring function in the registry on one
synthetic complex, comparing docking quality, host throughput and the
modelled kernel cost per pose. Also demonstrates the AutoDock-style grid
trade-off: a much cheaper kernel bought with a precomputation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.presets import make_preset
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import run_metaheuristic
from repro.scoring.composite import CompositeScoring, make_lj_coulomb
from repro.scoring.coulomb import CoulombScoring
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.gridmap import GridMapScoring
from repro.scoring.hbond import HydrogenBondScoring
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.softcore import SoftcoreLJScoring

from conftest import emit

SCORINGS = {
    "lennard-jones": lambda: LennardJonesScoring(),
    "lj-cutoff-f32": lambda: CutoffLennardJonesScoring(dtype=np.float32),
    "lj-softcore": lambda: SoftcoreLJScoring(),
    "coulomb": lambda: CoulombScoring(),
    "lj+coulomb": lambda: make_lj_coulomb(),
    "hbond-12-10": lambda: HydrogenBondScoring(),
    "lj+hbond": lambda: CompositeScoring(
        [(1.0, LennardJonesScoring()), (1.0, HydrogenBondScoring())]
    ),
}


@pytest.mark.parametrize("name", sorted(SCORINGS))
def test_scoring_function_search(benchmark, name, bench_receptor, bench_ligand, bench_spots):
    scorer = SCORINGS[name]().bind(bench_receptor, bench_ligand)

    def run():
        ctx = SearchContext(
            spots=bench_spots,
            evaluator=SerialEvaluator(scorer),
            rng=SpotRngPool(5, [s.index for s in bench_spots]),
        )
        return run_metaheuristic(make_preset("M2", workload_scale=0.05), ctx)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"Future work: scoring function '{name}'",
        f"best score {result.best.score:12.4f}   "
        f"modelled kernel cost {scorer.flops_per_pose / 1e6:8.3f} MFLOP/pose",
    )
    assert np.isfinite(result.best.score)
    if name not in ("coulomb", "hbond-12-10"):  # LJ-family landscapes must find attraction
        assert result.best.score < 0


def test_gridmap_tradeoff(benchmark, bench_receptor, bench_ligand, bench_spots):
    """AutoDock's design point: expensive precomputation, cheap kernel."""
    spot = bench_spots[0]

    def build():
        return GridMapScoring(
            box_center=spot.center, box_half=spot.radius + 4.0, spacing=0.5
        ).bind(bench_receptor, bench_ligand)

    grid = benchmark.pedantic(build, rounds=1, iterations=1)
    dense = LennardJonesScoring().bind(bench_receptor, bench_ligand)
    emit(
        "Future work: grid-map trade-off",
        f"grid memory {grid.grid_bytes / 1e6:8.2f} MB, kernel "
        f"{grid.flops_per_pose:8.0f} FLOP/pose vs dense "
        f"{dense.flops_per_pose:12.0f} FLOP/pose "
        f"({dense.flops_per_pose / grid.flops_per_pose:.0f}x cheaper per pose)",
    )
    assert grid.flops_per_pose < dense.flops_per_pose / 100
    assert grid.grid_bytes > 1e5  # the memory price
