"""Host-runtime benchmark: real process-parallel scoring speedup.

Times one fixed pose workload through :class:`SerialEvaluator` and through
:class:`ParallelSpotEvaluator` at several worker counts, on 2BSM- and
2BXG-scale synthetic complexes, and writes a JSON artifact with speedup,
parallel efficiency, the per-spot prune ratio, and a bitwise-equality flag.

Pool construction and warm-up are excluded from the timed region — the pool
is persistent across a screening run, so its one-off cost amortises away.

Honesty note: speedup is bounded by the cores the container actually grants
(``available_cores`` in the artifact). On a single-core CI runner the
parallel path can only tie or lose; the artifact records the observed
numbers either way, and the smoke assertions check *correctness* (bitwise
equality), not wall-clock.

Run standalone::

    python benchmarks/bench_host_parallel.py [--smoke] [--out artifact.json]

or through pytest (smoke scale): ``pytest benchmarks/bench_host_parallel.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.engine.host_runtime import ParallelSpotEvaluator
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.molecules.spots import find_spots
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.molecules.transforms import random_quaternion
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.pruned import prune_bound

#: (name, receptor atoms, ligand atoms) — Table 5 scale and a smoke scale.
FULL_CASES = [("2BSM", 3264, 45), ("2BXG", 8609, 32)]
SMOKE_CASES = [("smoke", 600, 24)]


def _workload(receptor, spots, n_poses, seed=0):
    """A deterministic spot-anchored launch, shared by every evaluator."""
    rng = np.random.default_rng(seed)
    centers = np.stack([s.center for s in spots])
    radii = np.array([s.radius for s in spots])
    assign = rng.integers(0, len(spots), size=n_poses)
    translations = centers[assign] + rng.uniform(-1, 1, (n_poses, 3)) * radii[
        assign, None
    ]
    quaternions = random_quaternion(rng, n_poses)
    spot_ids = np.array([spots[i].index for i in assign], dtype=np.int64)
    return spot_ids, translations, quaternions


def _time(fn, repeats):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_case(name, n_rec, n_lig, n_poses, worker_counts, repeats=3, seed=0):
    """Benchmark one complex; returns the artifact dict for this case."""
    receptor = generate_receptor(n_rec, seed=seed + 1, title=name)
    ligand = generate_ligand(n_lig, seed=seed + 2)
    spots = find_spots(receptor, 8)
    scorer = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    spot_ids, t, q = _workload(receptor, spots, n_poses, seed=seed)

    serial = SerialEvaluator(scorer)
    serial_s, expected = _time(lambda: serial.evaluate(spot_ids, t, q), repeats)
    prune_ratio = scorer.prune_ratio

    runs = []
    for n_workers in worker_counts:
        with ParallelSpotEvaluator(scorer, n_workers=n_workers) as ev:
            par_s, got = _time(lambda: ev.evaluate(spot_ids, t, q), repeats)
        speedup = serial_s / par_s
        runs.append(
            {
                "workers": n_workers,
                "seconds": par_s,
                "speedup": speedup,
                "efficiency": speedup / n_workers,
                "bitwise_equal": bool(np.array_equal(got, expected)),
            }
        )
    return {
        "case": name,
        "receptor_atoms": n_rec,
        "ligand_atoms": n_lig,
        "poses": n_poses,
        "serial_seconds": serial_s,
        "prune_ratio": prune_ratio,
        "parallel": runs,
    }


def run_benchmark(smoke=False, out_path=None, worker_counts=(2, 4)):
    cases = SMOKE_CASES if smoke else FULL_CASES
    n_poses = 64 if smoke else 512
    repeats = 1 if smoke else 3
    artifact = {
        "benchmark": "host_parallel",
        "available_cores": os.cpu_count(),
        "sched_cores": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else None,
        "cases": [
            bench_case(name, n_rec, n_lig, n_poses, worker_counts, repeats=repeats)
            for name, n_rec, n_lig in cases
        ],
    }
    if out_path:
        from table_utils import write_bench_artifact

        write_bench_artifact("host_parallel", artifact, path=out_path)
    return artifact


def _report(artifact):
    lines = [
        f"available cores: {artifact['available_cores']} "
        f"(affinity {artifact['sched_cores']})"
    ]
    for case in artifact["cases"]:
        lines.append(
            f"{case['case']}: {case['receptor_atoms']}x{case['ligand_atoms']} atoms, "
            f"{case['poses']} poses, serial {case['serial_seconds'] * 1e3:.1f} ms, "
            f"prune ratio {case['prune_ratio']:.2f}x"
        )
        for run in case["parallel"]:
            lines.append(
                f"  {run['workers']} workers: {run['seconds'] * 1e3:8.1f} ms  "
                f"speedup {run['speedup']:.2f}x  efficiency {run['efficiency']:.2f}  "
                f"bitwise={'yes' if run['bitwise_equal'] else 'NO'}"
            )
    return "\n".join(lines)


def test_host_parallel_smoke(benchmark, tmp_path):
    """CI smoke: 2 workers on a small complex — correctness over wall-clock."""
    out = tmp_path / "host_parallel.json"
    artifact = benchmark.pedantic(
        lambda: run_benchmark(smoke=True, out_path=str(out), worker_counts=(2,)),
        rounds=1,
        iterations=1,
    )
    from conftest import emit
    from table_utils import load_bench_artifact

    emit("Host runtime — process-parallel smoke", _report(artifact))
    assert load_bench_artifact(out)["benchmark"] == "host_parallel"
    for case in artifact["cases"]:
        assert case["prune_ratio"] >= 1.0
        for run in case["parallel"]:
            assert run["bitwise_equal"], "parallel energies must match serial bitwise"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small/fast variant")
    parser.add_argument("--out", default="host_parallel.json", help="JSON artifact")
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[2, 4],
        help="worker counts to benchmark",
    )
    args = parser.parse_args(argv)
    artifact = run_benchmark(
        smoke=args.smoke, out_path=args.out, worker_counts=tuple(args.workers)
    )
    print(_report(artifact))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
