"""Host scoring-kernel throughput (the reproduction's real compute).

pytest-benchmark comparison of the scorer implementations at a realistic
batch size — the Python counterpart of the paper's kernel engineering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.molecules.transforms import random_quaternion
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.softcore import SoftcoreLJScoring
from repro.scoring.tiled import TiledLennardJonesScoring


@pytest.fixture(scope="module")
def workload():
    receptor = generate_receptor(3264, seed=41)
    ligand = generate_ligand(45, seed=42)
    rng = np.random.default_rng(43)
    translations = rng.normal(0, 15, (64, 3))
    quaternions = random_quaternion(rng, 64)
    return receptor, ligand, translations, quaternions


SCORERS = {
    "dense-f64": lambda: LennardJonesScoring(chunk_size=16),
    "tiled-f64": lambda: TiledLennardJonesScoring(tile=128, chunk_size=16),
    "cutoff-f64": lambda: CutoffLennardJonesScoring(chunk_size=64),
    "cutoff-f32": lambda: CutoffLennardJonesScoring(chunk_size=64, dtype=np.float32),
    "softcore-f64": lambda: SoftcoreLJScoring(chunk_size=16),
}


@pytest.mark.parametrize("name", sorted(SCORERS))
def test_scorer_throughput(benchmark, name, workload):
    receptor, ligand, translations, quaternions = workload
    scorer = SCORERS[name]().bind(receptor, ligand)
    scorer.score(translations[:8], quaternions[:8])  # warm caches
    scores = benchmark(scorer.score, translations, quaternions)
    assert scores.shape == (64,)
    assert np.all(np.isfinite(scores))
    pairs = 64 * receptor.n_atoms * ligand.n_atoms
    benchmark.extra_info["Mpairs_per_sec"] = pairs / benchmark.stats["mean"] / 1e6
