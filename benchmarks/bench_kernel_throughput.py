"""Host scoring-kernel throughput across every variant, batched included.

The Python counterpart of the paper's kernel engineering: one complex, one
pose batch, every scorer variant timed on it — dense, tiled, cutoff (both
precisions), soft-core, and the fused batched-pose kernel
(:mod:`repro.scoring.batched`). Per variant the artifact records

* ``poses_per_s`` / ``mpairs_per_s`` — whole-batch throughput,
* ``score_one_us`` — the single-pose fast path (``score_one`` calls the
  chunk kernel directly),
* ``score_one_batch_path_us`` — the old round-trip through ``score`` with a
  one-pose batch, kept as the comparison column,
* ``score_one_fastpath_speedup`` — their ratio.

Case-level, ``batched_speedup_vs_dense`` is the tentpole number (the
acceptance bar is >= 1.5x at the mid-size cell), and the case feeds its own
measurements into a :class:`~repro.scoring.autotune.CalibrationTable` to
check the selector picks the fastest exact-family kernel from real data —
the same loop ``repro-vs calibrate`` + ``--autotune`` runs at full scale.

Run standalone::

    python benchmarks/bench_kernel_throughput.py [--smoke] [--out artifact.json]

or through pytest (smoke scale): ``pytest benchmarks/bench_kernel_throughput.py``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.molecules.transforms import random_quaternion
from repro.scoring.autotune import CalibrationCell, CalibrationTable, KernelSelector
from repro.scoring.batched import BatchedLJScoring
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.softcore import SoftcoreLJScoring
from repro.scoring.tiled import TiledLennardJonesScoring

#: (case name, receptor atoms, ligand atoms, poses per batch)
FULL_CASES = [("midsize", 3264, 45, 256)]
#: CI regenerates this one; 1000x32 is still big enough for the fused GEMM
#: to clear the >= 1.5x bar over the dense kernel.
SMOKE_CASES = [("smoke", 1000, 32, 96)]

REPEATS = 3
SCORE_ONE_ITERS = 100

#: name -> (factory, numerics family or None)
VARIANTS = {
    "dense-f64": (lambda: LennardJonesScoring(), "exact"),
    "tiled-f64": (lambda: TiledLennardJonesScoring(), "exact"),
    "batched-f64": (lambda: BatchedLJScoring(), "exact"),
    "cutoff-f64": (lambda: CutoffLennardJonesScoring(), None),
    "cutoff-f32": (lambda: CutoffLennardJonesScoring(dtype=np.float32), None),
    "softcore-f64": (lambda: SoftcoreLJScoring(), None),
}


def _time_best(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_case(name, n_rec, n_lig, poses, seed=41):
    receptor = generate_receptor(n_rec, seed=seed, title=name)
    ligand = generate_ligand(n_lig, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    center = receptor.coords.mean(axis=0)
    translations = center[None, :] + rng.normal(0, 6.0, (poses, 3))
    quaternions = random_quaternion(rng, poses)
    pairs = poses * n_rec * n_lig

    case = {
        "case": name,
        "receptor_atoms": n_rec,
        "ligand_atoms": n_lig,
        "poses": poses,
        "variants": {},
    }
    exact_cells = []
    for vname, (factory, family) in VARIANTS.items():
        scorer = factory().bind(receptor, ligand)
        scorer.score(translations[:8], quaternions[:8])  # warm caches/scratch
        batch_s = _time_best(lambda: scorer.score(translations, quaternions))

        def one_fast():
            for i in range(SCORE_ONE_ITERS):
                scorer.score_one(translations[i % poses], quaternions[i % poses])

        def one_roundtrip():
            for i in range(SCORE_ONE_ITERS):
                scorer.score(
                    translations[i % poses][None, :], quaternions[i % poses][None, :]
                )

        one_fast()  # warm
        fast_s = _time_best(one_fast) / SCORE_ONE_ITERS
        slow_s = _time_best(one_roundtrip) / SCORE_ONE_ITERS
        case["variants"][vname] = {
            "poses_per_s": poses / batch_s,
            "mpairs_per_s": pairs / batch_s / 1e6,
            "score_one_us": fast_s * 1e6,
            "score_one_batch_path_us": slow_s * 1e6,
            "score_one_fastpath_speedup": slow_s / fast_s,
        }
        if family == "exact":
            variant_name = {
                "dense-f64": "lennard-jones",
                "tiled-f64": "lennard-jones-tiled",
                "batched-f64": "lennard-jones-batched",
            }[vname]
            exact_cells.append(
                CalibrationCell(
                    receptor_atoms=n_rec,
                    ligand_atoms=n_lig,
                    worker_count=0,
                    family="exact",
                    variant=variant_name,
                    chunk_size=scorer.chunk_size,
                    poses_per_s=poses / batch_s,
                )
            )

    case["batched_speedup_vs_dense"] = (
        case["variants"]["batched-f64"]["poses_per_s"]
        / case["variants"]["dense-f64"]["poses_per_s"]
    )
    # Close the autotune loop on real measurements: the selector must pick
    # whichever exact kernel this very run measured fastest.
    selection = KernelSelector(CalibrationTable(exact_cells)).select(
        "exact", n_rec, n_lig, 0
    )
    fastest = max(exact_cells, key=lambda c: c.poses_per_s)
    case["selector_variant"] = selection.variant
    case["selector_chunk_size"] = selection.chunk_size
    case["selector_picked_fastest"] = bool(selection.variant == fastest.variant)
    return case


def run_benchmark(smoke=False, out_path=None):
    cases = SMOKE_CASES if smoke else FULL_CASES
    artifact = {
        "benchmark": "kernel_throughput",
        "cases": [bench_case(*case) for case in cases],
    }
    if out_path:
        from table_utils import write_bench_artifact

        write_bench_artifact("kernel_throughput", artifact, path=out_path)
    return artifact


def _report(artifact):
    lines = []
    for case in artifact["cases"]:
        lines.append(
            f"{case['case']}: {case['receptor_atoms']}x{case['ligand_atoms']} "
            f"atoms, {case['poses']} poses"
        )
        lines.append(
            f"  {'variant':<13s} {'poses/s':>10s} {'Mpairs/s':>10s} "
            f"{'one (us)':>9s} {'one-batch':>10s} {'fast x':>7s}"
        )
        for vname, v in case["variants"].items():
            lines.append(
                f"  {vname:<13s} {v['poses_per_s']:10.0f} "
                f"{v['mpairs_per_s']:10.1f} {v['score_one_us']:9.1f} "
                f"{v['score_one_batch_path_us']:10.1f} "
                f"{v['score_one_fastpath_speedup']:7.2f}"
            )
        lines.append(
            f"  batched vs dense: {case['batched_speedup_vs_dense']:.2f}x; "
            f"selector picked {case['selector_variant']} "
            f"(chunk {case['selector_chunk_size']}, "
            f"fastest={'yes' if case['selector_picked_fastest'] else 'NO'})"
        )
    return "\n".join(lines)


def test_kernel_throughput_smoke(benchmark, tmp_path):
    """CI smoke: batched beats dense and the selector picks it from data."""
    out = tmp_path / "kernel_throughput.json"
    artifact = benchmark.pedantic(
        lambda: run_benchmark(smoke=True, out_path=str(out)),
        rounds=1,
        iterations=1,
    )
    from conftest import emit
    from table_utils import load_bench_artifact

    emit("Kernel throughput — all variants + batched", _report(artifact))
    assert load_bench_artifact(out)["benchmark"] == "kernel_throughput"
    for case in artifact["cases"]:
        assert set(case["variants"]) == set(VARIANTS)
        for v in case["variants"].values():
            assert v["poses_per_s"] > 0
            # The fast path must never be slower than the batch round-trip
            # by more than timing noise.
            assert v["score_one_fastpath_speedup"] > 0.8, v
        # 1.3 here vs the 1.5 acceptance bar: shared CI runners jitter, and
        # a borderline-machine false failure would teach people to ignore
        # the gate. The committed baseline records the real ratio.
        assert case["batched_speedup_vs_dense"] >= 1.3, case
        assert case["selector_picked_fastest"], case


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small/fast variant")
    parser.add_argument(
        "--out", default="kernel_throughput.json", help="JSON artifact"
    )
    args = parser.parse_args(argv)
    artifact = run_benchmark(smoke=args.smoke, out_path=args.out)
    print(_report(artifact))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
