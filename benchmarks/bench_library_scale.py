"""Library-scale benchmark: columnar store ingest and streaming readers.

The scale-out claim behind the columnar backend is *flatness*: ingesting a
library N× larger must not cost N× the resident memory (sealed shards leave
the heap) and must keep the per-ligand disk footprint constant. This
benchmark measures the store layer directly — synthetic result rows pushed
through the full shard lifecycle (start → record → finish → seal →
compact) with no docking, so the numbers isolate storage cost:

* ``ligands_per_second`` — store-layer ingest rate per library size,
* ``bytes_per_ligand`` — on-disk footprint (manifest + segments + logs)
  divided by rows; the ISSUE gate is ≤ 0.2 MB per 1k ligands (204.8 B),
* ``rss_flatness`` — peak-RSS ratio of the largest size over the smallest
  (each size runs in its own subprocess so ``ru_maxrss`` is per-size),
* ``reader_lines_per_second`` — streaming SMILES reader throughput,
  dedup included, over a generated line-delimited library.

Run standalone::

    python benchmarks/bench_library_scale.py [--smoke] [--out artifact.json]

or through pytest (smoke scale): ``pytest benchmarks/bench_library_scale.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SMOKE_SIZES = [5_000, 20_000]
FULL_SIZES = [100_000, 1_000_000]

#: ISSUE gate: 0.2 MB per 1k ligands.
MAX_BYTES_PER_LIGAND = 0.2 * 1024 * 1024 / 1000

_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: Runs in a fresh interpreter per size so ru_maxrss is that size's peak.
_INGEST_CHILD = """
import json, resource, sys, time
sys.path.insert(0, sys.argv[4])
from repro.campaign.colstore import ColumnarStore

root, n_rows, shard_size = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
config = {"receptor_title": "bench receptor", "n_spots": 4, "seed": 1}
store = ColumnarStore.create(root, config, "bench-hash")
t0 = time.perf_counter()
for start in range(0, n_rows, shard_size):
    stop = min(start + shard_size, n_rows)
    shard_id = start // shard_size
    store.start_shard(shard_id, start, stop)
    for o in range(start, stop):
        store.record_result(
            o, f"LIG-{o:07d}", -1.0 - (o % 997) / 83.0, o % 4, 128, 0.01, 0.2
        )
    store.finish_shard(shard_id, 0.5)
seconds = time.perf_counter() - t0
counts = store.counts()
top_score = store.top(1)[0]["best_score"]
store.close()
print(json.dumps({
    "seconds": seconds,
    "counts": counts,
    "top_score": top_score,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _dir_bytes(root: Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def ingest_case(n_rows: int, shard_size: int = 1000) -> dict:
    """Ingest ``n_rows`` result rows in a subprocess; returns the metrics."""
    with tempfile.TemporaryDirectory(prefix="bench-libscale-") as workdir:
        root = Path(workdir) / "campaign.col"
        proc = subprocess.run(
            [
                sys.executable, "-c", _INGEST_CHILD,
                str(root), str(n_rows), str(shard_size), _SRC,
            ],
            capture_output=True,
            text=True,
            timeout=3600,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"ingest child failed:\n{proc.stderr}")
        child = json.loads(proc.stdout)
        store_bytes = _dir_bytes(root)
    return {
        "ligands": n_rows,
        "shard_size": shard_size,
        "ingest_seconds": child["seconds"],
        "ligands_per_second": n_rows / child["seconds"],
        "store_bytes": store_bytes,
        "bytes_per_ligand": store_bytes / n_rows,
        "peak_rss_mb": child["peak_rss_kb"] / 1024,
        "complete": child["counts"]["done"] == n_rows,
        "top_score": child["top_score"],
    }


def reader_case(n_lines: int) -> dict:
    """Streaming SMILES reader throughput (parse + dedup + synthesis)."""
    from repro.campaign.library import SmilesSource

    with tempfile.TemporaryDirectory(prefix="bench-libreader-") as workdir:
        path = Path(workdir) / "library.smi"
        with open(path, "w", encoding="utf-8") as handle:
            for i in range(n_lines):
                # ~7% duplicate titles exercise the dedup path.
                handle.write(f"CCO mol-{i % (n_lines - n_lines // 15)}\n")
        source = SmilesSource(path, seed=1, atoms_range=(4, 8))
        t0 = time.perf_counter()
        titles = sum(1 for _ in source)
        seconds = time.perf_counter() - t0
    return {
        "lines": n_lines,
        "unique_ligands": titles,
        "read_seconds": seconds,
        "reader_lines_per_second": n_lines / seconds,
    }


def run_benchmark(smoke=False, out_path=None):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    cases = [ingest_case(n) for n in sizes]
    smallest, largest = cases[0], cases[-1]
    artifact = {
        "benchmark": "library_scale",
        "cases": cases,
        "reader": reader_case(min(sizes)),
        # Normalised headline metrics the regression gate tracks.
        "ligands_per_second": largest["ligands_per_second"],
        "bytes_per_ligand": max(c["bytes_per_ligand"] for c in cases),
        # Peak RSS of the biggest ingest over the smallest: ~1.0 == flat.
        "rss_flatness": largest["peak_rss_mb"] / smallest["peak_rss_mb"],
    }
    if out_path:
        from table_utils import write_bench_artifact

        write_bench_artifact("library_scale", artifact, path=out_path)
    return artifact


def _report(artifact):
    lines = []
    for case in artifact["cases"]:
        lines.append(
            f"{case['ligands']:>9,} ligands: "
            f"{case['ligands_per_second']:>9,.0f} lig/s ingest, "
            f"{case['bytes_per_ligand']:.1f} B/ligand on disk, "
            f"peak RSS {case['peak_rss_mb']:.1f} MB"
        )
    reader = artifact["reader"]
    lines.append(
        f"reader: {reader['lines']:,} lines -> {reader['unique_ligands']:,} "
        f"ligands at {reader['reader_lines_per_second']:,.0f} lines/s"
    )
    lines.append(
        f"RSS flatness ({artifact['cases'][-1]['ligands'] // artifact['cases'][0]['ligands']}x "
        f"the library): {artifact['rss_flatness']:.2f}x the memory"
    )
    return "\n".join(lines)


def test_library_scale_smoke(benchmark, tmp_path):
    """CI smoke: ingest scaling gates — footprint and RSS flatness."""
    out = tmp_path / "library_scale.json"
    artifact = benchmark.pedantic(
        lambda: run_benchmark(smoke=True, out_path=str(out)),
        rounds=1,
        iterations=1,
    )
    from conftest import emit
    from table_utils import load_bench_artifact

    emit("Campaign — library-scale ingest smoke", _report(artifact))
    assert load_bench_artifact(out)["benchmark"] == "library_scale"
    for case in artifact["cases"]:
        assert case["complete"], "every ingested row must be durable"
        # The ISSUE gate: at most 0.2 MB of store per 1k ligands.
        assert case["bytes_per_ligand"] <= MAX_BYTES_PER_LIGAND, (
            f"{case['bytes_per_ligand']:.1f} B/ligand exceeds the "
            f"{MAX_BYTES_PER_LIGAND:.1f} B gate"
        )
    # A 4x larger library must not cost anywhere near 4x the memory.
    assert artifact["rss_flatness"] < 1.5, (
        f"ingest RSS grew {artifact['rss_flatness']:.2f}x with library size"
    )
    assert artifact["reader"]["unique_ligands"] < artifact["reader"]["lines"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small/fast variant")
    parser.add_argument(
        "--out", default="library_scale.json", help="JSON artifact"
    )
    args = parser.parse_args(argv)
    artifact = run_benchmark(smoke=args.smoke, out_path=args.out)
    print(_report(artifact))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
