"""Telemetry overhead benchmark: the <3% budget, measured.

The observability subsystem (``repro.observability``) instruments every hot
path — host runtime workers, scheduler plans, campaign shards, docking — and
promises to stay under a **3% overhead budget** on a real screening run.
This benchmark enforces that promise with an estimator that survives noisy
shared runners:

* **enforced: ops x cost** — one fixed ``screen()`` workload runs with
  telemetry enabled; its snapshot yields the *exact* number of telemetry
  operations performed (counter increments, histogram observations, spans).
  Each primitive's per-operation cost is measured by a tight micro-loop
  (best of several reps). ``overhead_pct = ops x cost / baseline`` must stay
  under :data:`OVERHEAD_BUDGET_PCT`. Both factors are stable: op counts are
  deterministic, and a best-of micro-loop converges even on a busy machine.
* **informational: paired wall-clock** — enabled/disabled runs alternate in
  adjacent pairs and the median paired delta is reported. On a contended
  container, machine drift swings end-to-end wall-clock by more than the
  budget itself (measured deltas straddle zero), so this number tracks the
  trajectory in the artifact but is *not* asserted.
* **enforced: live sampler amortisation** — one ``TelemetrySampler.sample()``
  over the run's populated registry is micro-timed, then amortised over the
  samples a real run would take (baseline/interval periodic ticks plus one
  event-driven mark per shard commit and host harvest). The sampler runs on
  its own thread, but its snapshot freezes iterate the same registry the hot
  path mutates, so its cost is billed against the same budget.

Run standalone::

    python benchmarks/bench_observability_overhead.py [--smoke] [--out artifact.json]

or through pytest (smoke scale): ``pytest benchmarks/bench_observability_overhead.py``.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro import observability as obs
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.observability.flight import flight_event, flight_recorder, reset_flight
from repro.vs.screening import screen

#: The documented telemetry overhead budget (docs/architecture.md).
OVERHEAD_BUDGET_PCT = 3.0

#: Micro-benchmark iterations per primitive, and best-of reps.
MICRO_ITERS = 20_000
MICRO_REPS = 3

#: Default live-sampling interval the amortisation models (CLI default).
SAMPLER_INTERVAL_S = 1.0


def _workload(smoke: bool):
    n_rec, n_lig, scale = (400, 8, 0.06) if smoke else (900, 16, 0.1)
    receptor = generate_receptor(n_rec, seed=11, title="obs-overhead")
    ligands = [generate_ligand(10 + i % 4, seed=20 + i) for i in range(n_lig)]
    return receptor, ligands, scale


def _time_screen(receptor, ligands, scale) -> float:
    obs.reset()
    reset_flight()
    t0 = time.perf_counter()
    screen(receptor, ligands, n_spots=2, seed=3, workload_scale=scale)
    return time.perf_counter() - t0


def _best_of(fn, reps=MICRO_REPS) -> float:
    return min(fn() for _ in range(reps))


def _micro_costs() -> dict:
    """Per-operation cost (ns) of each telemetry primitive, enabled."""
    telemetry = obs.Telemetry()
    counter = telemetry.counter("micro.counter")
    hist = telemetry.histogram("micro.hist")

    def time_loop(op, iters):
        t0 = time.perf_counter()
        for _ in range(iters):
            op()
        return (time.perf_counter() - t0) / iters * 1e9

    def span_op():
        with telemetry.span("micro.span"):
            pass

    costs = {
        "counter_inc_ns": _best_of(lambda: time_loop(counter.inc, MICRO_ITERS)),
        "histogram_observe_ns": _best_of(
            lambda: time_loop(lambda: hist.observe(0.5), MICRO_ITERS)
        ),
    }
    # The span buffer is bounded; reset between reps so enter/exit keeps
    # paying full recording cost instead of hitting the drop path.
    def span_rep():
        telemetry.tracer.reset()
        return time_loop(span_op, MICRO_ITERS // 10)

    costs["span_ns"] = _best_of(span_rep)

    # Flight recorder: priced through the real flight_event() entry point so
    # the enabled-check and ring-append cost are both billed. The ring is
    # bounded, so a full ring still pays the same O(1) append.
    def flight_rep():
        reset_flight()
        return time_loop(lambda: flight_event("micro.flight", i=0), MICRO_ITERS)

    costs["flight_event_ns"] = _best_of(flight_rep)
    reset_flight()
    return costs


def _sampler_cost(snapshot_ops: int) -> dict:
    """Best-of cost (s) of one live sample over a comparably busy registry.

    The sampler freezes whatever session is active; to price a realistic
    sample the micro-registry is padded to roughly the instrumented run's
    instrument count before timing.
    """
    import tempfile

    from repro.observability import Telemetry, TelemetrySampler

    telemetry = Telemetry()
    for i in range(max(16, min(snapshot_ops, 256))):
        telemetry.counter("micro.pad", series=i % 16).inc()
        telemetry.histogram("micro.pad_hist", series=i % 8).observe(0.5)
    with telemetry.span("micro.pad_span"):
        pass
    with tempfile.NamedTemporaryFile(suffix=".jsonl") as handle:
        sampler = TelemetrySampler(handle.name, telemetry=telemetry)

        def rep():
            t0 = time.perf_counter()
            for _ in range(50):
                sampler.sample()
            return (time.perf_counter() - t0) / 50

        return {"sample_cost_s": _best_of(rep)}


def _op_counts(snapshot: dict) -> dict:
    """Exact telemetry operation counts for one instrumented run.

    Counter values over-count slightly where code calls ``inc(n)`` once
    (counted as ``n`` increments) — a conservative error in the safe
    direction for a budget check.
    """
    return {
        "counter_incs": int(sum(c["value"] for c in snapshot["counters"])),
        "gauge_sets": len(snapshot["gauges"]),
        "histogram_observes": int(sum(h["count"] for h in snapshot["histograms"])),
        "spans": len(snapshot["spans"]),
    }


def run_benchmark(smoke: bool = False, out_path: str | None = None) -> dict:
    receptor, ligands, scale = _workload(smoke)
    pairs = 5 if smoke else 8

    # Warm run (imports, allocator, spot caches) — discarded.
    _time_screen(receptor, ligands, scale)

    deltas = []
    disabled_times = []
    snapshot = None
    flight_ops = 0
    for _ in range(pairs):
        enabled_t = _time_screen(receptor, ligands, scale)
        snapshot = obs.snapshot()  # from an enabled run — must be non-empty
        flight_ops = flight_recorder().recorded
        with obs.disabled():
            disabled_t = _time_screen(receptor, ligands, scale)
        deltas.append(enabled_t - disabled_t)
        disabled_times.append(disabled_t)

    baseline_s = min(disabled_times)
    micro = _micro_costs()
    ops = _op_counts(snapshot)
    # The black-box flight recorder bills inside the same budget: every
    # event the instrumented run recorded, at the measured per-event cost.
    ops["flight_events"] = int(flight_ops)
    # Gauges share the counter code path; bill sets at the counter rate.
    telemetry_s = (
        (ops["counter_incs"] + ops["gauge_sets"]) * micro["counter_inc_ns"]
        + ops["histogram_observes"] * micro["histogram_observe_ns"]
        + ops["spans"] * micro["span_ns"]
        + ops["flight_events"] * micro["flight_event_ns"]
    ) * 1e-9

    # Live sampler amortisation: periodic ticks over the run plus one
    # event-driven mark per shard commit / host harvest (upper bound — marks
    # are rate-limited to interval/2 in the real pipeline).
    def _counter_total(name: str) -> float:
        return sum(
            c["value"] for c in snapshot["counters"] if c["name"] == name
        )

    sampler = _sampler_cost(len(snapshot["counters"]))
    mark_events = _counter_total("campaign.shards.done") + _counter_total(
        "host.launches"
    )
    estimated_samples = baseline_s / SAMPLER_INTERVAL_S + mark_events
    sampler_s = estimated_samples * sampler["sample_cost_s"]
    sampler.update(
        {
            "interval_s": SAMPLER_INTERVAL_S,
            "mark_events": mark_events,
            "estimated_samples": estimated_samples,
            "sampler_seconds": sampler_s,
            "sampler_overhead_pct": sampler_s / baseline_s * 100.0,
        }
    )

    overhead_pct = (telemetry_s + sampler_s) / baseline_s * 100.0

    artifact = {
        "benchmark": "observability_overhead",
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "pairs": pairs,
        "baseline_seconds": baseline_s,
        "telemetry_seconds": telemetry_s,
        "overhead_pct": overhead_pct,
        "wallclock_median_delta_seconds": statistics.median(deltas),
        "wallclock_paired_deltas_seconds": deltas,
        "ops": ops,
        "counters_recorded": len(snapshot["counters"]),
        "histograms_recorded": len(snapshot["histograms"]),
        "spans_recorded": len(snapshot["spans"]),
        "micro": micro,
        "sampler": sampler,
    }
    if out_path:
        from table_utils import write_bench_artifact

        write_bench_artifact("observability_overhead", artifact, path=out_path)
    return artifact


def _report(artifact: dict) -> str:
    micro = artifact["micro"]
    ops = artifact["ops"]
    return "\n".join(
        [
            f"screen() baseline : {artifact['baseline_seconds'] * 1e3:8.1f} ms "
            f"(best disabled run of {artifact['pairs']} pairs)",
            f"telemetry ops     : {ops['counter_incs']} counter incs, "
            f"{ops['gauge_sets']} gauge sets, "
            f"{ops['histogram_observes']} histogram observes, "
            f"{ops['spans']} spans, "
            f"{ops['flight_events']} flight events",
            f"telemetry cost    : {artifact['telemetry_seconds'] * 1e6:8.1f} us "
            f"(ops x measured per-op cost)",
            f"overhead          : {artifact['overhead_pct']:8.3f} %  "
            f"(budget {artifact['budget_pct']:.1f} %)",
            f"wall-clock delta  : "
            f"{artifact['wallclock_median_delta_seconds'] * 1e3:+8.2f} ms "
            f"(median of pairs; informational — noise-dominated)",
            f"counter.inc       : {micro['counter_inc_ns']:8.0f} ns/op",
            f"histogram.observe : {micro['histogram_observe_ns']:8.0f} ns/op",
            f"span enter/exit   : {micro['span_ns']:8.0f} ns/op",
            f"flight.event      : {micro['flight_event_ns']:8.0f} ns/op",
            f"live sample       : "
            f"{artifact['sampler']['sample_cost_s'] * 1e6:8.1f} us/sample "
            f"({artifact['sampler']['estimated_samples']:.1f} samples -> "
            f"{artifact['sampler']['sampler_overhead_pct']:.3f} % of budget)",
        ]
    )


def test_observability_overhead_smoke(benchmark, tmp_path):
    """CI smoke: telemetry must stay inside its documented overhead budget."""
    out = tmp_path / "observability_overhead.json"
    artifact = benchmark.pedantic(
        lambda: run_benchmark(smoke=True, out_path=str(out)),
        rounds=1,
        iterations=1,
    )
    from conftest import emit
    from table_utils import load_bench_artifact

    emit(
        "Telemetry overhead — ops x cost vs budget",
        _report(artifact),
        name="observability_overhead",
        data=artifact,
    )
    doc = load_bench_artifact(out)
    assert doc["benchmark"] == "observability_overhead"
    assert artifact["overhead_pct"] < artifact["budget_pct"], (
        f"telemetry overhead {artifact['overhead_pct']:.3f}% "
        f"exceeds the {artifact['budget_pct']:.1f}% budget"
    )
    # The instrumented run must actually have recorded something.
    assert artifact["counters_recorded"] > 0
    assert artifact["histograms_recorded"] > 0
    assert artifact["spans_recorded"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small/fast variant")
    parser.add_argument(
        "--out", default="observability_overhead.json", help="JSON artifact"
    )
    args = parser.parse_args(argv)
    artifact = run_benchmark(smoke=args.smoke, out_path=args.out)
    print(_report(artifact))
    print(f"wrote {args.out}")
    if artifact["overhead_pct"] >= artifact["budget_pct"]:
        print(
            f"FAIL: overhead {artifact['overhead_pct']:.3f}% >= "
            f"budget {artifact['budget_pct']:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
