"""Persistent campaign runtime: per-ligand fixed overhead, fresh vs reused pool.

The PR 1 host runtime pays its fixed costs — worker pool spawn, receptor
staging into shared memory, the Eq. 1 warm-up measurement — once per
*evaluator*. A campaign that builds a fresh evaluator per ligand therefore
pays them once per *ligand*. The persistent runtime
(:class:`repro.engine.host_runtime.PersistentHostRuntime`) pays them once per
*campaign* and swaps each new ligand in through the versioned slot-rebind
protocol (with the next ligand prefetch-staged while the current one docks).

This benchmark measures exactly that fixed overhead, ligand by ligand, for
the same library on the same receptor:

* ``fresh_fixed_seconds_per_ligand`` — mean (bind + evaluator construction +
  warm-up + close) when every ligand gets its own pool,
* ``persistent_fixed_seconds_per_ligand`` — total acquire/rebind time of the
  persistent runtime (pool spawn and warm-up included, amortised) divided by
  the same ligand count,
* ``fixed_overhead_speedup`` — the ratio; the acceptance bar is **>= 5x**
  for a >= 16-ligand campaign with 4 host workers,
* ``bitwise_identical`` — every per-ligand energy vector from both pool
  modes compared exactly against the serial evaluator.

Run standalone::

    python benchmarks/bench_persistent_runtime.py [--smoke] [--out artifact.json]

or through pytest (smoke scale): ``pytest benchmarks/bench_persistent_runtime.py``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import observability as obs
from repro.engine.host_runtime import ParallelSpotEvaluator, PersistentHostRuntime
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.molecules.spots import find_spots
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.molecules.transforms import random_quaternion
from repro.scoring.cutoff import CutoffLennardJonesScoring

#: (name, receptor atoms, ligands, host workers)
FULL_CASES = [("full", 600, 32, 4)]
#: The smoke case still satisfies the acceptance shape: >= 16 ligands, 4
#: workers, >= 5x fixed-overhead reduction. CI regenerates this one.
SMOKE_CASES = [("smoke", 300, 16, 4)]

N_SPOTS = 4
POSES_PER_SPOT = 3


def _scoring():
    return CutoffLennardJonesScoring(dtype=np.float32)


def _launch(spots, seed):
    """One deterministic evaluation launch spread over every spot."""
    rng = np.random.default_rng(seed)
    spot_ids, translations = [], []
    for s in spots:
        translations.append(
            s.center + rng.uniform(-s.radius, s.radius, size=(POSES_PER_SPOT, 3))
        )
        spot_ids.extend([s.index] * POSES_PER_SPOT)
    translations = np.concatenate(translations)
    return (
        np.asarray(spot_ids, dtype=np.int64),
        translations,
        random_quaternion(rng, translations.shape[0]),
    )


def bench_case(name, n_rec, n_ligands, n_workers, seed=7):
    receptor = generate_receptor(n_rec, seed=seed, title=name)
    spots = find_spots(receptor, N_SPOTS)
    ligands = [
        generate_ligand(8 + (i % 7), seed=seed + 100 + i, title=f"L{i:03d}")
        for i in range(n_ligands)
    ]
    spot_ids, t, q = _launch(spots, seed)
    serial = [
        SerialEvaluator(_scoring().bind(receptor, lig)).evaluate(spot_ids, t, q)
        for lig in ligands
    ]
    bitwise = True

    # Fresh pool per ligand: bind + spawn + warm-up + close, every time.
    fresh_fixed = []
    for i, lig in enumerate(ligands):
        t0 = time.perf_counter()
        scorer = _scoring().bind(receptor, lig)
        ev = ParallelSpotEvaluator(scorer, n_workers=n_workers)
        setup_s = time.perf_counter() - t0
        energies = ev.evaluate(spot_ids, t, q)
        t0 = time.perf_counter()
        ev.close()
        fresh_fixed.append(setup_s + time.perf_counter() - t0)
        bitwise = bitwise and np.array_equal(energies, serial[i])

    # Persistent pool: spawn + stage + warm-up once, then slot rebinds (the
    # next ligand prefetch-staged while the "docking" launch runs).
    reuses0 = obs.counter("host.pool.reuses").value
    acquire_s = []
    # drift_threshold=1.0 disables the share-drift re-measure trigger: the
    # micro-launches here (a dozen poses) make per-worker pose shares pure
    # noise, and a drift-triggered warm-up would charge measurement policy
    # to the rebind cost this benchmark isolates.
    with PersistentHostRuntime(
        receptor, spots, n_workers=n_workers, scoring=_scoring(),
        drift_threshold=1.0,
    ) as runtime:
        for i, lig in enumerate(ligands):
            if i + 1 < n_ligands:
                runtime.hint_next(ligands[i + 1])
            t0 = time.perf_counter()
            ev = runtime.acquire(lig)
            acquire_s.append(time.perf_counter() - t0)
            bitwise = bitwise and np.array_equal(
                ev.evaluate(spot_ids, t, q), serial[i]
            )
    pool_reuses = obs.counter("host.pool.reuses").value - reuses0

    fresh_per_ligand = float(np.mean(fresh_fixed))
    persistent_per_ligand = float(np.sum(acquire_s)) / n_ligands
    return {
        "case": name,
        "receptor_atoms": n_rec,
        "ligands": n_ligands,
        "host_workers": n_workers,
        "fresh_fixed_seconds_per_ligand": fresh_per_ligand,
        "persistent_fixed_seconds_per_ligand": persistent_per_ligand,
        "fixed_overhead_speedup": fresh_per_ligand / persistent_per_ligand,
        "first_acquire_seconds": acquire_s[0],
        "rebind_seconds_mean": float(np.mean(acquire_s[1:])),
        "pool_reuses": pool_reuses,
        "bitwise_identical": bool(bitwise),
    }


def run_benchmark(smoke=False, out_path=None):
    cases = SMOKE_CASES if smoke else FULL_CASES
    artifact = {
        "benchmark": "persistent_runtime",
        "cases": [bench_case(*case) for case in cases],
    }
    if out_path:
        from table_utils import write_bench_artifact

        write_bench_artifact("persistent_runtime", artifact, path=out_path)
    return artifact


def _report(artifact):
    lines = []
    for case in artifact["cases"]:
        lines.append(
            f"{case['case']}: {case['ligands']} ligands, "
            f"{case['host_workers']} workers"
        )
        lines.append(
            f"  fixed overhead/ligand: fresh "
            f"{case['fresh_fixed_seconds_per_ligand'] * 1e3:.1f} ms, persistent "
            f"{case['persistent_fixed_seconds_per_ligand'] * 1e3:.1f} ms  "
            f"(speedup {case['fixed_overhead_speedup']:.1f}x)"
        )
        lines.append(
            f"  first acquire {case['first_acquire_seconds'] * 1e3:.1f} ms, "
            f"later rebinds {case['rebind_seconds_mean'] * 1e3:.2f} ms mean, "
            f"{case['pool_reuses']} pool reuses, bitwise="
            f"{'yes' if case['bitwise_identical'] else 'NO'}"
        )
    return "\n".join(lines)


def test_persistent_runtime_smoke(benchmark, tmp_path):
    """CI smoke: the acceptance shape — >=16 ligands, 4 workers, >=5x."""
    out = tmp_path / "persistent_runtime.json"
    artifact = benchmark.pedantic(
        lambda: run_benchmark(smoke=True, out_path=str(out)),
        rounds=1,
        iterations=1,
    )
    from conftest import emit
    from table_utils import load_bench_artifact

    emit("Persistent runtime — fixed overhead smoke", _report(artifact))
    assert load_bench_artifact(out)["benchmark"] == "persistent_runtime"
    for case in artifact["cases"]:
        assert case["bitwise_identical"], "pool reuse must not move a float"
        assert case["ligands"] >= 16
        assert case["host_workers"] == 4
        assert case["pool_reuses"] == case["ligands"] - 1
        assert case["fixed_overhead_speedup"] >= 5.0, case


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small/fast variant")
    parser.add_argument(
        "--out", default="persistent_runtime.json", help="JSON artifact"
    )
    args = parser.parse_args(argv)
    artifact = run_benchmark(smoke=args.smoke, out_path=args.out)
    print(_report(artifact))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
