"""Docking pipeline depth: campaign ligands/second at depth 1 vs 2 vs 4.

At ``pipeline_depth=1`` the campaign docks one ligand at a time: every
generation barrier, every host-side Select/Combine/Include, and every
ligand rebind leaves the worker pool idle. At depth D the runner keeps D
ligands resident (D+1 slot banks) and in flight at once, so one ligand's
barrier tails and host bookkeeping are filled with another ligand's poses
— the paper's keep-every-device-busy discipline applied across ligand
boundaries.

This benchmark runs the *same* campaign (same receptor, library, seeds)
at depth 1, 2, and 4 with 4 host workers and reports:

* ``ligands_per_s_depthD`` — end-to-end campaign throughput (pool spawn
  and warm-up included; every depth pays them identically),
* ``pipeline_speedup_depthD`` — throughput at depth D over depth 1; the
  acceptance bar is **>= 1.3x at depth >= 2** for the smoke config,
* ``pool_idle_seconds_depthD`` / ``pipeline_fill_poses_depthD`` — how much
  worker-pool idle time the pipeline drains, and how many poses landed in
  another ligand's barrier gaps,
* ``science_digest_identical`` — the store's science digest compared
  byte-for-byte across all depths (the pipeline is an execution knob,
  never a science knob).

Honesty note: wall-clock speedup is bounded by the cores the container
actually grants. On a single-core host the workers timeshare one CPU, so
lig/s cannot improve no matter how well the pipeline fills the pool — the
smoke test then gates on the mechanism (pool idle drained, digests
identical) and enforces the >= 1.3x bar only where >= 2 cores exist. The
artifact records ``available_cores`` so numbers read honestly either way.

Run standalone::

    python benchmarks/bench_pipeline_depth.py [--smoke] [--out artifact.json]

or through pytest (smoke scale): ``pytest benchmarks/bench_pipeline_depth.py``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import observability as obs
from repro.campaign import CampaignRunner, SyntheticSource
from repro.molecules.synthetic import generate_receptor

#: (name, receptor atoms, ligands, workload scale)
FULL_CASES = [("full", 600, 32, 0.25)]
#: CI regenerates this one; it must clear the >= 1.3x acceptance bar.
SMOKE_CASES = [("smoke", 400, 16, 0.15)]

DEPTHS = (1, 2, 4)
N_SPOTS = 4
N_WORKERS = 4
SEED = 7


def _run_campaign(receptor, n_ligands, scale, depth):
    runner = CampaignRunner(
        receptor,
        SyntheticSource(n_ligands, atoms_range=(16, 32), seed=3),
        store_path=":memory:",
        n_spots=N_SPOTS,
        metaheuristic="M1",
        seed=SEED,
        workload_scale=scale,
        shard_size=n_ligands,
        host_workers=N_WORKERS,
        pipeline_depth=depth,
    )
    idle0 = obs.counter("host.pool.idle.seconds").value
    fill0 = obs.counter("host.pipeline.fill.poses").value
    start = time.perf_counter()
    with runner.run() as store:
        wall = time.perf_counter() - start
        if store.counts()["done"] != n_ligands:
            raise RuntimeError(f"campaign at depth {depth} lost ligands")
        digest = store.science_digest()
    idle = obs.counter("host.pool.idle.seconds").value - idle0
    fill = obs.counter("host.pipeline.fill.poses").value - fill0
    return n_ligands / wall, digest, idle, fill


def bench_case(name, n_rec, n_ligands, scale):
    receptor = generate_receptor(n_rec, seed=SEED, title=name)
    rates, digests, idles, fills = {}, {}, {}, {}
    for depth in DEPTHS:
        rates[depth], digests[depth], idles[depth], fills[depth] = _run_campaign(
            receptor, n_ligands, scale, depth
        )
    result = {
        "case": name,
        "receptor_atoms": n_rec,
        "ligands": n_ligands,
        "workload_scale": scale,
        "host_workers": N_WORKERS,
        "available_cores": os.cpu_count() or 1,
        "science_digest_identical": len(set(digests.values())) == 1,
    }
    for depth in DEPTHS:
        result[f"ligands_per_s_depth{depth}"] = rates[depth]
        result[f"pool_idle_seconds_depth{depth}"] = idles[depth]
        result[f"pipeline_fill_poses_depth{depth}"] = fills[depth]
        if depth > 1:
            result[f"pipeline_speedup_depth{depth}"] = rates[depth] / rates[1]
    return result


def run_benchmark(smoke=False, out_path=None):
    cases = SMOKE_CASES if smoke else FULL_CASES
    artifact = {
        "benchmark": "pipeline_depth",
        "cases": [bench_case(*case) for case in cases],
    }
    if out_path:
        from table_utils import write_bench_artifact

        write_bench_artifact("pipeline_depth", artifact, path=out_path)
    return artifact


def _report(artifact):
    lines = []
    for case in artifact["cases"]:
        lines.append(
            f"{case['case']}: {case['ligands']} ligands, "
            f"{case['host_workers']} workers, scale {case['workload_scale']}, "
            f"{case['available_cores']} core(s)"
        )
        rates = "  ".join(
            f"depth {d}: {case[f'ligands_per_s_depth{d}']:.1f} lig/s"
            for d in DEPTHS
        )
        lines.append(f"  {rates}")
        idles = "  ".join(
            f"depth {d}: {case[f'pool_idle_seconds_depth{d}']:.3f}s idle"
            f" / {case[f'pipeline_fill_poses_depth{d}']} fill poses"
            for d in DEPTHS
        )
        lines.append(f"  {idles}")
        speedups = "  ".join(
            f"depth {d}: {case[f'pipeline_speedup_depth{d}']:.2f}x"
            for d in DEPTHS
            if d > 1
        )
        lines.append(
            f"  speedup over depth 1: {speedups}, science digest "
            f"{'identical' if case['science_digest_identical'] else 'DIVERGED'}"
        )
    return "\n".join(lines)


def test_pipeline_depth_smoke(benchmark, tmp_path):
    """CI smoke: digests byte-identical at every depth; on hosts with >= 2
    cores, >= 1.3x lig/s at depth >= 2; on single-core hosts (where workers
    timeshare one CPU and wall-clock gains are impossible) the pipeline must
    still demonstrably drain pool idle time with barrier-gap fill poses."""
    out = tmp_path / "pipeline_depth.json"
    artifact = benchmark.pedantic(
        lambda: run_benchmark(smoke=True, out_path=str(out)),
        rounds=1,
        iterations=1,
    )
    from conftest import emit
    from table_utils import load_bench_artifact

    emit("Docking pipeline — depth sweep smoke", _report(artifact))
    assert load_bench_artifact(out)["benchmark"] == "pipeline_depth"
    for case in artifact["cases"]:
        assert case["science_digest_identical"], "pipeline moved a float"
        assert case["host_workers"] == 4
        if (os.cpu_count() or 1) >= 2:
            best = max(
                case[f"pipeline_speedup_depth{d}"] for d in DEPTHS if d > 1
            )
            assert best >= 1.3, case
        else:
            # Mechanism check: the pipeline filled barrier gaps with the
            # next ligand's poses and drained most of the pool idle time.
            assert case["pipeline_fill_poses_depth1"] == 0, case
            assert case["pipeline_fill_poses_depth2"] > 0, case
            assert (
                case["pool_idle_seconds_depth2"]
                < 0.67 * case["pool_idle_seconds_depth1"]
            ), case


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small/fast variant")
    parser.add_argument(
        "--out", default="pipeline_depth.json", help="JSON artifact"
    )
    args = parser.parse_args(argv)
    artifact = run_benchmark(smoke=args.smoke, out_path=args.out)
    print(_report(artifact))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
