"""Scalability: speed-up versus GPU count on Jupiter (§5).

"the multiGPU versions prove to be scalable" — this bench grows Jupiter's
GPU set from 1 GTX 590 to the full 4× GTX 590 + 2× C2075 heterogeneous
configuration and reports OpenMP-relative speed-ups for both datasets,
asserting near-linear scaling (the workload is embarrassingly parallel; the
serial host overhead is the only Amdahl term).
"""

from __future__ import annotations

from repro.engine.executor import MultiGpuExecutor
from repro.experiments.datasets import get_dataset
from repro.experiments.trace import analytic_trace
from repro.hardware.node import jupiter
from repro.hardware.registry import get_gpu

from conftest import emit


def _sweep(dataset_name: str):
    dataset = get_dataset(dataset_name)
    trace = analytic_trace(
        "M2", dataset.n_spots, dataset.receptor_atoms, dataset.ligand_atoms
    )
    base = jupiter()
    openmp, _ = MultiGpuExecutor(base, seed=3).replay(trace, "openmp")

    gtx = get_gpu("GeForce GTX 590")
    c2075 = get_gpu("Tesla C2075")
    configurations = {
        "1x GTX590": [gtx],
        "2x GTX590": [gtx] * 2,
        "4x GTX590": [gtx] * 4,
        "4x GTX590 + 1x C2075": [gtx] * 4 + [c2075],
        "4x GTX590 + 2x C2075": [gtx] * 4 + [c2075] * 2,
    }
    rows = []
    for label, gpus in configurations.items():
        node = base.with_gpus(gpus)
        timing, _ = MultiGpuExecutor(node, seed=3).replay(trace, "gpu-heterogeneous")
        rows.append((label, len(gpus), timing.total_s, openmp.total_s / timing.total_s))
    return openmp.total_s, rows


def test_gpu_scaling_2bsm(benchmark):
    openmp_s, rows = benchmark.pedantic(
        lambda: _sweep("2BSM"), rounds=1, iterations=1
    )
    emit(
        f"Scalability on Jupiter — 2BSM, M2 (OpenMP baseline {openmp_s:.1f}s)",
        "\n".join(
            f"{label:24s} {t:8.2f} s   speed-up {s:6.1f}x" for label, _, t, s in rows
        ),
    )
    speedups = [s for *_, s in rows]
    assert speedups == sorted(speedups)  # monotone in device count
    # 4 GPUs ≥ 3.2× of 1 GPU (near-linear; host overhead is the Amdahl term).
    assert speedups[2] / speedups[0] > 3.2
    # Adding the two C2075s keeps helping.
    assert speedups[4] > speedups[2] * 1.25


def test_gpu_scaling_grows_with_problem_size(benchmark):
    """§5: 'the speed-up increases with the problem size'."""
    _, rows_small = _sweep("2BSM")
    _, rows_large = benchmark.pedantic(
        lambda: _sweep("2BXG"), rounds=1, iterations=1
    )
    emit(
        "Scalability on Jupiter — 2BXG, M2",
        "\n".join(
            f"{label:24s} {t:8.2f} s   speed-up {s:6.1f}x"
            for label, _, t, s in rows_large
        ),
    )
    for (label_s, _, _, su_s), (label_l, _, _, su_l) in zip(rows_small, rows_large):
        assert label_s == label_l
        assert su_l > su_s
