"""Paper Table 1: CUDA generation summary.

Regenerates the hardware-generation table from the spec registry and
verifies the paper's derived claims: peak performance grows monotonically
and performance-per-watt doubles (or better) per generation. The benchmark
times the modelled kernel across generations — a device of each generation
scoring the same 2BSM-sized batch — confirming the modelled ordering.
"""

from __future__ import annotations

from repro.hardware.perf_model import gpu_launch_time
from repro.hardware.specs import (
    ARCH_PAIRS_PER_CORE_CYCLE,
    CUDA_GENERATIONS,
    GpuArchitecture,
    GpuSpec,
)
from repro.scoring.base import OPS_PER_LJ_PAIR

from conftest import emit

FLOPS_2BSM = 3264 * 45 * OPS_PER_LJ_PAIR


def _representative_gpu(gen) -> GpuSpec:
    """A synthetic device with the generation's headline configuration."""
    return GpuSpec(
        name=f"{gen.name} (Table 1 flagship)",
        architecture=GpuArchitecture(gen.name.lower()),
        multiprocessors=gen.max_multiprocessors,
        cores_per_sm=gen.cores_per_sm,
        clock_mhz=1000.0 if gen.name != "Kepler" else 745.0,
        memory_mb=4096,
        bandwidth_gbs=200.0,
        ccc=gen.ccc.replace("x", "0"),
    )


def _format_table1() -> str:
    header = (
        f"{'generation':12s} {'year':>5s} {'SMs':>4s} {'cores/SM':>9s} "
        f"{'cores':>6s} {'shared KB':>10s} {'CCC':>5s} {'GFLOPS':>7s} {'perf/W':>7s}"
    )
    lines = [header]
    for g in CUDA_GENERATIONS:
        lines.append(
            f"{g.name:12s} {g.year:5d} {g.max_multiprocessors:4d} "
            f"{g.cores_per_sm:9d} {g.max_cores:6d} {g.shared_kb:10d} "
            f"{g.ccc:>5s} {g.peak_sp_gflops:7d} {g.perf_per_watt:7d}"
        )
    return "\n".join(lines)


def test_table1_regeneration(benchmark):
    text = benchmark(_format_table1)
    emit("Paper Table 1 — CUDA summary by generation", text)
    # Derived claims the paper draws from this table.
    peaks = [g.peak_sp_gflops for g in CUDA_GENERATIONS]
    assert peaks == sorted(peaks)
    ppw = [g.perf_per_watt for g in CUDA_GENERATIONS]
    assert all(b >= 2 * a for a, b in zip(ppw[:2], ppw[1:3]))


def test_modelled_generation_ordering(benchmark):
    """Scoring the same batch gets faster with each generation that has an
    architecture constant in the model."""

    def run():
        out = {}
        for gen in CUDA_GENERATIONS:
            gpu = _representative_gpu(gen)
            out[gen.name] = gpu_launch_time(gpu, 50_000, FLOPS_2BSM).total_s
        return out

    times = benchmark(run)
    emit(
        "Modelled 50k-conformation launch time by generation (s)",
        "\n".join(f"{name:10s} {t:10.4f}" for name, t in times.items()),
    )
    assert times["Fermi"] < times["Tesla"]
    assert times["Kepler"] < times["Fermi"]
    assert times["Maxwell"] < times["Kepler"]
    # Architecture constants exist for every generation in Table 1.
    assert set(ARCH_PAIRS_PER_CORE_CYCLE) == set(GpuArchitecture)
