"""Paper Table 4: the four metaheuristic configurations.

Regenerates the parameter table and verifies the calibrated workloads
reproduce the paper's relative OpenMP costs (M1 : M2 : M3 : M4). The
benchmark times a real (scaled) run of each preset on the host.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.presets import (
    PRESET_TABLE,
    expected_evaluations_per_spot,
    make_preset,
    preset_names,
)
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import run_metaheuristic

from conftest import emit


def _format_table4() -> str:
    lines = [
        f"{'MH':4s} {'initial S':>12s} {'% selected':>11s} {'% improved':>11s} "
        f"{'iters':>6s} {'LS steps':>9s} {'evals/spot':>11s}"
    ]
    for name in preset_names():
        p = PRESET_TABLE[name]
        initial = f"{p.population}*spots"
        sel = "n/a" if name == "M4" else f"{p.select_fraction:.0%}"
        lines.append(
            f"{name:4s} {initial:>12s} {sel:>11s} {p.improve_fraction:>10.0%} "
            f"{p.iterations:6d} {p.local_search_steps:9d} "
            f"{expected_evaluations_per_spot(name):11d}"
        )
    return "\n".join(lines)


def test_table4_regeneration(benchmark):
    text = benchmark(_format_table4)
    emit("Paper Table 4 — metaheuristic parameters (plus calibrated loops)", text)
    e = {m: expected_evaluations_per_spot(m) for m in preset_names()}
    # Paper Table 6 OpenMP ratios: 436.36/269.45, 136.71/269.45, 13557.29/269.45.
    assert e["M2"] / e["M1"] == pytest.approx(1.619, rel=0.05)
    assert e["M3"] / e["M1"] == pytest.approx(0.507, rel=0.10)
    assert e["M4"] / e["M1"] == pytest.approx(50.31, rel=0.05)


@pytest.mark.parametrize("name", preset_names())
def test_preset_host_run(benchmark, name, bench_spots, bench_scorer):
    """Time one real (1/20-scale) run of each preset on the host."""

    def run():
        ctx = SearchContext(
            spots=bench_spots,
            evaluator=SerialEvaluator(bench_scorer),
            rng=SpotRngPool(0, [s.index for s in bench_spots]),
        )
        return run_metaheuristic(make_preset(name, workload_scale=0.05), ctx)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.best.score < 0
    assert np.isfinite(result.best.score)
