"""Paper Table 5: benchmark compound sizes.

Regenerates the dataset table and benchmarks the synthetic structure
generation that stands in for the RCSB downloads (the documented
substitution), asserting the exact atom counts.
"""

from __future__ import annotations

from repro.experiments.datasets import dataset_names, get_dataset, materialize_dataset
from repro.molecules.surface import surface_fraction

from conftest import emit


def _format_table5() -> str:
    lines = [f"{'compound':16s} {'atoms':>7s} {'spots (modelled)':>17s}"]
    for name in dataset_names():
        spec = get_dataset(name)
        lines.append(f"{name + ' Receptor':16s} {spec.receptor_atoms:7d} {spec.n_spots:17d}")
        lines.append(f"{name + ' Ligand':16s} {spec.ligand_atoms:7d} {'-':>17s}")
    return "\n".join(lines)


def test_table5_regeneration(benchmark):
    text = benchmark(_format_table5)
    emit("Paper Table 5 — benchmark compounds", text)
    assert get_dataset("2BSM").receptor_atoms == 3264
    assert get_dataset("2BSM").ligand_atoms == 45
    assert get_dataset("2BXG").receptor_atoms == 8609
    assert get_dataset("2BXG").ligand_atoms == 32


def test_2bsm_generation(benchmark):
    bound = benchmark.pedantic(
        lambda: materialize_dataset("2BSM", n_spots=8), rounds=1, iterations=1
    )
    assert bound.receptor.n_atoms == 3264
    assert bound.ligand.n_atoms == 45
    # Structural sanity of the stand-in: globular with a real surface.
    assert 0.15 < surface_fraction(bound.receptor) < 0.75


def test_2bxg_generation(benchmark):
    bound = benchmark.pedantic(
        lambda: materialize_dataset("2BXG", n_spots=8), rounds=1, iterations=1
    )
    assert bound.receptor.n_atoms == 8609
    assert bound.ligand.n_atoms == 32
    # 2BXG is the larger receptor: larger radius of gyration.
    bsm = materialize_dataset("2BSM", n_spots=8)
    assert bound.receptor.radius_of_gyration() > bsm.receptor.radius_of_gyration()
