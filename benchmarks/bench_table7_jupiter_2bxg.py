"""Paper Table 7: 2BXG on Jupiter — execution times and speed-ups.

Regenerates the table at full paper scale (analytic trace + calibrated
performance model) and asserts the reproduction contract: speed-up bands,
heterogeneous gains, the intensification ordering, and per-cell agreement
with the paper's measured seconds.
"""

from __future__ import annotations

from repro.experiments.runner import jupiter_table
from repro.experiments.tables import format_jupiter_table

from conftest import emit
from table_utils import assert_table_shape


def test_table7(benchmark):
    table = benchmark.pedantic(
        lambda: jupiter_table("2BXG"), rounds=1, iterations=1
    )
    emit("Paper Table 7 — PDB:2BXG on Jupiter (ours vs paper)", format_jupiter_table(table))
    assert_table_shape(
        table,
        "jupiter",
        speedup_band=(70,105),
        gain_band=(0.95,1.10),
    )
