"""Paper Table 8: 2BSM on Hertz — execution times and speed-ups.

Regenerates the table at full paper scale (analytic trace + calibrated
performance model) and asserts the reproduction contract: speed-up bands,
heterogeneous gains, the intensification ordering, and per-cell agreement
with the paper's measured seconds.
"""

from __future__ import annotations

from repro.experiments.runner import hertz_table
from repro.experiments.tables import format_hertz_table

from conftest import emit
from table_utils import assert_table_shape


def test_table8(benchmark):
    table = benchmark.pedantic(
        lambda: hertz_table("2BSM"), rounds=1, iterations=1
    )
    emit("Paper Table 8 — PDB:2BSM on Hertz (ours vs paper)", format_hertz_table(table))
    assert_table_shape(
        table,
        "hertz",
        speedup_band=(60,100),
        gain_band=(1.25,1.65),
    )
