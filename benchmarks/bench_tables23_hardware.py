"""Paper Tables 2–3: Jupiter and Hertz hardware descriptions.

Regenerates the node descriptions from the device registry and checks them
against the spec values transcribed from the paper.
"""

from __future__ import annotations

from repro.hardware.node import NodeSpec, hertz, jupiter

from conftest import emit


def _format_node(node: NodeSpec) -> str:
    lines = [
        node.describe(),
        f"{'device':20s} {'arch':8s} {'SMs':>4s} {'cores':>6s} {'MHz':>6s} "
        f"{'mem MB':>7s} {'GB/s':>7s} {'CCC':>5s} {'Gpairs/s':>9s}",
    ]
    for gpu in node.gpus:
        lines.append(
            f"{gpu.name:20s} {gpu.architecture.value:8s} {gpu.multiprocessors:4d} "
            f"{gpu.total_cores:6d} {gpu.clock_mhz:6.0f} {gpu.memory_mb:7d} "
            f"{gpu.bandwidth_gbs:7.1f} {gpu.ccc:>5s} {gpu.pairs_per_sec / 1e9:9.1f}"
        )
    lines.append(
        f"{node.cpu.name:20s} {'cpu':8s} {'-':>4s} "
        f"{node.total_cpu_cores:6d} {node.cpu.clock_mhz:6.0f}"
    )
    return "\n".join(lines)


def test_table2_jupiter(benchmark):
    node = benchmark(jupiter)
    emit("Paper Table 2 — Jupiter", _format_node(node))
    assert node.total_cpu_cores == 12
    assert sum(g.name == "GeForce GTX 590" for g in node.gpus) == 4
    assert sum(g.name == "Tesla C2075" for g in node.gpus) == 2
    gtx = next(g for g in node.gpus if g.name == "GeForce GTX 590")
    assert (gtx.total_cores, gtx.clock_mhz, gtx.memory_mb) == (512, 1215, 1536)
    c2075 = next(g for g in node.gpus if g.name == "Tesla C2075")
    assert (c2075.total_cores, c2075.multiprocessors) == (448, 14)


def test_table3_hertz(benchmark):
    node = benchmark(hertz)
    emit("Paper Table 3 — Hertz", _format_node(node))
    assert node.total_cpu_cores == 4
    k40, gtx580 = node.gpus
    assert (k40.total_cores, k40.cores_per_sm, k40.multiprocessors) == (2880, 192, 15)
    assert k40.memory_mb == 11520
    assert (gtx580.total_cores, gtx580.clock_mhz) == (512, 1544)
