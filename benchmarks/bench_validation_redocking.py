"""Scientific validation: re-docking and metaheuristic-vs-random search.

Two checks that the engine *docks*, not just times:

1. **Re-docking** (the classic validation every docking engine runs):
   manufacture a synthetic co-crystal with
   :func:`repro.molecules.synthetic.generate_bound_complex`, strip the
   ligand, and search the site region. The engine must recover a pose at
   least as good as the molded reference, placed inside the site.
2. **Metaheuristics beat random search** — the premise of the whole paper
   (§2.2: metaheuristics "focus only on the most promising areas"). Same
   complex, same spots, same evaluation budget: M2 must find substantially
   deeper minima than uniform random sampling.
"""

from __future__ import annotations

import numpy as np

from repro.molecules.spots import Spot
from repro.molecules.synthetic import generate_bound_complex, generate_ligand
from repro.molecules.transforms import random_quaternion
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.vs.docking import dock

from conftest import emit


def _complex(seed):
    ligand = generate_ligand(20, seed=seed + 100)
    receptor, position, orientation = generate_bound_complex(1500, ligand, seed=seed)
    scorer = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    return ligand, receptor, position, orientation, scorer


def test_redocking_recovers_reference_quality(benchmark):
    def run():
        rows = []
        for seed in (1, 2, 3):
            ligand, receptor, position, orientation, scorer = _complex(seed)
            reference = scorer.score(position[None, :], orientation[None, :])[0]
            normal = position / np.linalg.norm(position)
            site = Spot(index=0, center=position, normal=normal, radius=5.0, anchor_atom=0)
            result = dock(
                receptor, ligand, spots=[site],
                metaheuristic="M2", workload_scale=0.4, seed=seed,
            )
            displacement = float(
                np.linalg.norm(result.best.translation - position)
            )
            rows.append((seed, float(reference), result.best_score, displacement))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Validation: re-docking into molded sites (synthetic co-crystals)",
        "\n".join(
            f"seed {seed}: reference {ref:8.2f}  recovered {rec:8.2f}  "
            f"centroid displacement {disp:4.1f} Å"
            for seed, ref, rec, disp in rows
        ),
    )
    for _, reference, recovered, displacement in rows:
        assert recovered <= reference + 1e-6  # at least as good as molded
        assert displacement <= 5.0 * np.sqrt(3) + 1e-6  # inside the site box


def test_metaheuristic_beats_random_search(benchmark):
    def run():
        rows = []
        for seed in (1, 2, 3):
            ligand, receptor, position, orientation, scorer = _complex(seed)
            normal = position / np.linalg.norm(position)
            site = Spot(index=0, center=position, normal=normal, radius=5.0, anchor_atom=0)
            result = dock(
                receptor, ligand, spots=[site],
                metaheuristic="M2", workload_scale=0.4, seed=seed,
            )
            # Random search: identical budget, identical search box.
            rng = np.random.default_rng(seed)
            n = result.evaluations
            t = position[None, :] + (2 * rng.random((n, 3)) - 1) * 5.0
            q = random_quaternion(rng, n)
            random_best = float(scorer.score(t, q).min())
            rows.append((seed, result.best_score, random_best, n))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Validation: M2 vs uniform random search at equal budget",
        "\n".join(
            f"seed {seed}: M2 {m2:8.2f}   random {rnd:8.2f}   "
            f"(budget {n} evaluations)"
            for seed, m2, rnd, n in rows
        ),
    )
    for _, m2, rnd, _ in rows:
        assert m2 < rnd  # strictly deeper minima
    # And not marginally: at least 20 % deeper on average.
    assert np.mean([m2 for _, m2, _, _ in rows]) < 1.2 * np.mean(
        [rnd for _, _, rnd, _ in rows]
    )
