"""Reproduction robustness: the qualitative conclusions are structural.

Perturbs every calibration constant of the performance model by ±25 % and
re-derives all four tables each time, checking that the paper's headline
claims survive. Also reports the warm-up-seed spread of the Hertz balancing
gain against the paper's observed band.
"""

from __future__ import annotations

from repro.experiments.validation import (
    PERTURBABLE_PARAMS,
    seed_stability,
    sensitivity_sweep,
)

from conftest import emit


def test_sensitivity_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: sensitivity_sweep(factors=(0.75, 1.25)), rounds=1, iterations=1
    )
    lines = []
    for row in rows:
        verdict = "all claims hold" if row.claims.all_hold() else (
            "BREAKS " + ", ".join(row.claims.failed())
        )
        lines.append(f"{row.parameter:26s} × {row.factor:4.2f}: {verdict}")
    emit(
        "Robustness: shape claims under ±25 % calibration perturbations",
        "\n".join(lines),
    )
    assert len(rows) == 2 * len(PERTURBABLE_PARAMS)
    assert all(row.claims.all_hold() for row in rows)


def test_warmup_seed_band(benchmark):
    spread = benchmark.pedantic(
        lambda: seed_stability(n_seeds=12), rounds=1, iterations=1
    )
    lo, hi = spread["hertz_m2_gain"]
    emit(
        "Robustness: Hertz M2 heterogeneous gain across 12 warm-up seeds",
        f"gain ∈ [{lo:.3f}, {hi:.3f}]   (paper's Tables 8–9 band: 1.31–1.57)",
    )
    assert 1.25 < lo <= hi < 1.65
