"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one paper artifact (table or figure) and
prints it next to the paper's measured values, so ``pytest benchmarks/
--benchmark-only -s`` reproduces the whole evaluation section. The
``benchmark`` fixture times the regeneration itself (analytic replays are
milliseconds; host-math kernels are the real compute).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.molecules.spots import find_spots
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.scoring.cutoff import CutoffLennardJonesScoring


def emit(title: str, body: str, name: str | None = None, data: dict | None = None) -> None:
    """Print one regenerated artifact with a banner — and persist it.

    Every emit also writes a schema-versioned ``BENCH_<slug>.json`` document
    (via :func:`table_utils.write_bench_artifact`), so any benchmark run
    leaves a machine-readable artifact in ``$BENCH_ARTIFACT_DIR`` (default
    ``bench_artifacts/``) without each script rolling its own writer. Pass
    ``data`` to attach structured numbers beyond the text report; ``name``
    overrides the slug derived from the title.
    """
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
    from table_utils import write_bench_artifact

    write_bench_artifact(name or title, {"title": title, "report": body, **(data or {})})


@pytest.fixture(scope="session")
def bench_receptor():
    """A mid-size receptor for host-math benchmarks (kept below paper scale
    so the suite stays minutes, not hours)."""
    return generate_receptor(800, seed=101, title="bench receptor")


@pytest.fixture(scope="session")
def bench_ligand():
    return generate_ligand(24, seed=102, title="bench ligand")


@pytest.fixture(scope="session")
def bench_spots(bench_receptor):
    return find_spots(bench_receptor, 8)


@pytest.fixture(scope="session")
def bench_scorer(bench_receptor, bench_ligand):
    return CutoffLennardJonesScoring(dtype=np.float32).bind(
        bench_receptor, bench_ligand
    )
