"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one paper artifact (table or figure) and
prints it next to the paper's measured values, so ``pytest benchmarks/
--benchmark-only -s`` reproduces the whole evaluation section. The
``benchmark`` fixture times the regeneration itself (analytic replays are
milliseconds; host-math kernels are the real compute).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.molecules.spots import find_spots
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.scoring.cutoff import CutoffLennardJonesScoring


def emit(title: str, body: str) -> None:
    """Print one regenerated artifact with a banner."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def bench_receptor():
    """A mid-size receptor for host-math benchmarks (kept below paper scale
    so the suite stays minutes, not hours)."""
    return generate_receptor(800, seed=101, title="bench receptor")


@pytest.fixture(scope="session")
def bench_ligand():
    return generate_ligand(24, seed=102, title="bench ligand")


@pytest.fixture(scope="session")
def bench_spots(bench_receptor):
    return find_spots(bench_receptor, 8)


@pytest.fixture(scope="session")
def bench_scorer(bench_receptor, bench_ligand):
    return CutoffLennardJonesScoring(dtype=np.float32).bind(
        bench_receptor, bench_ligand
    )
