"""Benchmark regression gate — standalone entry point.

Thin wrapper over :mod:`repro.observability.regression` (the packaged
implementation the ``repro-vs bench compare`` subcommand uses), so CI can
run the gate without installing the console script::

    python benchmarks/regression.py benchmarks/baselines bench_artifacts \
        --threshold 25 [--report-only]

Exit status: 0 when no metric moved past the threshold in its bad
direction (or ``--report-only``), 1 otherwise, 2 on unreadable artifacts.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.observability.regression import compare_sets, format_delta_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH set (file or directory)")
    parser.add_argument("current", help="current BENCH set (file or directory)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="percent a metric may move in its bad direction (default 10)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the delta table but always exit 0 (CI trend jobs)",
    )
    args = parser.parse_args(argv)
    try:
        rows = compare_sets(args.baseline, args.current, threshold_pct=args.threshold)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_delta_table(rows, args.threshold))
    regressions = sum(1 for row in rows if row.status == "regressed")
    if regressions and args.report_only:
        print(f"report-only: ignoring {regressions} regression(s)")
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
