"""Shared benchmark helpers: Tables 6–9 assertions and the BENCH artifact writer.

Every benchmark run leaves a machine-readable trace behind: a schema-versioned
``BENCH_<name>.json`` document (the :data:`BENCH_FORMAT_VERSION` discipline
mirrors ``TRACE_FORMAT_VERSION`` in :mod:`repro.engine.traceio`). That turns
ad-hoc benchmark output into a tracked perf trajectory — artifacts from
different commits/machines can be diffed because the envelope (version,
benchmark name, host facts) is uniform while ``data`` stays benchmark-shaped.
"""

from __future__ import annotations

import json
import os
import platform
import re
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.runner import TableResult
from repro.experiments.tables import paper_reference

#: Bumped on any incompatible BENCH_*.json schema change.
BENCH_FORMAT_VERSION: int = 1

#: Keys every BENCH artifact document must carry.
BENCH_REQUIRED_KEYS: tuple[str, ...] = ("format_version", "benchmark", "host", "data")

#: Default artifact directory (overridden by $BENCH_ARTIFACT_DIR or ``path=``).
BENCH_ARTIFACT_DIR_ENV = "BENCH_ARTIFACT_DIR"
DEFAULT_BENCH_ARTIFACT_DIR = "bench_artifacts"

_SLUG_RE = re.compile(r"[^a-zA-Z0-9]+")


def bench_slug(name: str) -> str:
    """Filesystem-safe benchmark name (``BENCH_<slug>.json``)."""
    slug = _SLUG_RE.sub("_", name).strip("_").lower()
    if not slug:
        raise ExperimentError(f"cannot derive a benchmark slug from {name!r}")
    return slug


def bench_artifact(benchmark: str, data: dict) -> dict:
    """Build a BENCH document: versioned envelope around benchmark data."""
    if not isinstance(data, dict):
        raise ExperimentError(
            f"benchmark data must be a dict, got {type(data).__name__}"
        )
    return {
        "format_version": BENCH_FORMAT_VERSION,
        "benchmark": bench_slug(benchmark),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "data": data,
    }


def validate_bench_artifact(doc: dict) -> dict:
    """Check a BENCH document's envelope; returns it unchanged."""
    if not isinstance(doc, dict):
        raise ExperimentError("BENCH artifact must be a JSON object")
    version = doc.get("format_version")
    if version != BENCH_FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported BENCH format version {version!r} "
            f"(this harness reads {BENCH_FORMAT_VERSION})"
        )
    for key in BENCH_REQUIRED_KEYS:
        if key not in doc:
            raise ExperimentError(f"BENCH artifact missing {key!r}")
    if not isinstance(doc["benchmark"], str) or not doc["benchmark"]:
        raise ExperimentError("BENCH artifact 'benchmark' must be a non-empty string")
    if not isinstance(doc["data"], dict):
        raise ExperimentError("BENCH artifact 'data' must be an object")
    return doc


def write_bench_artifact(
    benchmark: str, data: dict, path: str | Path | None = None
) -> Path:
    """Write one BENCH document; returns the path written.

    ``path=None`` writes ``BENCH_<slug>.json`` into ``$BENCH_ARTIFACT_DIR``
    (default ``bench_artifacts/`` under the current directory).
    """
    doc = bench_artifact(benchmark, data)
    if path is None:
        out_dir = Path(os.environ.get(BENCH_ARTIFACT_DIR_ENV, DEFAULT_BENCH_ARTIFACT_DIR))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{doc['benchmark']}.json"
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path


def load_bench_artifact(path: str | Path) -> dict:
    """Read and validate one BENCH document."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ExperimentError(f"cannot read BENCH artifact: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid BENCH artifact JSON: {exc}") from exc
    return validate_bench_artifact(doc)


def speedup(row, base="openmp", target="het_system_het_comp") -> float:
    """OpenMP-vs-heterogeneous speed-up for one row."""
    return row.seconds(base) / row.seconds(target)


def balance_gain(row) -> float:
    """Heterogeneous-vs-homogeneous computation gain for one row."""
    return row.seconds("het_system_hom_comp") / row.seconds("het_system_het_comp")


def assert_table_shape(
    table: TableResult,
    node: str,
    speedup_band: tuple[float, float],
    gain_band: tuple[float, float],
    absolute_rel: float = 0.25,
    skip_absolute: tuple[tuple[str, str], ...] = (),
) -> None:
    """The reproduction contract for one table.

    * every per-metaheuristic speed-up lies in ``speedup_band``;
    * every heterogeneous gain lies in ``gain_band``;
    * M4 posts the highest speed-up (the paper's intensification claim);
    * each cell is within ``absolute_rel`` of the paper's measured seconds,
      except the cells named in ``skip_absolute`` (documented deviations).
    """
    ref = paper_reference(node, table.dataset_name)
    speedups = {}
    for row in table.rows:
        s = speedup(row)
        g = balance_gain(row)
        speedups[row.preset] = s
        assert speedup_band[0] < s < speedup_band[1], (
            f"{row.preset}: speed-up {s:.1f} outside {speedup_band}"
        )
        assert gain_band[0] < g < gain_band[1], (
            f"{row.preset}: gain {g:.2f} outside {gain_band}"
        )
        for column, paper_value in ref[row.preset].items():
            if (row.preset, column) in skip_absolute:
                continue
            ours = row.seconds(column)
            assert abs(ours - paper_value) / paper_value < absolute_rel, (
                f"{row.preset}/{column}: {ours:.2f} vs paper {paper_value:.2f}"
            )
    assert speedups["M4"] == max(speedups.values()), "M4 must post the best speed-up"
    assert speedups["M2"] > speedups["M1"], "intensification must raise the speed-up"
