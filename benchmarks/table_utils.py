"""Shared assertions for the Tables 6–9 benchmarks."""

from __future__ import annotations

from repro.experiments.runner import TableResult
from repro.experiments.tables import paper_reference


def speedup(row, base="openmp", target="het_system_het_comp") -> float:
    """OpenMP-vs-heterogeneous speed-up for one row."""
    return row.seconds(base) / row.seconds(target)


def balance_gain(row) -> float:
    """Heterogeneous-vs-homogeneous computation gain for one row."""
    return row.seconds("het_system_hom_comp") / row.seconds("het_system_het_comp")


def assert_table_shape(
    table: TableResult,
    node: str,
    speedup_band: tuple[float, float],
    gain_band: tuple[float, float],
    absolute_rel: float = 0.25,
    skip_absolute: tuple[tuple[str, str], ...] = (),
) -> None:
    """The reproduction contract for one table.

    * every per-metaheuristic speed-up lies in ``speedup_band``;
    * every heterogeneous gain lies in ``gain_band``;
    * M4 posts the highest speed-up (the paper's intensification claim);
    * each cell is within ``absolute_rel`` of the paper's measured seconds,
      except the cells named in ``skip_absolute`` (documented deviations).
    """
    ref = paper_reference(node, table.dataset_name)
    speedups = {}
    for row in table.rows:
        s = speedup(row)
        g = balance_gain(row)
        speedups[row.preset] = s
        assert speedup_band[0] < s < speedup_band[1], (
            f"{row.preset}: speed-up {s:.1f} outside {speedup_band}"
        )
        assert gain_band[0] < g < gain_band[1], (
            f"{row.preset}: gain {g:.2f} outside {gain_band}"
        )
        for column, paper_value in ref[row.preset].items():
            if (row.preset, column) in skip_absolute:
                continue
            ours = row.seconds(column)
            assert abs(ours - paper_value) / paper_value < absolute_rel, (
                f"{row.preset}/{column}: {ours:.2f} vs paper {paper_value:.2f}"
            )
    assert speedups["M4"] == max(speedups.values()), "M4 must post the best speed-up"
    assert speedups["M2"] > speedups["M1"], "intensification must raise the speed-up"
