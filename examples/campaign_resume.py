"""Durable screening campaigns: crash mid-run, resume, lose nothing.

The demo screens a small synthetic library as a *campaign* — every result
lands in a SQLite store, every shard boundary in a write-ahead journal —
then simulates a hard crash partway through by injecting an interrupt into
the docking call. Resuming re-docks only the ligands that never completed,
and because ligand ``i`` always docks with ``seed + i``, the recovered
ranking is bitwise identical to an uninterrupted run.

Run:
    python examples/campaign_resume.py
"""

import os
import tempfile

import repro.campaign.runner as campaign_runner
from repro.campaign import CampaignRunner, SyntheticSource
from repro.molecules import generate_receptor

N_LIGANDS = 8
SHARD_SIZE = 2
CRASH_AFTER = 5  # dock calls before the simulated power cut


def make_runner(receptor, store_path):
    return CampaignRunner(
        receptor,
        SyntheticSource(N_LIGANDS, atoms_range=(10, 16), seed=3),
        store_path=store_path,
        n_spots=3,
        metaheuristic="M1",
        workload_scale=0.1,
        seed=7,
        shard_size=SHARD_SIZE,
    )


def main() -> None:
    receptor = generate_receptor(400, seed=41, title="campaign-demo receptor")
    workdir = tempfile.mkdtemp(prefix="campaign-demo-")
    store_path = os.path.join(workdir, "campaign.sqlite")

    # --- reference: the same campaign, never interrupted --------------------
    with make_runner(receptor, os.path.join(workdir, "ref.sqlite")).run() as store:
        reference = [(r["title"], r["best_score"]) for r in store.top(N_LIGANDS)]

    # --- run until the lights go out ----------------------------------------
    real_dock = campaign_runner.dock
    calls = {"n": 0}

    def failing_dock(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > CRASH_AFTER:
            raise KeyboardInterrupt  # stand-in for SIGKILL / power cut
        return real_dock(*args, **kwargs)

    campaign_runner.dock = failing_dock
    print(f"screening {N_LIGANDS} ligands in shards of {SHARD_SIZE}...")
    try:
        make_runner(receptor, store_path).run()
    except KeyboardInterrupt:
        print(f"crashed after {CRASH_AFTER} docks (mid-shard, mid-campaign)\n")
    finally:
        campaign_runner.dock = real_dock

    # --- what survived the crash --------------------------------------------
    from repro.campaign import CampaignStore

    with CampaignStore.open(store_path) as store:
        counts = store.counts()
        print(f"store after crash: {counts['done']} done, "
              f"{counts['pending'] + counts['running']} outstanding")

    # --- resume: only the remainder runs ------------------------------------
    docked_on_resume = []

    def counting_dock(*args, **kwargs):
        docked_on_resume.append(kwargs["seed"] - 7)  # recover the ordinal
        return real_dock(*args, **kwargs)

    campaign_runner.dock = counting_dock
    try:
        with make_runner(receptor, store_path).resume() as store:
            recovered = [(r["title"], r["best_score"]) for r in store.top(N_LIGANDS)]
            assert store.is_complete()
    finally:
        campaign_runner.dock = real_dock

    print(f"resume re-docked ordinals {docked_on_resume} only\n")

    print(f"{'ligand':10s} {'score':>9s}")
    for title, score in recovered:
        print(f"{title:10s} {score:9.3f}")

    assert recovered == reference
    print("\nrecovered ranking is bitwise identical to the uninterrupted run")


if __name__ == "__main__":
    main()
