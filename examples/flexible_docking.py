"""Flexible-ligand docking (future-work extension): search ligand torsions
alongside the rigid pose, then analyse the resulting pose families.

Run:
    python examples/flexible_docking.py
"""

import numpy as np

from repro.molecules import FlexibleLigand, generate_ligand, generate_receptor, topology_summary
from repro.vs import dock, dock_flexible


def main() -> None:
    receptor = generate_receptor(1200, seed=41, title="flexible-demo receptor")
    ligand = generate_ligand(36, seed=42, title="flexible-demo ligand")

    topo = topology_summary(ligand)
    flex = FlexibleLigand(ligand, max_torsions=6)
    print(f"ligand: {ligand.n_atoms} atoms, {topo['n_bonds']} bonds, "
          f"{topo['n_rotatable_bonds']} rotatable bonds "
          f"({flex.n_torsions} searched)\n")

    rigid = dock(receptor, ligand, n_spots=6, metaheuristic="M2",
                 workload_scale=0.2, seed=7)
    flexible = dock_flexible(receptor, ligand, n_spots=6, max_torsions=6,
                             walkers_per_spot=10, steps=40, seed=7)

    print(f"{'engine':10s} {'best score':>11s} {'evaluations':>12s}")
    print(f"{'rigid':10s} {rigid.best_score:11.2f} {rigid.evaluations:12d}")
    print(f"{'flexible':10s} {flexible.best_score:11.2f} {flexible.evaluations:12d}")

    best = flexible.best
    print(f"\nbest flexible pose (spot {best.spot_index}):")
    print(f"  position  {np.round(best.translation, 2)}")
    print(f"  torsions  {np.round(np.degrees(best.torsions), 1)} deg")
    conformer = flex.conformer(best.torsions)
    shift = np.linalg.norm(conformer - flex.base_coords, axis=1)
    print(f"  largest internal atom displacement vs input geometry: "
          f"{shift.max():.2f} Å")
    print(f"  covalent geometry preserved: "
          f"{flex.bond_lengths_preserved(conformer, atol=1e-5)}")


if __name__ == "__main__":
    main()
