"""The paper's core experiment in miniature: one docking workload timed
under every execution strategy on both machines (§3.2–3.3, §5).

Two layers, mirroring the reproduction methodology:

1. a *real* (scaled-down) search runs on the host to produce actual docking
   results — which are identical no matter which machine is modelled;
2. the *full paper-scale* launch trace is replayed through the calibrated
   performance model under each scheduling strategy, producing the
   simulated wall-clock comparison of Tables 6–9.

Run:
    python examples/heterogeneous_scheduling.py
"""

from repro.engine import MultiGpuExecutor
from repro.engine.executor import simulate_gpu_trace
from repro.engine.scheduler import StaticEqualScheduler, StaticProportionalScheduler
from repro.experiments import analytic_trace, get_dataset
from repro.hardware import hertz, jupiter
from repro.molecules import generate_ligand, generate_receptor
from repro.vs import PipelineConfig, VirtualScreeningPipeline, gantt

MODES = ("openmp", "gpu-homogeneous", "gpu-heterogeneous", "gpu-dynamic")


def main() -> None:
    # --- layer 1: real search (scaled) -------------------------------
    receptor = generate_receptor(3264, seed=11, title="2BSM-like")
    ligand = generate_ligand(45, seed=12)
    pipeline = VirtualScreeningPipeline(
        config=PipelineConfig(n_spots=8, metaheuristic="M2", workload_scale=0.1)
    )
    result = pipeline.dock(receptor, ligand)
    print(f"real search on the host: best score {result.best_score:.2f} kcal/mol "
          f"({result.evaluations} evaluations)")
    print("(the search outcome is mode-invariant: scheduling only moves time)\n")

    # --- layer 2: full-scale timing under each strategy --------------
    dataset = get_dataset("2BSM")
    trace = analytic_trace(
        "M2", dataset.n_spots, dataset.receptor_atoms, dataset.ligand_atoms
    )
    total_poses = sum(r.n_conformations for r in trace)
    print(f"timing the full paper-scale M2/{dataset.name} workload "
          f"({total_poses:,} conformations, {len(trace)} launches):")

    for node in (jupiter(), hertz()):
        executor = MultiGpuExecutor(node, seed=7)
        times = {}
        print(f"\n=== {node.describe()} ===")
        print(f"{'strategy':20s} {'scheduler':22s} {'sim. time':>10s} "
              f"{'vs OpenMP':>10s} {'balance':>8s}")
        for mode in MODES:
            timing, scheduler = executor.replay(trace, mode)
            times[mode] = timing.total_s
            print(
                f"{mode:20s} {scheduler:22s} {timing.total_s:9.2f}s "
                f"{times['openmp'] / timing.total_s:9.1f}x {timing.balance:8.3f}"
            )
        gain = times["gpu-homogeneous"] / times["gpu-heterogeneous"]
        print(f"heterogeneous-vs-homogeneous computation gain: {gain:.2f}x "
              f"({'large — K40c >> GTX 580' if gain > 1.2 else 'marginal — near-equal GPUs'})")

    # --- bonus: see the barrier waits (first 6 launches on Hertz) --------
    node = hertz()
    import numpy as np

    head = trace[:6]
    names = [g.name for g in node.gpus]
    for label, scheduler in (
        ("equal split (Algorithm 2 homogeneous)", StaticEqualScheduler()),
        (
            "warm-up proportional (heterogeneous)",
            StaticProportionalScheduler(
                np.array([g.pairs_per_sec for g in node.gpus])
                / sum(g.pairs_per_sec for g in node.gpus)
            ),
        ),
    ):
        timeline = []
        simulate_gpu_trace(head, node, scheduler, timeline=timeline)
        print(f"\ndevice schedule under {label}:")
        print(gantt(timeline, names))


if __name__ == "__main__":
    main()
