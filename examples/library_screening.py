"""Drug-discovery library screening (§1): rank a ligand library against a
receptor by best binding score.

Run:
    python examples/library_screening.py
"""

from repro.hardware import jupiter
from repro.molecules import generate_receptor
from repro.vs import PipelineConfig, VirtualScreeningPipeline, synthetic_library


def main() -> None:
    receptor = generate_receptor(1500, seed=21, title="screening target")
    library = synthetic_library(12, atoms_range=(18, 48), seed=22)
    print(f"screening {len(library)} ligands "
          f"({min(l.n_atoms for l in library)}-{max(l.n_atoms for l in library)} "
          f"atoms) against {receptor.title}\n")

    pipeline = VirtualScreeningPipeline(
        node=jupiter(),
        config=PipelineConfig(n_spots=8, metaheuristic="M2", workload_scale=0.1),
    )
    report = pipeline.screen(receptor, library)

    print(report.to_text())
    top = report.top(3)
    print("\nlead candidates for the next discovery stage:")
    for entry in top:
        print(f"  {entry.ligand_title}: {entry.best_score:.2f} kcal/mol "
              f"(spot {entry.best_spot})")


if __name__ == "__main__":
    main()
