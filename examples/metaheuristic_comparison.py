"""Compare the paper's M1–M4 presets and the template extensions (PSO,
Simulated Annealing, Tabu, GRASP, VNS) on the same docking problem.

"The best metaheuristic to deal with a particular problem is not clear, and
thus additional experiments need to be carried out with different
metaheuristics" (§1) — this script is that experiment: same complex, same
spots, same seeds; quality versus scoring budget.

Run:
    python examples/metaheuristic_comparison.py
"""

import numpy as np

from repro.metaheuristics import (
    SearchContext,
    SerialEvaluator,
    SpotRngPool,
    make_preset,
    run_metaheuristic,
)
from repro.metaheuristics.extra import (
    make_ant_colony,
    make_differential_evolution,
    make_grasp,
    make_pso,
    make_simulated_annealing,
    make_tabu_search,
    make_vns,
)
from repro.molecules import find_spots, generate_ligand, generate_receptor
from repro.scoring import CutoffLennardJonesScoring


def main() -> None:
    receptor = generate_receptor(1200, seed=31)
    ligand = generate_ligand(32, seed=32)
    spots = find_spots(receptor, 8)
    scorer = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)

    candidates = {
        "M1 (GA)": make_preset("M1", workload_scale=0.25),
        "M2 (scatter-like)": make_preset("M2", workload_scale=0.25),
        "M3 (light LS)": make_preset("M3", workload_scale=0.25),
        "M4 (pure LS)": make_preset("M4", workload_scale=0.05),
        "PSO": make_pso(swarm_size=32, iterations=20),
        "SimAnnealing": make_simulated_annealing(walkers=16, iterations=20),
        "TabuSearch": make_tabu_search(walkers=8, iterations=16),
        "GRASP": make_grasp(restarts=6, per_restart=16),
        "VNS": make_vns(walkers=16, iterations=16),
        "DiffEvolution": make_differential_evolution(population=32, iterations=20),
        "AntColony": make_ant_colony(archive_size=24, ants=24, iterations=20),
    }

    print(f"{'metaheuristic':18s} {'best score':>11s} {'evaluations':>12s} "
          f"{'score/keval':>12s}")
    rows = []
    for label, spec in candidates.items():
        evaluator = SerialEvaluator(scorer)
        ctx = SearchContext(
            spots=spots,
            evaluator=evaluator,
            rng=SpotRngPool(1, [s.index for s in spots]),
        )
        result = run_metaheuristic(spec, ctx)
        evals = evaluator.stats.n_conformations
        rows.append((label, result.best.score, evals))
        print(f"{label:18s} {result.best.score:11.2f} {evals:12d} "
              f"{result.best.score / (evals / 1000):12.2f}")

    best = min(rows, key=lambda r: r[1])
    cheapest = min(rows, key=lambda r: r[2])
    print(f"\nbest pose quality: {best[0]} ({best[1]:.2f} kcal/mol)")
    print(f"smallest budget:   {cheapest[0]} ({cheapest[2]} evaluations)")
    print("\n(the paper's point: no single winner — which is why the template")
    print(" plus heterogeneous hardware matters: trying them all is cheap)")


if __name__ == "__main__":
    main()
