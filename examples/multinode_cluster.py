"""Future work (§6): scale the screening to a message-passing cluster of
heterogeneous nodes.

Run:
    python examples/multinode_cluster.py
"""

from repro.engine import ClusterSpec, simulate_cluster_run
from repro.experiments import analytic_trace, get_dataset
from repro.hardware import hertz, jupiter


def main() -> None:
    dataset = get_dataset("2BXG")
    trace = analytic_trace(
        "M4", dataset.n_spots, dataset.receptor_atoms, dataset.ligand_atoms
    )
    payload = (dataset.receptor_atoms + dataset.ligand_atoms) * 5 * 4  # bytes

    print(f"workload: M4 over {dataset.n_spots} spots of PDB:{dataset.name} "
          f"({sum(r.n_conformations for r in trace):,} conformations)\n")
    print(f"{'cluster':28s} {'compute':>9s} {'comm':>9s} {'total':>9s} "
          f"{'speed-up':>9s} {'balance':>8s}")

    baseline = None
    for label, nodes in (
        ("1x Jupiter", (jupiter(),)),
        ("1x Jupiter + 1x Hertz", (jupiter(), hertz())),
        ("2x Jupiter + 2x Hertz", (jupiter(), jupiter(), hertz(), hertz())),
        ("4x Jupiter + 4x Hertz", (jupiter(),) * 4 + (hertz(),) * 4),
    ):
        cluster = ClusterSpec(name=label, nodes=nodes)
        timing = simulate_cluster_run(cluster, trace, dataset.n_spots, payload)
        if baseline is None:
            baseline = timing.total_s
        comm = timing.broadcast_s + timing.gather_s
        print(
            f"{label:28s} {timing.compute_s:8.1f}s {comm * 1e3:8.2f}ms "
            f"{timing.total_s:8.1f}s {baseline / timing.total_s:8.2f}x "
            f"{timing.balance:8.3f}"
        )

    print("\nspot-level decomposition keeps communication to two collectives;")
    print("the workload scales to the cluster as the paper's future work expects.")


if __name__ == "__main__":
    main()
