"""Quickstart: dock one ligand against one receptor in ~20 lines.

Run:
    python examples/quickstart.py
"""

from repro.molecules import generate_ligand, generate_receptor
from repro.vs import PipelineConfig, VirtualScreeningPipeline


def main() -> None:
    # Synthetic structures stand in for PDB downloads (see DESIGN.md);
    # repro.molecules.read_pdb loads real files identically.
    receptor = generate_receptor(1000, seed=1, title="demo receptor")
    ligand = generate_ligand(30, seed=2, title="demo ligand")

    # The pipeline defaults to the paper's Hertz node (Tesla K40c + GTX 580)
    # and the M2 metaheuristic. workload_scale trims the paper-scale search
    # effort so the demo runs in seconds.
    pipeline = VirtualScreeningPipeline(
        config=PipelineConfig(n_spots=8, metaheuristic="M2", workload_scale=0.2)
    )

    result = pipeline.dock(receptor, ligand)

    print(f"receptor: {receptor.title} ({receptor.n_atoms} atoms)")
    print(f"ligand:   {ligand.title} ({ligand.n_atoms} atoms)")
    print(f"best binding score: {result.best_score:.2f} kcal/mol "
          f"at spot {result.best.spot_index}")
    print(f"scoring evaluations: {result.evaluations}")
    print(f"simulated wall time on Hertz (heterogeneous computation): "
          f"{result.simulated_seconds:.3f} s")
    print("\nbest score per surface spot:")
    for conf in sorted(result.per_spot, key=lambda c: c.score):
        print(f"  spot {conf.spot_index:2d}: {conf.score:10.2f}")


if __name__ == "__main__":
    main()
