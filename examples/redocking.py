"""Re-docking validation: recover a known binding pose.

The classic docking sanity check: manufacture a synthetic co-crystal (a
receptor whose binding site is molded around a reference ligand pose),
strip the ligand, and ask the engine to find it again — then compare the
recovered pose against the ground truth.

Run:
    python examples/redocking.py
"""

import numpy as np

from repro.metaheuristics.individual import Conformation
from repro.molecules import Spot, generate_ligand
from repro.molecules.synthetic import generate_bound_complex
from repro.scoring import CutoffLennardJonesScoring
from repro.vs import dock, pose_rmsd, sparkline


def main() -> None:
    ligand = generate_ligand(22, seed=51, title="reference ligand")
    receptor, ref_position, ref_orientation = generate_bound_complex(
        1500, ligand, seed=52, title="synthetic co-crystal"
    )
    scorer = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    ref_score = scorer.score(ref_position[None, :], ref_orientation[None, :])[0]
    print(f"co-crystal: {receptor.n_atoms}-atom receptor, "
          f"{ligand.n_atoms}-atom ligand")
    print(f"reference pose score: {ref_score:.2f} kcal/mol\n")

    site = Spot(
        index=0,
        center=ref_position,
        normal=ref_position / np.linalg.norm(ref_position),
        radius=5.0,
        anchor_atom=0,
    )
    result = dock(
        receptor, ligand, spots=[site],
        metaheuristic="M2", workload_scale=0.5, seed=53,
    )

    reference = Conformation(
        spot_index=0,
        translation=ref_position,
        quaternion=ref_orientation,
        score=float(ref_score),
    )
    rmsd = pose_rmsd(ligand, result.best, reference)
    displacement = float(np.linalg.norm(result.best.translation - ref_position))

    print(f"recovered pose score:  {result.best_score:.2f} kcal/mol "
          f"({'better than' if result.best_score < ref_score else 'matches'} the reference)")
    print(f"centroid displacement: {displacement:.2f} Å")
    print(f"pose RMSD vs reference: {rmsd:.2f} Å")
    print(f"evaluations spent: {result.evaluations}")

    # Show how the engine converged (re-run to capture the history).
    from repro.metaheuristics import (
        SearchContext, SerialEvaluator, SpotRngPool, make_preset, run_metaheuristic,
    )
    ctx = SearchContext(
        spots=[site], evaluator=SerialEvaluator(scorer), rng=SpotRngPool(53, [0])
    )
    trajectory = run_metaheuristic(make_preset("M2", workload_scale=0.5), ctx)
    print(f"\nconvergence: {sparkline(trajectory.best_history)} "
          f"({trajectory.best_history[0]:.1f} -> {trajectory.best_history[-1]:.1f})")


if __name__ == "__main__":
    main()
