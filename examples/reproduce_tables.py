"""Regenerate the paper's Tables 6–9 side by side with the published
values (also available as `repro-vs tables`).

Run:
    python examples/reproduce_tables.py
"""

from repro.experiments import (
    format_hertz_table,
    format_jupiter_table,
    hertz_table,
    jupiter_table,
)


def main() -> None:
    for number, build, fmt, dataset in (
        (6, jupiter_table, format_jupiter_table, "2BSM"),
        (7, jupiter_table, format_jupiter_table, "2BXG"),
        (8, hertz_table, format_hertz_table, "2BSM"),
        (9, hertz_table, format_hertz_table, "2BXG"),
    ):
        print(f"\n================ Paper Table {number} ================")
        print(fmt(build(dataset)))


if __name__ == "__main__":
    main()
