"""BINDSURF-style whole-surface screening (§2.1, §3.1).

Docks a ligand at spots covering the *entire* receptor surface — rather
than one assumed binding site — and reports the distribution of scoring
values over the surface, which is how BINDSURF discovers unexpected binding
spots. Writes the best complex as a PDB file.

Run:
    python examples/surface_screening.py
"""

import numpy as np

from repro.molecules import find_spots, generate_ligand, generate_receptor, write_pdb
from repro.vs import dock, score_map


def main() -> None:
    receptor = generate_receptor(2000, seed=7, title="surface-screen receptor")
    ligand = generate_ligand(28, seed=8, title="surface-screen ligand")

    # Dense surface coverage: one spot per ~80 surface atoms.
    spots = find_spots(receptor, 24)
    print(f"placed {len(spots)} spots over the surface of "
          f"{receptor.n_atoms} atoms\n")

    result = dock(
        receptor,
        ligand,
        spots=spots,
        metaheuristic="M3",  # light local search: cheap whole-surface sweep
        workload_scale=0.3,
        seed=5,
    )

    scores = result.spot_scores()
    print("score distribution over the surface:")
    print(f"  best   {scores.min():10.2f} kcal/mol")
    print(f"  median {np.median(scores):10.2f}")
    print(f"  worst  {scores.max():10.2f}")

    print("\nsurface score map (bars scaled to the best spot):")
    print(score_map(scores))

    print("\ntop binding hot spots (the 'needles in the haystack'):")
    for conf in result.hot_spots(5):
        center = spots[conf.spot_index].center
        print(
            f"  spot {conf.spot_index:3d} at ({center[0]:6.1f}, {center[1]:6.1f}, "
            f"{center[2]:6.1f}) Å: {conf.score:10.2f} kcal/mol"
        )

    out = "surface_screening_complex.pdb"
    write_pdb(result.complex_molecule(), out)
    print(f"\nwrote best docked complex to {out}")


if __name__ == "__main__":
    main()
