"""Legacy setup shim.

The execution environment has no network and no `wheel` package, so PEP 660
editable installs (which build a wheel) fail. With this shim and no
[build-system] table in pyproject.toml, `pip install -e .` takes the legacy
`setup.py develop` path, which works fully offline.
"""

from setuptools import setup

setup()
