"""repro — Metaheuristic-based Virtual Screening on Massively Parallel and
Heterogeneous Systems.

A from-scratch Python reproduction of Imbernón, Cecilia & Giménez
(PMAM/PPoPP 2016). The package contains:

* :mod:`repro.molecules` — structures, force field, PDB I/O, synthetic
  2BSM/2BXG-like generators, surface spots;
* :mod:`repro.scoring` — Lennard-Jones (dense/tiled/cutoff/soft-core),
  Coulomb, composite and grid-map scoring functions;
* :mod:`repro.metaheuristics` — the six-function Algorithm 1 template, the
  paper's M1–M4 presets, and PSO/SA/Tabu/GRASP/VNS extensions;
* :mod:`repro.hardware` — the devices of Tables 1–3, a CUDA
  warp/block/occupancy model and a calibrated performance model;
* :mod:`repro.engine` — the multicore+multiGPU runtime: warm-up (Eq. 1),
  static and dynamic cooperative schedulers, simulated execution;
* :mod:`repro.vs` — the user-facing docking/screening pipeline;
* :mod:`repro.experiments` — the harness regenerating Tables 6–9.

Quickstart::

    from repro.molecules import generate_receptor, generate_ligand
    from repro.vs import VirtualScreeningPipeline

    pipe = VirtualScreeningPipeline()
    receptor = generate_receptor(3264, seed=1)
    ligand = generate_ligand(45, seed=2)
    result = pipe.dock(receptor, ligand)
    print(result.best_score, result.simulated_seconds)
"""

from repro.errors import (
    DeviceFailure,
    ExperimentError,
    ForceFieldError,
    HardwareModelError,
    MetaheuristicError,
    MoleculeError,
    PDBParseError,
    ReproError,
    SchedulingError,
    ScoringError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "DeviceFailure",
    "ExperimentError",
    "ForceFieldError",
    "HardwareModelError",
    "MetaheuristicError",
    "MoleculeError",
    "PDBParseError",
    "ReproError",
    "SchedulingError",
    "ScoringError",
    "SimulationError",
    "__version__",
]
