"""Durable, resumable screening campaigns.

The campaign subsystem treats a library screen as a persistent unit of work
rather than an in-memory loop: ligands stream in lazily
(:mod:`repro.campaign.library`), results land in a per-campaign SQLite
database (:mod:`repro.campaign.store`), shard boundaries are journalled
write-ahead (:mod:`repro.campaign.journal`), and the runner
(:mod:`repro.campaign.runner`) drives everything through the process-parallel
host runtime with bounded retries — so a crash, SIGKILL, or Ctrl-C costs at
most the in-flight ligand, and ``resume()`` completes the remainder with
bitwise-identical scores.

Quickstart::

    from repro.campaign import CampaignRunner, SyntheticSource

    runner = CampaignRunner(
        receptor, SyntheticSource(10_000, seed=3),
        store_path="campaign.sqlite", n_spots=16, seed=7)
    store = runner.run()          # interrupt any time...
    store = runner.resume()       # ...and continue exactly where it stopped
    for row in store.top(10):
        print(row["title"], row["best_score"])
"""

from repro.campaign.backends import (
    STORE_BACKENDS,
    create_store,
    detect_backend,
    open_store,
    store_disk_bytes,
)
from repro.campaign.colstore import COLSTORE_SCHEMA_VERSION, ColumnarStore
from repro.campaign.journal import CampaignJournal, JournalState
from repro.campaign.library import (
    CsvSource,
    IterableSource,
    LigandSource,
    ListSource,
    PDBDirectorySource,
    Shard,
    SmilesSource,
    SyntheticSource,
    iter_shards,
    receptor_fingerprint,
    resolve_title,
)
from repro.campaign.runner import (
    CampaignProgress,
    CampaignRunner,
    campaign_config,
    config_hash,
)
from repro.campaign.store import SCHEMA_VERSION, CampaignStore, export_report

__all__ = [
    "CampaignJournal",
    "CampaignProgress",
    "CampaignRunner",
    "CampaignStore",
    "COLSTORE_SCHEMA_VERSION",
    "ColumnarStore",
    "CsvSource",
    "IterableSource",
    "JournalState",
    "LigandSource",
    "ListSource",
    "PDBDirectorySource",
    "SCHEMA_VERSION",
    "STORE_BACKENDS",
    "Shard",
    "SmilesSource",
    "SyntheticSource",
    "campaign_config",
    "config_hash",
    "create_store",
    "detect_backend",
    "export_report",
    "iter_shards",
    "open_store",
    "receptor_fingerprint",
    "resolve_title",
    "store_disk_bytes",
]
