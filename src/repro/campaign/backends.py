"""Store backend selection: SQLite (default) vs columnar.

Both backends implement the same interface (see
:class:`~repro.campaign.store.CampaignStore` — the reference — and
:class:`~repro.campaign.colstore.ColumnarStore`), produce identical
``science_digest`` fingerprints for the same campaign, and share resume
semantics. The knob is purely an execution choice:

* ``sqlite`` — one database file. Best below ~10^5 ligands: zero moving
  parts, ad-hoc SQL, ``:memory:`` mode for one-shot ``screen()`` calls.
* ``columnar`` — a store *directory* of append-only CRC-framed logs plus
  sealed columnar segments. ~25× smaller on disk and O(1) memory per write;
  built for 10^6+ ligand campaigns.

``open_store`` detects the backend from what is on disk (a directory with a
``meta.json`` is columnar, a file is SQLite), so ``campaign
resume|status|top|export`` never need to be told.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CampaignError

from repro.campaign.store import CampaignStore

__all__ = [
    "STORE_BACKENDS",
    "create_store",
    "open_store",
    "detect_backend",
    "store_disk_bytes",
]

STORE_BACKENDS = ("sqlite", "columnar")


def _columnar():
    # Deferred import: keeps numpy-light paths (e.g. pure journal reads)
    # from paying for the columnar machinery.
    from repro.campaign.colstore import ColumnarStore

    return ColumnarStore


def create_store(
    path: str | Path,
    config: dict,
    config_hash: str,
    *,
    backend: str = "sqlite",
    **options,
):
    """Create a fresh campaign store with the requested backend."""
    if backend not in STORE_BACKENDS:
        raise CampaignError(
            f"unknown store backend {backend!r}; pick one of {STORE_BACKENDS}"
        )
    if backend == "columnar":
        return _columnar().create(path, config, config_hash, **options)
    if options:
        raise CampaignError(
            f"store options {sorted(options)} only apply to the columnar backend"
        )
    return CampaignStore.create(path, config, config_hash)


def detect_backend(path: str | Path) -> str:
    """Which backend owns the store at ``path`` (which must exist)."""
    path = str(path)
    if path == ":memory:":
        return "sqlite"
    root = Path(path)
    if not root.exists():
        raise CampaignError(f"no campaign store at {path}")
    if root.is_dir():
        if not (root / "meta.json").exists():
            raise CampaignError(f"{path} is not a campaign store (no metadata)")
        return "columnar"
    return "sqlite"


def open_store(path: str | Path):
    """Attach to an existing campaign store, whichever backend wrote it."""
    if detect_backend(path) == "columnar":
        return _columnar().open(path)
    return CampaignStore.open(path)


def store_disk_bytes(path: str | Path) -> int:
    """Total on-disk footprint of a store (file, or directory tree)."""
    root = Path(path)
    if root.is_dir():
        return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())
    return root.stat().st_size if root.exists() else 0
