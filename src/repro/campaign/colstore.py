"""Columnar append-only result store for million-ligand campaigns.

The SQLite :class:`~repro.campaign.store.CampaignStore` upserts row-at-a-time
and costs ~2 MB per 1k ligands — at 10^6–10^7 ligands the store, not the
kernels, is the bottleneck. :class:`ColumnarStore` is a drop-in backend with
the same interface and the same crash/resume semantics, built for scale:

* **Append-only CRC-framed logs** for in-flight shards. Every record is a
  fixed header (magic, kind, payload length, CRC32) plus payload, so a torn
  tail from a SIGKILL is *detected and physically truncated* on open, while
  corruption anywhere before the tail raises — exactly the journal's
  durability contract, applied to the result stream.
* **Sealed columnar segments**. When a shard finishes, its rows are frozen
  into an immutable segment file: fixed-width numeric column arrays
  (ordinal/status/score/spot/…) plus varlen string heaps per row group,
  CRC-protected, ~80 bytes per ligand instead of SQLite's ~2 KB.
* **A manifest** (atomic tmp+fsync+rename) naming the live segments. Segment
  files not in the manifest are crash debris and are deleted on open.
* **Tiered compaction**: once the segment count reaches ``compact_fanin``,
  the adjacent run with the fewest rows is stream-merged into one segment,
  group by group — memory stays O(row group), the manifest stays small.
* **An incrementally maintained top-K index** persisted beside the manifest
  and loaded via ``mmap``; stamped with the manifest generation so a stale
  index is detected and lazily rebuilt rather than trusted.

Durability model (mirrors SQLite WAL + ``synchronous=NORMAL``): active-log
appends are write+flush (a process crash loses at most the torn tail — the
ligand simply re-docks on resume); segment, manifest, and meta writes are
tmp+fsync+rename (rare, one per shard seal). The store is the authoritative
record — the journal's shard markers only corroborate it.
"""

from __future__ import annotations

import csv
import hashlib
import heapq
import json
import mmap
import os
import re
import struct
import threading
import zlib
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from itertools import chain
from pathlib import Path
from typing import Iterator, TextIO

import numpy as np

from repro import observability as obs
from repro.errors import CampaignError
from repro.observability.flight import flight_event
from repro.vs.results import ScreeningEntry, ScreeningReport

__all__ = ["ColumnarStore", "COLSTORE_SCHEMA_VERSION"]

#: Bump on any incompatible on-disk layout change; ``open`` refuses mismatches.
COLSTORE_SCHEMA_VERSION = 1

# ---------------------------------------------------------------------------
# record framing (active logs + shards.log)
# ---------------------------------------------------------------------------

#: magic, kind, payload length, CRC32(payload) — 11 bytes, then the payload.
_FRAME = struct.Struct("<HBII")
_FRAME_MAGIC = 0xC01A

_K_REGISTER = 1
_K_RUNNING = 2
_K_RESULT = 3
_K_FAILURE = 4
_K_SHARD_START = 5
_K_SHARD_FINISH = 6

_REGISTER = struct.Struct("<q")
_RUNNING = struct.Struct("<q")
_RESULT = struct.Struct("<qdqqddq")  # ordinal, score, spot, evals, wall, sim, attempts
_FAILURE = struct.Struct("<qq")  # ordinal, attempts
_SHARD_START = struct.Struct("<qqq")  # shard_id, start, stop
_SHARD_FINISH = struct.Struct("<qd")  # shard_id, wall_seconds

_STATUSES = ("pending", "running", "done", "failed")
_STATUS_CODE = {name: code for code, name in enumerate(_STATUSES)}
_DONE_CODE = _STATUS_CODE["done"]

# Row layout in the in-memory overlay (and materialised segment reads).
_TITLE, _STATUS, _SCORE, _SPOT, _EVALS, _WALL, _SIM, _ATTEMPTS, _ERROR = range(9)

_RESULT_COLUMNS = (
    "ordinal",
    "title",
    "status",
    "best_score",
    "best_spot",
    "evaluations",
    "wall_seconds",
    "simulated_seconds",
    "attempts",
    "error",
)


def _pack_frame(kind: int, payload: bytes) -> bytes:
    return _FRAME.pack(_FRAME_MAGIC, kind, len(payload), zlib.crc32(payload)) + payload


def _scan_frames(data: bytes, label: str) -> tuple[list[tuple[int, bytes]], int]:
    """Parse CRC-framed records; returns ``(records, clean_length)``.

    A record that runs past EOF — or whose CRC fails *at* EOF — is a torn
    tail: scanning stops and ``clean_length`` marks where to truncate. A CRC
    or magic failure with complete bytes after it is real corruption and
    raises :class:`CampaignError`.
    """
    records: list[tuple[int, bytes]] = []
    offset, size = 0, len(data)
    while offset < size:
        if size - offset < _FRAME.size:
            return records, offset  # torn header at the tail
        magic, kind, length, crc = _FRAME.unpack_from(data, offset)
        if magic != _FRAME_MAGIC:
            raise CampaignError(
                f"corrupt record frame in {label} at byte {offset}: bad magic"
            )
        end = offset + _FRAME.size + length
        if end > size:
            return records, offset  # torn payload at the tail
        payload = data[offset + _FRAME.size : end]
        if zlib.crc32(payload) != crc:
            if end == size:
                return records, offset  # torn final record (crash artifact)
            raise CampaignError(
                f"CRC mismatch in {label} at byte {offset}: store is corrupt"
            )
        records.append((kind, payload))
        offset = end
    return records, offset


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def _unpack_str(payload: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    return payload[offset : offset + length].decode("utf-8"), offset + length


# ---------------------------------------------------------------------------
# segment files
# ---------------------------------------------------------------------------

_SEG_MAGIC = b"RVSCOL01"
_SEG_END = b"RVSCOLEN"
_TRAILER = struct.Struct("<QII")  # footer offset, footer length, footer CRC32

# Per-row presence flags (NULL-ability mirrors the SQLite schema).
_F_SCORE, _F_SPOT, _F_EVALS, _F_WALL, _F_SIM, _F_ERROR = 1, 2, 4, 8, 16, 32

_SEG_NAME = re.compile(r"^seg-(\d+)\.col$")
_ACTIVE_NAME = re.compile(r"^shard-(\d+)\.log$")


def _encode_group(items: list[tuple[int, list]]) -> tuple[bytes, dict]:
    """Encode ``[(ordinal, row), ...]`` (ascending) as one columnar block."""
    n = len(items)
    ordinals = np.fromiter((o for o, _ in items), dtype="<i8", count=n)
    status = np.zeros(n, dtype="u1")
    flags = np.zeros(n, dtype="u1")
    score = np.zeros(n, dtype="<f8")
    spot = np.zeros(n, dtype="<i8")
    evals = np.zeros(n, dtype="<i8")
    wall = np.zeros(n, dtype="<f8")
    sim = np.zeros(n, dtype="<f8")
    attempts = np.zeros(n, dtype="<i8")
    title_offsets = np.zeros(n + 1, dtype="<u4")
    error_offsets = np.zeros(n + 1, dtype="<u4")
    title_heap = bytearray()
    error_heap = bytearray()
    counts = {name: 0 for name in _STATUSES}
    for i, (_, row) in enumerate(items):
        counts[row[_STATUS]] += 1
        status[i] = _STATUS_CODE[row[_STATUS]]
        fl = 0
        if row[_SCORE] is not None:
            fl |= _F_SCORE
            score[i] = row[_SCORE]
        if row[_SPOT] is not None:
            fl |= _F_SPOT
            spot[i] = row[_SPOT]
        if row[_EVALS] is not None:
            fl |= _F_EVALS
            evals[i] = row[_EVALS]
        if row[_WALL] is not None:
            fl |= _F_WALL
            wall[i] = row[_WALL]
        if row[_SIM] is not None:
            fl |= _F_SIM
            sim[i] = row[_SIM]
        attempts[i] = row[_ATTEMPTS]
        title_heap += row[_TITLE].encode("utf-8")
        title_offsets[i + 1] = len(title_heap)
        if row[_ERROR] is not None:
            fl |= _F_ERROR
            error_heap += row[_ERROR].encode("utf-8")
        error_offsets[i + 1] = len(error_heap)
        flags[i] = fl
    block = b"".join(
        (
            ordinals.tobytes(),
            status.tobytes(),
            flags.tobytes(),
            score.tobytes(),
            spot.tobytes(),
            evals.tobytes(),
            wall.tobytes(),
            sim.tobytes(),
            attempts.tobytes(),
            title_offsets.tobytes(),
            bytes(title_heap),
            error_offsets.tobytes(),
            bytes(error_heap),
        )
    )
    meta = {
        "rows": n,
        "lo": int(ordinals[0]),
        "hi": int(ordinals[-1]),
        "crc": zlib.crc32(block),
        "title_heap": len(title_heap),
        "error_heap": len(error_heap),
        "counts": counts,
    }
    return block, meta


def _decode_group(block: bytes, meta: dict) -> dict:
    if zlib.crc32(block) != meta["crc"]:
        raise CampaignError("segment row group failed its CRC check")
    n = int(meta["rows"])
    offset = 0

    def take(dtype: str, count: int, width: int):
        nonlocal offset
        array = np.frombuffer(block, dtype=dtype, count=count, offset=offset)
        offset += count * width
        return array

    group = {
        "ordinals": take("<i8", n, 8),
        "status": take("u1", n, 1),
        "flags": take("u1", n, 1),
        "score": take("<f8", n, 8),
        "spot": take("<i8", n, 8),
        "evals": take("<i8", n, 8),
        "wall": take("<f8", n, 8),
        "sim": take("<f8", n, 8),
        "attempts": take("<i8", n, 8),
        "title_offsets": take("<u4", n + 1, 4),
    }
    group["title_heap"] = block[offset : offset + meta["title_heap"]]
    offset += meta["title_heap"]
    group["error_offsets"] = np.frombuffer(block, dtype="<u4", count=n + 1, offset=offset)
    offset += (n + 1) * 4
    group["error_heap"] = block[offset : offset + meta["error_heap"]]
    return group


def _group_row(group: dict, i: int) -> list:
    """Materialise row ``i`` of a decoded group as python-typed fields."""
    fl = int(group["flags"][i])
    toff = group["title_offsets"]
    eoff = group["error_offsets"]
    return [
        group["title_heap"][toff[i] : toff[i + 1]].decode("utf-8"),
        _STATUSES[int(group["status"][i])],
        float(group["score"][i]) if fl & _F_SCORE else None,
        int(group["spot"][i]) if fl & _F_SPOT else None,
        int(group["evals"][i]) if fl & _F_EVALS else None,
        float(group["wall"][i]) if fl & _F_WALL else None,
        float(group["sim"][i]) if fl & _F_SIM else None,
        int(group["attempts"][i]),
        group["error_heap"][eoff[i] : eoff[i + 1]].decode("utf-8")
        if fl & _F_ERROR
        else None,
    ]


def _atomic_write(path: Path, data: bytes) -> None:
    """tmp + fsync + rename (+ best-effort directory fsync)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


def _merge_rows(seg_iter, overlay: list[tuple[int, list]]):
    """Merge a sorted segment stream with sorted overlay items; overlay wins."""
    oi = 0
    for ordinal, row in seg_iter:
        while oi < len(overlay) and overlay[oi][0] < ordinal:
            yield overlay[oi]
            oi += 1
        if oi < len(overlay) and overlay[oi][0] == ordinal:
            yield overlay[oi]
            oi += 1
        else:
            yield ordinal, row
    while oi < len(overlay):
        yield overlay[oi]
        oi += 1


# ---------------------------------------------------------------------------
# top-K index file
# ---------------------------------------------------------------------------

_TOPK_MAGIC = b"RVSTOPK1"
_TOPK_HEADER = struct.Struct("<QII")  # generation, capacity, count
_TOPK_ENTRY = struct.Struct("<dq")  # score, ordinal


class ColumnarStore:
    """Append-only sharded columnar campaign store (see module docstring).

    Drop-in for :class:`repro.campaign.store.CampaignStore`: same methods,
    same semantics (idempotent upserts keyed on ordinal, ``science_digest``
    byte-parity), selected via ``store_backend="columnar"``. The store path
    is a *directory*.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.root = Path(path)
        self._lock = threading.RLock()
        self._meta: dict = {}
        self._manifest: dict = {"generation": 0, "next_seq": 0, "segments": []}
        self._segments: list[dict] = []  # manifest entries sorted by lo
        self._shards: dict[int, dict] = {}
        self._open_ranges: dict[int, tuple[int, int]] = {}
        self._active_rows: dict[int, list] = {}
        self._counts = {name: 0 for name in _STATUSES}
        self._handles: dict[tuple, object] = {}
        self._footers: dict[int, dict] = {}
        self._groups: OrderedDict[tuple[int, int], dict] = OrderedDict()
        self._group_cache_max = 8
        self._topk_heap: list[tuple[float, int]] = []  # (-score, -ordinal)
        self._topk_saturated = False
        self._topk_dirty = False
        self._closed = False
        # Tiered compaction runs on a background thread so finish_shard
        # latency never includes a multi-segment merge (lazily created;
        # at most one compaction in flight).
        self._compact_executor: ThreadPoolExecutor | None = None
        self._compact_future: Future | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        config: dict,
        config_hash: str,
        *,
        group_rows: int = 65536,
        compact_fanin: int = 16,
        topk_capacity: int = 512,
    ) -> "ColumnarStore":
        """Create a fresh columnar store; refuses to overwrite an existing one."""
        path = str(path)
        if path == ":memory:":
            raise CampaignError(
                "the columnar store backend persists to a directory; "
                ":memory: campaigns use the sqlite backend"
            )
        if group_rows < 1 or compact_fanin < 2 or topk_capacity < 1:
            raise CampaignError(
                "invalid columnar store options: group_rows >= 1, "
                "compact_fanin >= 2, topk_capacity >= 1 required"
            )
        root = Path(path)
        if root.exists() and (root.is_file() or any(root.iterdir())):
            raise CampaignError(
                f"campaign store already exists at {path}; "
                "use resume to continue it"
            )
        root.mkdir(parents=True, exist_ok=True)
        (root / "active").mkdir(exist_ok=True)
        (root / "segments").mkdir(exist_ok=True)
        store = cls(path)
        store._meta = {
            "schema_version": COLSTORE_SCHEMA_VERSION,
            "backend": "columnar",
            "config": config,
            "config_hash": config_hash,
            "completed": False,
            "n_ligands": None,
            "options": {
                "group_rows": int(group_rows),
                "compact_fanin": int(compact_fanin),
                "topk_capacity": int(topk_capacity),
            },
        }
        store._write_meta()
        store._write_manifest()
        return store

    @classmethod
    def open(cls, path: str | Path) -> "ColumnarStore":
        """Attach to an existing store, recovering from any crash debris."""
        path = str(path)
        root = Path(path)
        if not root.exists():
            raise CampaignError(f"no campaign store at {path}")
        if not root.is_dir() or not (root / "meta.json").exists():
            raise CampaignError(f"{path} is not a campaign store (no metadata)")
        store = cls(path)
        try:
            store._meta = json.loads((root / "meta.json").read_text("utf-8"))
        except ValueError as exc:
            raise CampaignError(f"{path} is not a campaign store: {exc}") from None
        version = store._meta.get("schema_version")
        if version != COLSTORE_SCHEMA_VERSION:
            raise CampaignError(
                f"campaign store schema v{version} != supported "
                f"v{COLSTORE_SCHEMA_VERSION}"
            )
        store._recover()
        return store

    @property
    def _options(self) -> dict:
        return self._meta.get("options", {})

    @property
    def _group_rows(self) -> int:
        return int(self._options.get("group_rows", 65536))

    @property
    def _compact_fanin(self) -> int:
        return int(self._options.get("compact_fanin", 16))

    @property
    def _topk_capacity(self) -> int:
        return int(self._options.get("topk_capacity", 512))

    def close(self) -> None:
        """Flush and close every open log handle.

        Any in-flight background compaction is drained *before* taking the
        store lock (the compaction thread needs that lock to finish, so
        joining it while holding the lock would deadlock). A compaction
        failure surfaces here rather than being swallowed.
        """
        self.wait_for_compaction()
        executor = self._compact_executor
        if executor is not None:
            executor.shutdown(wait=True)
            self._compact_executor = None
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for handle in self._handles.values():
                try:
                    handle.flush()
                    handle.close()
                except OSError:  # pragma: no cover - best effort on teardown
                    pass
            self._handles.clear()
            self._groups.clear()

    def __enter__(self) -> "ColumnarStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def _write_meta(self) -> None:
        _atomic_write(
            self.root / "meta.json",
            json.dumps(self._meta, sort_keys=True, default=str).encode("utf-8"),
        )

    @property
    def config(self) -> dict:
        """The campaign configuration recorded at creation."""
        config = self._meta.get("config")
        if config is None:
            raise CampaignError("campaign store has no recorded config")
        return config

    @property
    def config_hash(self) -> str:
        """Hash of the result-affecting configuration."""
        value = self._meta.get("config_hash")
        if value is None:
            raise CampaignError("campaign store has no recorded config hash")
        return str(value)

    def is_complete(self) -> bool:
        """True once every shard has finished (set by the runner)."""
        return bool(self._meta.get("completed"))

    def mark_complete(self, n_ligands: int) -> None:
        """Record that the campaign streamed and processed the whole library."""
        with self._lock:
            self._meta["n_ligands"] = int(n_ligands)
            self._meta["completed"] = True
            self._write_meta()

    @property
    def n_ligands(self) -> int | None:
        """Total library size, known once the campaign completed."""
        value = self._meta.get("n_ligands")
        return None if value is None else int(value)

    # ------------------------------------------------------------------
    # log handles
    # ------------------------------------------------------------------
    def _log_path(self, key: tuple) -> Path:
        if key[0] == "shards":
            return self.root / "shards.log"
        if key[0] == "orphan":
            return self.root / "active" / "orphan.log"
        return self.root / "active" / f"shard-{key[1]}.log"

    def _handle(self, key: tuple):
        handle = self._handles.get(key)
        if handle is None:
            handle = open(self._log_path(key), "ab")
            self._handles[key] = handle
        return handle

    def _drop_active_log(self, shard_id: int) -> None:
        key = ("shard", shard_id)
        handle = self._handles.pop(key, None)
        if handle is not None:
            handle.close()
        path = self._log_path(key)
        if path.exists():
            path.unlink()

    def _log_key_for(self, ordinal: int) -> tuple:
        for shard_id, (start, stop) in self._open_ranges.items():
            if start <= ordinal < stop:
                return ("shard", shard_id)
        return ("orphan",)

    def _append(self, key: tuple, frames: bytes) -> None:
        handle = self._handle(key)
        handle.write(frames)
        handle.flush()

    # ------------------------------------------------------------------
    # in-memory row transitions (shared by live writes and replay)
    # ------------------------------------------------------------------
    def _transition(self, prev: str | None, new: str | None) -> None:
        if prev is not None:
            self._counts[prev] -= 1
        if new is not None:
            self._counts[new] += 1

    def _status_of(self, ordinal: int) -> str | None:
        row = self._active_rows.get(ordinal)
        if row is not None:
            return row[_STATUS]
        sealed = self._segment_row(ordinal)
        return None if sealed is None else sealed[_STATUS]

    def _apply_register(self, ordinal: int, title: str) -> bool:
        """INSERT OR IGNORE semantics: existing rows (anywhere) win."""
        if ordinal in self._active_rows or self._segment_row(ordinal) is not None:
            return False
        self._active_rows[ordinal] = [
            title, "pending", None, None, None, None, None, 0, None,
        ]
        self._transition(None, "pending")
        return True

    def _apply_running(self, ordinal: int) -> bool:
        """UPDATE semantics: a no-op if the ordinal was never registered."""
        row = self._active_rows.get(ordinal)
        if row is None:
            sealed = self._segment_row(ordinal)
            if sealed is None:
                return False
            row = list(sealed)
            self._active_rows[ordinal] = row
        if row[_STATUS] != "running":
            self._transition(row[_STATUS], "running")
            row[_STATUS] = "running"
        return True

    @staticmethod
    def _null_nan(value: float) -> float | None:
        # SQLite cannot store NaN (it binds as NULL); mirror that here so
        # the two backends stay row-for-row identical.
        return None if value != value else value

    def _apply_result(
        self,
        ordinal: int,
        title: str,
        best_score: float,
        best_spot: int,
        evaluations: int,
        wall_seconds: float,
        simulated_seconds: float,
        attempts: int,
    ) -> None:
        """Full upsert: every column is replaced, error cleared."""
        prev = self._status_of(ordinal)
        score = self._null_nan(best_score)
        self._active_rows[ordinal] = [
            title, "done", score, best_spot, evaluations,
            self._null_nan(wall_seconds), self._null_nan(simulated_seconds),
            attempts, None,
        ]
        if prev != "done":
            self._transition(prev, "done")
        if score is not None:
            self._topk_push(score, ordinal)

    def _apply_failure(
        self, ordinal: int, title: str, error: str, attempts: int
    ) -> None:
        """Partial upsert: prior score columns survive (mirrors SQLite)."""
        prior = self._active_rows.get(ordinal)
        if prior is None:
            prior = self._segment_row(ordinal)
        if prior is None:
            prev = None
            row = [title, "failed", None, None, None, None, None, attempts, error]
        else:
            prev = prior[_STATUS]
            row = list(prior)
            row[_TITLE], row[_STATUS] = title, "failed"
            row[_ATTEMPTS], row[_ERROR] = attempts, error
        self._active_rows[ordinal] = row
        if prev != "failed":
            self._transition(prev, "failed")

    def _apply_record(self, kind: int, payload: bytes) -> None:
        """Replay one framed record (idempotent against sealed state)."""
        if kind == _K_REGISTER:
            (ordinal,) = _REGISTER.unpack_from(payload)
            title, _ = _unpack_str(payload, _REGISTER.size)
            self._apply_register(ordinal, title)
        elif kind == _K_RUNNING:
            (ordinal,) = _RUNNING.unpack_from(payload)
            self._apply_running(ordinal)
        elif kind == _K_RESULT:
            ordinal, score, spot, evals, wall, sim, attempts = _RESULT.unpack_from(
                payload
            )
            title, _ = _unpack_str(payload, _RESULT.size)
            self._apply_result(ordinal, title, score, spot, evals, wall, sim, attempts)
        elif kind == _K_FAILURE:
            ordinal, attempts = _FAILURE.unpack_from(payload)
            title, offset = _unpack_str(payload, _FAILURE.size)
            error, _ = _unpack_str(payload, offset)
            self._apply_failure(ordinal, title, error, attempts)
        # Unknown kinds are ignored: forward compatibility.

    # ------------------------------------------------------------------
    # shards
    # ------------------------------------------------------------------
    def start_shard(self, shard_id: int, start: int, stop: int) -> None:
        """Mark a shard running (idempotent across resume replays)."""
        with self._lock:
            shard = self._shards.get(shard_id)
            wall = None if shard is None else shard.get("wall")
            self._shards[shard_id] = {
                "start": int(start), "stop": int(stop), "status": "running",
                "wall": wall,
            }
            self._open_ranges[shard_id] = (int(start), int(stop))
            self._append(
                ("shards",),
                _pack_frame(_K_SHARD_START, _SHARD_START.pack(shard_id, start, stop)),
            )
            obs.counter("campaign.store.appends").inc()

    def finish_shard(self, shard_id: int, wall_seconds: float) -> None:
        """Mark a shard done and seal its rows into a columnar segment."""
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is None:
                return  # mirrors SQLite's UPDATE on a missing row
            self._append(
                ("shards",),
                _pack_frame(
                    _K_SHARD_FINISH,
                    _SHARD_FINISH.pack(shard_id, float(wall_seconds)),
                ),
            )
            shard["status"] = "done"
            shard["wall"] = float(wall_seconds)
            self._open_ranges.pop(shard_id, None)
            self._seal_range(shard["start"], shard["stop"], shard_id=shard_id)
            self._schedule_compaction()
            self._update_gauges()

    def finished_shards(self) -> set[int]:
        """IDs of shards whose every ligand is recorded."""
        with self._lock:
            return {
                shard_id
                for shard_id, shard in self._shards.items()
                if shard["status"] == "done"
            }

    # ------------------------------------------------------------------
    # ligands
    # ------------------------------------------------------------------
    def register_ligands(self, items: list[tuple[int, str]]) -> None:
        """Insert pending rows for (ordinal, title) pairs; existing rows win."""
        with self._lock:
            buffers: dict[tuple, bytearray] = {}
            for ordinal, title in items:
                ordinal, title = int(ordinal), str(title)
                if not self._apply_register(ordinal, title):
                    continue
                frame = _pack_frame(
                    _K_REGISTER, _REGISTER.pack(ordinal) + _pack_str(title)
                )
                buffers.setdefault(self._log_key_for(ordinal), bytearray()).extend(
                    frame
                )
            for key, buffer in buffers.items():
                self._append(key, bytes(buffer))
            obs.counter("campaign.store.appends").inc(len(items))

    def mark_running(self, ordinal: int) -> None:
        """Flag one ligand as in flight."""
        with self._lock:
            ordinal = int(ordinal)
            if self._apply_running(ordinal):
                self._append(
                    self._log_key_for(ordinal),
                    _pack_frame(_K_RUNNING, _RUNNING.pack(ordinal)),
                )
                obs.counter("campaign.store.appends").inc()

    def record_result(
        self,
        ordinal: int,
        title: str,
        best_score: float,
        best_spot: int,
        evaluations: int,
        wall_seconds: float,
        simulated_seconds: float,
        attempts: int = 1,
    ) -> None:
        """Upsert one completed ligand (idempotent on ordinal)."""
        with self._lock:
            ordinal = int(ordinal)
            values = (
                float(best_score), int(best_spot), int(evaluations),
                float(wall_seconds), float(simulated_seconds), int(attempts),
            )
            self._apply_result(ordinal, str(title), *values)
            payload = _RESULT.pack(ordinal, *values) + _pack_str(str(title))
            self._append(self._log_key_for(ordinal), _pack_frame(_K_RESULT, payload))
            obs.counter("campaign.store.appends").inc()

    def record_failure(
        self, ordinal: int, title: str, error: str, attempts: int
    ) -> None:
        """Record a ligand that exhausted its attempts; the campaign moves on."""
        with self._lock:
            ordinal = int(ordinal)
            self._apply_failure(ordinal, str(title), str(error), int(attempts))
            payload = (
                _FAILURE.pack(ordinal, int(attempts))
                + _pack_str(str(title))
                + _pack_str(str(error))
            )
            self._append(self._log_key_for(ordinal), _pack_frame(_K_FAILURE, payload))
            obs.counter("campaign.store.appends").inc()

    def done_ordinals(self, start: int, stop: int) -> set[int]:
        """Ordinals already completed in ``[start, stop)`` — never redone."""
        with self._lock:
            done: set[int] = set()
            for entry in self._segments:
                if entry["hi"] < start or entry["lo"] >= stop:
                    continue
                for meta, group in self._iter_groups(entry):
                    if meta["hi"] < start or meta["lo"] >= stop:
                        continue
                    ordinals = group["ordinals"]
                    mask = (
                        (ordinals >= start)
                        & (ordinals < stop)
                        & (group["status"] == _DONE_CODE)
                    )
                    done.update(int(o) for o in ordinals[mask])
            for ordinal, row in self._active_rows.items():
                if start <= ordinal < stop:
                    if row[_STATUS] == "done":
                        done.add(ordinal)
                    else:
                        done.discard(ordinal)
            return done

    def counts(self) -> dict[str, int]:
        """Ligand counts per status (absent statuses are 0)."""
        with self._lock:
            return dict(self._counts)

    # ------------------------------------------------------------------
    # segment reads
    # ------------------------------------------------------------------
    def _segment_path(self, entry: dict) -> Path:
        return self.root / "segments" / entry["name"]

    def _footer(self, entry: dict) -> dict:
        footer = self._footers.get(entry["seq"])
        if footer is not None:
            return footer
        path = self._segment_path(entry)
        with open(path, "rb") as handle:
            if handle.read(8) != _SEG_MAGIC:
                raise CampaignError(f"{path} is not a columnar segment")
            handle.seek(-(_TRAILER.size + 8), os.SEEK_END)
            trailer = handle.read(_TRAILER.size)
            if handle.read(8) != _SEG_END:
                raise CampaignError(f"{path} has a corrupt segment trailer")
            offset, length, crc = _TRAILER.unpack(trailer)
            handle.seek(offset)
            raw = handle.read(length)
        if zlib.crc32(raw) != crc:
            raise CampaignError(f"{path} has a corrupt segment footer")
        footer = json.loads(raw.decode("utf-8"))
        self._footers[entry["seq"]] = footer
        return footer

    def _load_group(self, entry: dict, index: int) -> tuple[dict, dict]:
        footer = self._footer(entry)
        meta = footer["groups"][index]
        key = (entry["seq"], index)
        group = self._groups.get(key)
        if group is None:
            with open(self._segment_path(entry), "rb") as handle:
                handle.seek(meta["offset"])
                block = handle.read(meta["nbytes"])
            group = _decode_group(block, meta)
            self._groups[key] = group
            if len(self._groups) > self._group_cache_max:
                self._groups.popitem(last=False)
        else:
            self._groups.move_to_end(key)
        return meta, group

    def _iter_groups(self, entry: dict) -> Iterator[tuple[dict, dict]]:
        footer = self._footer(entry)
        for index in range(len(footer["groups"])):
            yield self._load_group(entry, index)

    def _iter_segment_rows(self, entry: dict) -> Iterator[tuple[int, list]]:
        for _, group in self._iter_groups(entry):
            ordinals = group["ordinals"]
            for i in range(len(ordinals)):
                yield int(ordinals[i]), _group_row(group, i)

    def _covering_segment(self, lo: int, hi: int) -> dict | None:
        """The manifest segment fully covering ``[lo, hi]``, if any.

        Segments have disjoint ordinal ranges, so a partial overlap is an
        invariant violation and raises.
        """
        for entry in self._segments:
            if entry["hi"] < lo or entry["lo"] > hi:
                continue
            if entry["lo"] <= lo and entry["hi"] >= hi:
                return entry
            raise CampaignError(
                f"segment {entry['name']} partially overlaps range "
                f"[{lo}, {hi}]: store invariant violated"
            )
        return None

    def _segment_row(self, ordinal: int) -> list | None:
        """Read one sealed row by ordinal (binary search, cached groups)."""
        segments = self._segments
        lo_index, hi_index = 0, len(segments)
        while lo_index < hi_index:
            mid = (lo_index + hi_index) // 2
            if segments[mid]["hi"] < ordinal:
                lo_index = mid + 1
            else:
                hi_index = mid
        if lo_index >= len(segments) or segments[lo_index]["lo"] > ordinal:
            return None
        entry = segments[lo_index]
        footer = self._footer(entry)
        for index, meta in enumerate(footer["groups"]):
            if meta["lo"] <= ordinal <= meta["hi"]:
                _, group = self._load_group(entry, index)
                position = int(np.searchsorted(group["ordinals"], ordinal))
                if (
                    position < len(group["ordinals"])
                    and int(group["ordinals"][position]) == ordinal
                ):
                    return _group_row(group, position)
        return None

    # ------------------------------------------------------------------
    # sealing and compaction
    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        self._manifest["segments"] = self._segments
        _atomic_write(
            self.root / "MANIFEST.json",
            json.dumps(self._manifest, sort_keys=True).encode("utf-8"),
        )

    def _write_segment_file(self, rows_iter) -> dict | None:
        """Stream rows into ``seg-<seq>.col``; returns the manifest entry."""
        seq = int(self._manifest["next_seq"])
        name = f"seg-{seq:08d}.col"
        path = self.root / "segments" / name
        tmp = path.with_name(name + ".tmp")
        groups: list[dict] = []
        counts = {status: 0 for status in _STATUSES}
        rows = 0
        buffer: list[tuple[int, list]] = []
        with open(tmp, "wb") as handle:
            handle.write(_SEG_MAGIC)
            offset = len(_SEG_MAGIC)

            def flush_group():
                nonlocal offset, rows
                block, meta = _encode_group(buffer)
                meta["offset"] = offset
                meta["nbytes"] = len(block)
                handle.write(block)
                offset += len(block)
                for status, n in meta["counts"].items():
                    counts[status] += n
                rows += meta["rows"]
                groups.append(meta)
                buffer.clear()

            for item in rows_iter:
                buffer.append(item)
                if len(buffer) >= self._group_rows:
                    flush_group()
            if buffer:
                flush_group()
            if not groups:
                handle.close()
                tmp.unlink()
                return None
            footer = json.dumps(
                {
                    "groups": groups,
                    "rows": rows,
                    "lo": groups[0]["lo"],
                    "hi": groups[-1]["hi"],
                    "counts": counts,
                }
            ).encode("utf-8")
            handle.write(footer)
            handle.write(_TRAILER.pack(offset, len(footer), zlib.crc32(footer)))
            handle.write(_SEG_END)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._manifest["next_seq"] = seq + 1
        return {
            "name": name,
            "seq": seq,
            "lo": groups[0]["lo"],
            "hi": groups[-1]["hi"],
            "rows": rows,
            "counts": counts,
            "nbytes": path.stat().st_size,
        }

    def _insert_entry(self, entry: dict) -> None:
        position = 0
        while position < len(self._segments) and (
            self._segments[position]["lo"] < entry["lo"]
        ):
            position += 1
        self._segments.insert(position, entry)

    def _invalidate_segment(self, entry: dict) -> None:
        self._footers.pop(entry["seq"], None)
        for key in [k for k in self._groups if k[0] == entry["seq"]]:
            del self._groups[key]

    def _seal_range(self, start: int, stop: int, shard_id: int | None = None) -> None:
        """Freeze every overlay row in ``[start, stop)`` into a segment.

        If a sealed segment already covers the range (crash replay, cluster
        lease reclaim), it is merged and replaced — overlay rows win. Overlay
        rows inside the covering segment's wider range are folded in too,
        garbage-collecting stale orphan updates.
        """
        covering = self._covering_segment(start, stop - 1)
        if covering is not None:
            fold_lo, fold_hi = covering["lo"], covering["hi"]
        else:
            fold_lo, fold_hi = start, stop - 1
        overlay = sorted(
            (ordinal, row)
            for ordinal, row in self._active_rows.items()
            if fold_lo <= ordinal <= fold_hi
        )
        if covering is None and not overlay:
            if shard_id is not None:
                self._drop_active_log(shard_id)
            return
        if covering is not None:
            if not overlay:
                # Already sealed and nothing new: just drop the leftover log.
                if shard_id is not None:
                    self._drop_active_log(shard_id)
                return
            rows_iter = _merge_rows(self._iter_segment_rows(covering), overlay)
        else:
            rows_iter = iter(overlay)
        entry = self._write_segment_file(rows_iter)
        if covering is not None:
            self._segments.remove(covering)
        if entry is not None:
            self._insert_entry(entry)
        self._manifest["generation"] = int(self._manifest["generation"]) + 1
        self._write_manifest()
        if covering is not None:
            self._invalidate_segment(covering)
            old = self._segment_path(covering)
            if old.exists():
                old.unlink()
        for ordinal, _ in overlay:
            self._active_rows.pop(ordinal, None)
        if shard_id is not None:
            self._drop_active_log(shard_id)
        self._write_topk()
        obs.counter("campaign.store.seals").inc()

    def _schedule_compaction(self) -> None:
        """Kick tiered compaction onto the background thread (caller holds lock).

        ``finish_shard`` latency must exclude compaction, so the merge runs
        on a single lazily created worker thread; it serialises against the
        store lock like any other operation, but the shard commit returns
        immediately. At most one compaction is in flight — if one is still
        running, the next ``finish_shard`` simply re-checks. A previous
        *failed* compaction re-raises here so errors never vanish silently;
        a rejected submit (interpreter teardown) falls back to compacting
        inline.
        """
        if len(self._segments) < self._compact_fanin:
            return
        future = self._compact_future
        if future is not None:
            if not future.done():
                return
            self._compact_future = None
            future.result()  # surface a failed background compaction
        if self._compact_executor is None:
            self._compact_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="colstore-compact"
            )
        try:
            self._compact_future = self._compact_executor.submit(
                self._compact_in_background
            )
        except RuntimeError:
            self._maybe_compact()

    def _compact_in_background(self) -> None:
        # Re-check after every merge: shards sealed while a merge ran may
        # have pushed the manifest back over the fan-in threshold (their
        # finish_shard skipped scheduling because this run was in flight).
        # The lock is released between merges so writers interleave.
        while True:
            with self._lock:
                if self._closed or len(self._segments) < self._compact_fanin:
                    return
                self._maybe_compact()

    def wait_for_compaction(self) -> None:
        """Block until the manifest satisfies the tier invariant again.

        Drains any in-flight background compaction (re-raising its failure),
        then compacts inline if sealing raced past the background loop's
        last check. Tests and shutdown paths call this to make segment
        counts deterministic before asserting or closing.
        """
        future = self._compact_future
        if future is not None:
            try:
                future.result()
            finally:
                self._compact_future = None
        with self._lock:
            if self._closed:
                return
            while len(self._segments) >= self._compact_fanin:
                self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Merge the adjacent run of segments with the fewest rows.

        Triggered once the manifest holds ``compact_fanin`` segments; the
        merge streams group by group, so memory stays O(group_rows) no matter
        how large the inputs are.
        """
        fanin = self._compact_fanin
        if len(self._segments) < fanin:
            return
        row_counts = [entry["rows"] for entry in self._segments]
        best_start, best_total = 0, None
        window = sum(row_counts[:fanin])
        best_total = window
        for i in range(1, len(row_counts) - fanin + 1):
            window += row_counts[i + fanin - 1] - row_counts[i - 1]
            if window < best_total:
                best_start, best_total = i, window
        run = self._segments[best_start : best_start + fanin]
        folded: list[int] = []

        def merged_rows():
            for ordinal, row in chain.from_iterable(
                self._iter_segment_rows(entry) for entry in run
            ):
                overlay_row = self._active_rows.get(ordinal)
                if overlay_row is not None:
                    folded.append(ordinal)
                    yield ordinal, overlay_row
                else:
                    yield ordinal, row

        entry = self._write_segment_file(merged_rows())
        del self._segments[best_start : best_start + fanin]
        if entry is not None:
            self._insert_entry(entry)
        self._manifest["generation"] = int(self._manifest["generation"]) + 1
        self._write_manifest()
        for old in run:
            self._invalidate_segment(old)
            path = self._segment_path(old)
            if path.exists():
                path.unlink()
        for ordinal in folded:
            self._active_rows.pop(ordinal, None)
        self._write_topk()
        obs.counter("campaign.store.compactions").inc()
        flight_event(
            "store.compaction",
            merged_segments=fanin,
            merged_rows=best_total,
            segments_after=len(self._segments),
        )

    def _update_gauges(self) -> None:
        obs.gauge("campaign.store.segments").set(len(self._segments))
        sealed_rows = sum(entry["rows"] for entry in self._segments)
        if sealed_rows:
            sealed_bytes = sum(entry.get("nbytes", 0) for entry in self._segments)
            obs.gauge("campaign.store.bytes_per_ligand").set(
                sealed_bytes / sealed_rows
            )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _replay_log(self, path: Path) -> None:
        """Replay one CRC-framed log, truncating a torn tail in place."""
        data = path.read_bytes()
        records, clean = _scan_frames(data, str(path))
        if clean < len(data):
            with open(path, "r+b") as handle:
                handle.truncate(clean)
        for kind, payload in records:
            self._apply_record(kind, payload)

    def _recover(self) -> None:
        root = self.root
        (root / "active").mkdir(exist_ok=True)
        (root / "segments").mkdir(exist_ok=True)
        manifest_path = root / "MANIFEST.json"
        if manifest_path.exists():
            try:
                self._manifest = json.loads(manifest_path.read_text("utf-8"))
            except ValueError as exc:
                raise CampaignError(
                    f"{self.path} has a corrupt manifest: {exc}"
                ) from None
        self._segments = sorted(
            self._manifest.get("segments", []), key=lambda entry: entry["lo"]
        )
        # Crash debris: segment files written but never published.
        live = {entry["name"] for entry in self._segments}
        for path in (root / "segments").iterdir():
            if path.name not in live:
                path.unlink()
        # Counts start from the sealed state; replay adjusts them.
        self._counts = {status: 0 for status in _STATUSES}
        for entry in self._segments:
            for status, n in entry["counts"].items():
                self._counts[status] += int(n)
        # Load the persisted top-K *before* replaying logs: replayed results
        # push on top of the sealed index (loading afterwards would wipe
        # them — exactly the staleness the generation stamp can't see,
        # because appends don't bump the manifest generation).
        self._load_topk()
        # Shard table (torn tail tolerated like any framed log).
        shards_log = root / "shards.log"
        if shards_log.exists():
            data = shards_log.read_bytes()
            records, clean = _scan_frames(data, str(shards_log))
            if clean < len(data):
                with open(shards_log, "r+b") as handle:
                    handle.truncate(clean)
            for kind, payload in records:
                if kind == _K_SHARD_START:
                    shard_id, start, stop = _SHARD_START.unpack(payload)
                    self._shards[shard_id] = {
                        "start": start, "stop": stop, "status": "running",
                        "wall": None,
                    }
                    self._open_ranges[shard_id] = (start, stop)
                elif kind == _K_SHARD_FINISH:
                    shard_id, wall = _SHARD_FINISH.unpack(payload)
                    if shard_id in self._shards:
                        self._shards[shard_id]["status"] = "done"
                        self._shards[shard_id]["wall"] = wall
                        self._open_ranges.pop(shard_id, None)
        # Active per-shard logs: replay running shards; re-seal shards that
        # finished in shards.log but crashed before their manifest publish;
        # drop logs whose rows are already sealed.
        reseal: list[int] = []
        for path in sorted((root / "active").iterdir()):
            match = _ACTIVE_NAME.match(path.name)
            if not match:
                continue
            shard_id = int(match.group(1))
            shard = self._shards.get(shard_id)
            if (
                shard is not None
                and shard["status"] == "done"
                and self._covering_segment(shard["start"], shard["stop"] - 1)
                is not None
            ):
                path.unlink()
                continue
            self._replay_log(path)
            if shard is not None and shard["status"] == "done":
                reseal.append(shard_id)
        for shard_id in reseal:
            shard = self._shards[shard_id]
            self._seal_range(shard["start"], shard["stop"], shard_id=shard_id)
        # Orphan log last: its records postdate the shard logs they shadow.
        orphan = root / "active" / "orphan.log"
        if orphan.exists():
            self._replay_log(orphan)
        self._update_gauges()

    # ------------------------------------------------------------------
    # top-K index
    # ------------------------------------------------------------------
    def _topk_push(self, score: float, ordinal: int) -> None:
        heapq.heappush(self._topk_heap, (-score, -ordinal))
        if len(self._topk_heap) > self._topk_capacity:
            heapq.heappop(self._topk_heap)
            self._topk_saturated = True

    def _write_topk(self) -> None:
        entries = sorted((-s, -o) for s, o in self._topk_heap)
        body = b"".join(_TOPK_ENTRY.pack(score, ordinal) for score, ordinal in entries)
        data = (
            _TOPK_MAGIC
            + _TOPK_HEADER.pack(
                int(self._manifest["generation"]),
                self._topk_capacity,
                len(entries),
            )
            + body
            + struct.pack("<I", zlib.crc32(body))
        )
        _atomic_write(self.root / "topk.idx", data)

    def _load_topk(self) -> None:
        path = self.root / "topk.idx"
        if not path.exists() or path.stat().st_size < len(_TOPK_MAGIC):
            self._topk_dirty = bool(self._segments)
            return
        try:
            with open(path, "rb") as handle, mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            ) as view:
                if view[: len(_TOPK_MAGIC)] != _TOPK_MAGIC:
                    raise ValueError("bad magic")
                generation, capacity, count = _TOPK_HEADER.unpack_from(
                    view, len(_TOPK_MAGIC)
                )
                body_off = len(_TOPK_MAGIC) + _TOPK_HEADER.size
                body = bytes(view[body_off : body_off + count * _TOPK_ENTRY.size])
                (crc,) = struct.unpack_from("<I", view, body_off + len(body))
                if zlib.crc32(body) != crc:
                    raise ValueError("CRC mismatch")
        except (ValueError, struct.error):
            self._topk_dirty = bool(self._segments)
            return
        if generation != int(self._manifest["generation"]):
            self._topk_dirty = bool(self._segments)
            return
        heap = []
        for i in range(count):
            score, ordinal = _TOPK_ENTRY.unpack_from(body, i * _TOPK_ENTRY.size)
            heap.append((-score, -ordinal))
        heapq.heapify(heap)
        self._topk_heap = heap
        self._topk_saturated = count >= capacity

    def _rebuild_topk(self) -> None:
        self._topk_heap = []
        self._topk_saturated = False
        for ordinal, row in self._iter_logical():
            if row[_STATUS] == "done" and row[_SCORE] is not None:
                self._topk_push(row[_SCORE], ordinal)
        self._topk_dirty = False

    # ------------------------------------------------------------------
    # queries and export
    # ------------------------------------------------------------------
    def _lookup(self, ordinal: int) -> list | None:
        row = self._active_rows.get(ordinal)
        if row is not None:
            return row
        return self._segment_row(ordinal)

    def _iter_logical(self) -> Iterator[tuple[int, list]]:
        """Every live row in ordinal order: sealed segments + overlay merge.

        Holds the store lock for the whole stream: background compaction
        rewrites ``self._segments`` (and unlinks the merged files) from the
        compaction thread, so an unlocked iterator could observe a
        half-swapped segment list. Rows still stream one at a time — the
        lock bounds concurrency, not memory. The RLock keeps this reentrant
        for locked callers like :meth:`top`.
        """
        with self._lock:
            overlay = sorted(self._active_rows.items())
            seg_stream = chain.from_iterable(
                self._iter_segment_rows(entry) for entry in self._segments
            )
            yield from _merge_rows(seg_stream, overlay)

    def _top_row(self, ordinal: int, row: list) -> dict:
        return {
            "ordinal": ordinal,
            "title": row[_TITLE],
            "best_score": row[_SCORE],
            "best_spot": row[_SPOT],
            "evaluations": row[_EVALS],
            "wall_seconds": row[_WALL],
            "simulated_seconds": row[_SIM],
        }

    def top(self, k: int = 10) -> list[dict]:
        """The ``k`` best completed ligands, ascending score.

        Served by the incrementally maintained top-K index; a stale or
        overflowed index falls back to a streaming full scan (and the index
        rebuilds itself on the way).
        """
        if k < 1:
            raise CampaignError(f"k must be >= 1, got {k}")
        with self._lock:
            if self._topk_dirty:
                self._rebuild_topk()
            candidates = sorted((-s, -o) for s, o in self._topk_heap)
            validated: list[tuple[int, list]] = []
            seen: set[int] = set()
            for score, ordinal in candidates:
                if ordinal in seen:
                    continue
                row = self._lookup(ordinal)
                if (
                    row is not None
                    and row[_STATUS] == "done"
                    and row[_SCORE] is not None
                    and row[_SCORE] == score
                ):
                    validated.append((ordinal, row))
                    seen.add(ordinal)
                if len(validated) == k:
                    break
            if len(validated) < k and (self._topk_saturated or k > self._topk_capacity):
                best = heapq.nsmallest(
                    k,
                    (
                        (row[_SCORE], ordinal, row)
                        for ordinal, row in self._iter_logical()
                        if row[_STATUS] == "done" and row[_SCORE] is not None
                    ),
                    key=lambda item: (item[0], item[1]),
                )
                return [self._top_row(ordinal, row) for _, ordinal, row in best]
            return [self._top_row(ordinal, row) for ordinal, row in validated]

    def science_rows(self) -> Iterator[tuple]:
        """Stream the result-affecting columns only, in ordinal order.

        Byte-compatible with the SQLite backend's rows — the parity
        fingerprint :meth:`science_digest` hashes these.
        """
        for ordinal, row in self._iter_logical():
            yield (
                ordinal, row[_TITLE], row[_STATUS],
                row[_SCORE], row[_SPOT], row[_EVALS],
            )

    def science_digest(self) -> str:
        """SHA-256 over :meth:`science_rows` — the store-parity fingerprint."""
        digest = hashlib.sha256()
        for row in self.science_rows():
            digest.update(json.dumps(row, sort_keys=True).encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def iter_results(self) -> Iterator[dict]:
        """Stream every ligand row as a dict, in ordinal order."""
        for ordinal, row in self._iter_logical():
            yield {
                "ordinal": ordinal,
                "title": row[_TITLE],
                "status": row[_STATUS],
                "best_score": row[_SCORE],
                "best_spot": row[_SPOT],
                "evaluations": row[_EVALS],
                "wall_seconds": row[_WALL],
                "simulated_seconds": row[_SIM],
                "attempts": row[_ATTEMPTS],
                "error": row[_ERROR],
            }

    def export_json(self, destination: str | Path | TextIO) -> int:
        """Write the full campaign dump as JSON; returns rows written.

        Rows stream one at a time — the full table is never in memory.
        """
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.export_json(handle)
        destination.write('{"campaign": ')
        destination.write(json.dumps(self.config, sort_keys=True))
        destination.write(f', "config_hash": {json.dumps(self.config_hash)}')
        destination.write(f', "counts": {json.dumps(self.counts())}')
        destination.write(', "results": [')
        n = 0
        for row in self.iter_results():
            destination.write(("," if n else "") + "\n" + json.dumps(row))
            n += 1
        destination.write("\n]}\n")
        return n

    def export_csv(self, destination: str | Path | TextIO) -> int:
        """Write per-ligand rows as CSV; returns rows written."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8", newline="") as handle:
                return self.export_csv(handle)
        writer = csv.writer(destination)
        writer.writerow(_RESULT_COLUMNS)
        n = 0
        for row in self.iter_results():
            writer.writerow([row[column] for column in _RESULT_COLUMNS])
            n += 1
        return n

    def to_report(self) -> ScreeningReport:
        """Materialise completed ligands as a :class:`ScreeningReport`."""
        config = self.config
        report = ScreeningReport(
            receptor_title=str(config.get("receptor_title") or "receptor")
        )
        for row in self.iter_results():
            if row["status"] != "done":
                continue
            simulated = row["simulated_seconds"]
            report.add(
                ScreeningEntry(
                    ligand_title=str(row["title"]),
                    best_score=float(row["best_score"]),
                    best_spot=int(row["best_spot"]),
                    evaluations=int(row["evaluations"]),
                    simulated_seconds=(
                        float("nan") if simulated is None else float(simulated)
                    ),
                )
            )
            if simulated is not None:
                report.simulated_seconds += float(simulated)
        return report
