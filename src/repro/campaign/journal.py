"""Crash-safe campaign journal: an append-only JSONL write-ahead log.

The journal records campaign lifecycle events at *shard* granularity — one
fsync'd line per shard start/finish, plus campaign start/resume/finish
markers. It is deliberately redundant with the store: the store holds the
science (per-ligand rows), the journal holds the *intent* ("shard 7
started"), and resume reconciles the two — a shard that started but never
finished is re-queued, and its already-committed ligand rows are skipped.

Durability contract: by default every :meth:`append` flushes and ``fsync`` s
before returning, so a record is either fully on disk or not there at all. A
process killed mid-write leaves at most one truncated final line, which
:meth:`replay` detects and drops (the corresponding shard simply re-queues).
Corruption anywhere *before* the tail is a real integrity failure and
raises.

Group commit: at million-ligand scale one fsync per shard becomes the
bottleneck, so ``batch_records``/``batch_seconds`` buffer shard markers and
commit them in one write+fsync per batch. Campaign lifecycle markers
(start/resume/finish) always flush immediately. Batching is safe because the
store is authoritative for finished shards — ``store.finish_shard`` commits
before the journal's ``shard_finish``, so a SIGKILL that loses buffered
markers at worst re-queues shards whose ligands are already committed, and
resume skips them row by row (the same idempotent replay a torn tail relies
on).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import observability as obs
from repro.errors import CampaignError
from repro.observability.flight import flight_event

__all__ = ["CampaignJournal", "JournalState"]


@dataclass
class JournalState:
    """Replay summary: which shards started/finished, campaign markers."""

    config_hash: str | None = None
    #: shard_id -> (start, stop) for every shard_start seen.
    started: dict[int, tuple[int, int]] = field(default_factory=dict)
    finished: set[int] = field(default_factory=set)
    campaign_finished: bool = False
    #: Records dropped from a truncated tail (0 or 1 under the fsync contract).
    truncated_records: int = 0

    def unfinished(self) -> set[int]:
        """Shards that started but never finished — the resume work list."""
        return set(self.started) - self.finished


class CampaignJournal:
    """Append-only JSONL journal for one campaign (see module docstring).

    ``batch_records=1`` (the default) keeps the original one-fsync-per-record
    contract; larger values group-commit up to that many records — or
    whatever accumulated within ``batch_seconds`` of the oldest buffered
    record — per fsync.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        batch_records: int = 1,
        batch_seconds: float = 0.0,
    ) -> None:
        if batch_records < 1:
            raise CampaignError(
                f"batch_records must be >= 1, got {batch_records}"
            )
        if batch_seconds < 0:
            raise CampaignError(
                f"batch_seconds must be >= 0, got {batch_seconds}"
            )
        self.path = Path(path)
        self.batch_records = int(batch_records)
        self.batch_seconds = float(batch_seconds)
        self._buffer: list[str] = []
        self._buffer_t0 = 0.0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict, urgent: bool = False) -> None:
        """Append one record; durable before returning unless batched.

        ``urgent`` forces an immediate group commit of everything buffered
        (campaign lifecycle markers use it).
        """
        if "record" not in record:
            raise CampaignError(f"journal records need a 'record' key: {record}")
        if not self._buffer:
            self._buffer_t0 = time.monotonic()
        # Wall-clock stamp (ms resolution): replay ignores it, the doctor
        # rebuilds campaign timelines from it. Caller-provided keys win.
        record = {"t": round(time.time(), 3), **record}
        self._buffer.append(json.dumps(record, sort_keys=True))
        obs.counter("campaign.journal.appends").inc()
        if (
            urgent
            or len(self._buffer) >= self.batch_records
            or (
                self.batch_seconds > 0.0
                and time.monotonic() - self._buffer_t0 >= self.batch_seconds
            )
        ):
            self.flush()

    def flush(self) -> None:
        """Group-commit every buffered record in one write + fsync."""
        if not self._buffer:
            return
        lines, self._buffer = self._buffer, []
        t0 = time.perf_counter()
        with obs.span("campaign.journal.fsync", records=len(lines)):
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        obs.counter("campaign.journal.flushes").inc()
        fsync_s = time.perf_counter() - t0
        obs.histogram("campaign.journal.fsync_seconds").observe(fsync_s)
        if fsync_s >= 0.1:
            # A stalled fsync is exactly what the black box should remember.
            flight_event(
                "journal.stall", records=len(lines), seconds=round(fsync_s, 6)
            )

    def campaign_start(self, config_hash: str) -> None:
        """Log campaign creation (binds the journal to one config)."""
        self.append(
            {"record": "campaign_start", "config_hash": config_hash}, urgent=True
        )

    def campaign_resume(self, config_hash: str) -> None:
        """Log a resume attach."""
        self.append(
            {"record": "campaign_resume", "config_hash": config_hash}, urgent=True
        )

    def shard_start(
        self, shard_id: int, start: int, stop: int, node: int | None = None
    ) -> None:
        """Log that a shard entered execution.

        ``node`` attributes the shard to a cluster worker node; replay
        ignores it (extra keys are forward-compatible), it exists for
        post-mortem reads of a distributed campaign's journal.
        """
        record = {
            "record": "shard_start",
            "shard": shard_id,
            "start": start,
            "stop": stop,
        }
        if node is not None:
            record["node"] = int(node)
        self.append(record)

    def shard_finish(
        self, shard_id: int, n_done: int, n_failed: int, node: int | None = None
    ) -> None:
        """Log that a shard's every ligand is recorded in the store."""
        record = {
            "record": "shard_finish",
            "shard": shard_id,
            "done": n_done,
            "failed": n_failed,
        }
        if node is not None:
            record["node"] = int(node)
        self.append(record)

    def campaign_finish(self, n_ligands: int) -> None:
        """Log that the whole library streamed through."""
        self.append(
            {"record": "campaign_finish", "n_ligands": n_ligands}, urgent=True
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def replay(self) -> JournalState:
        """Parse the journal into a :class:`JournalState`.

        Tolerates exactly one malformed record at the tail (the crash
        artifact); malformed records elsewhere raise :class:`CampaignError`.
        """
        self.flush()  # a same-process replay must see buffered records
        state = JournalState()
        if not self.path.exists():
            return state
        raw_lines = self.path.read_text(encoding="utf-8").split("\n")
        # A well-formed file ends with "\n" → last split element is "".
        lines = [line for line in raw_lines if line.strip()]
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "record" not in record:
                    raise ValueError("not a journal record")
            except ValueError:
                if index == len(lines) - 1:
                    state.truncated_records = 1
                    break
                raise CampaignError(
                    f"corrupt journal record at {self.path}:{index + 1}: {line[:80]!r}"
                ) from None
            self._apply(state, record)
        return state

    @staticmethod
    def _apply(state: JournalState, record: dict) -> None:
        kind = record["record"]
        if kind in ("campaign_start", "campaign_resume"):
            previous = state.config_hash
            state.config_hash = str(record.get("config_hash", ""))
            if previous is not None and previous != state.config_hash:
                raise CampaignError(
                    "journal config hash changed mid-file: "
                    f"{previous} -> {state.config_hash}"
                )
        elif kind == "shard_start":
            state.started[int(record["shard"])] = (
                int(record["start"]),
                int(record["stop"]),
            )
        elif kind == "shard_finish":
            state.finished.add(int(record["shard"]))
        elif kind == "campaign_finish":
            state.campaign_finished = True
        # Unknown kinds are ignored: forward compatibility for new markers.
