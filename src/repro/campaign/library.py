"""Streaming ligand libraries for durable screening campaigns.

The paper's premise is screening "large libraries of small molecules" (§1);
a library that size never fits in memory. A :class:`LigandSource` therefore
yields ligands *lazily* in a fixed global order, and the campaign layer cuts
that stream into deterministic fixed-size :class:`Shard` s. Determinism is
the load-bearing property: every ligand has a stable global **ordinal**, its
search seed derives from that ordinal alone (``campaign seed + ordinal``,
exactly as :func:`repro.vs.screening.screen` seeds ``seed + i``), so any
execution order, shard size, worker count, or crash/resume boundary
reproduces bitwise-identical scores.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.errors import CampaignError
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.synthetic import generate_ligand

__all__ = [
    "LigandSource",
    "IterableSource",
    "ListSource",
    "SyntheticSource",
    "PDBDirectorySource",
    "SmilesSource",
    "CsvSource",
    "Shard",
    "iter_shards",
    "resolve_title",
    "receptor_fingerprint",
    "build_receptor",
    "build_source",
    "materialize_ordinals",
]


@runtime_checkable
class LigandSource(Protocol):
    """A lazily-iterable ligand library with a stable global order.

    Implementations must yield the same ligands in the same order on every
    iteration (campaign resume re-streams the source from the start), and
    describe themselves via :meth:`descriptor` so a campaign store can record
    — and a CLI ``campaign resume`` can reconstruct — the library.
    """

    def __iter__(self) -> Iterator[Ligand]: ...

    def descriptor(self) -> dict:
        """JSON-serialisable description of this library (hashed into the
        campaign config)."""
        ...

    def count(self) -> int | None:
        """Total ligands, or ``None`` when unknown before streaming."""
        ...


class IterableSource:
    """Adapt an arbitrary iterable of ligands into a one-shot source.

    The generic escape hatch :func:`repro.vs.screening.screen` uses: no
    length, no reconstruction — a campaign built on it can run but not be
    resumed from its descriptor alone.
    """

    def __init__(self, ligands: Iterable[Ligand]) -> None:
        self._ligands = ligands

    def __iter__(self) -> Iterator[Ligand]:
        return iter(self._ligands)

    def descriptor(self) -> dict:
        return {"kind": "iterable"}

    def count(self) -> int | None:
        return None


class ListSource:
    """A materialised ligand list (small libraries, tests)."""

    def __init__(self, ligands: list[Ligand]) -> None:
        self._ligands = list(ligands)

    def __iter__(self) -> Iterator[Ligand]:
        return iter(self._ligands)

    def __len__(self) -> int:
        return len(self._ligands)

    def descriptor(self) -> dict:
        return {"kind": "list", "n_ligands": len(self._ligands)}

    def count(self) -> int | None:
        return len(self._ligands)


class SyntheticSource:
    """Generate the drug-like demo library lazily, one ligand at a time.

    Ligand ``i`` is bitwise identical to ``synthetic_library(n, ...)[i]``
    (same size draw, same ``seed + 1000 + i`` generation seed, same
    ``LIG%04d`` title) without ever materialising the other ``n - 1``.
    """

    def __init__(
        self,
        n_ligands: int,
        atoms_range: tuple[int, int] = (20, 50),
        seed: int = 0,
    ) -> None:
        if n_ligands < 1:
            raise CampaignError(f"n_ligands must be >= 1, got {n_ligands}")
        lo, hi = atoms_range
        if not 1 <= lo <= hi:
            raise CampaignError(f"invalid atoms_range {atoms_range}")
        self.n_ligands = int(n_ligands)
        self.atoms_range = (int(lo), int(hi))
        self.seed = int(seed)
        # One cheap upfront draw fixes every ligand's size; generation of the
        # atoms themselves stays lazy and per-ligand independent.
        rng = np.random.default_rng(self.seed)
        self._sizes = rng.integers(lo, hi + 1, size=self.n_ligands)

    def ligand_at(self, ordinal: int) -> Ligand:
        """Generate ligand ``ordinal`` directly (random access)."""
        if not 0 <= ordinal < self.n_ligands:
            raise CampaignError(
                f"ordinal {ordinal} out of range for {self.n_ligands} ligands"
            )
        return generate_ligand(
            int(self._sizes[ordinal]),
            seed=self.seed + 1000 + ordinal,
            title=f"LIG{ordinal:04d}",
        )

    def __iter__(self) -> Iterator[Ligand]:
        for i in range(self.n_ligands):
            yield self.ligand_at(i)

    def __len__(self) -> int:
        return self.n_ligands

    def descriptor(self) -> dict:
        return {
            "kind": "synthetic",
            "n_ligands": self.n_ligands,
            "atoms_range": list(self.atoms_range),
            "seed": self.seed,
        }

    def count(self) -> int | None:
        return self.n_ligands


class PDBDirectorySource:
    """Stream ligands from a directory of PDB files.

    Files are visited in sorted-name order (stable across runs); a file
    holding several ``MODEL``/``ENDMDL`` blocks contributes one ligand per
    model, in file order — the multi-ligand SD-file idiom transplanted to
    PDB. Untitled ligands inherit ``<stem>`` / ``<stem>:<model>`` titles.
    """

    def __init__(self, path: str | Path, pattern: str = "*.pdb") -> None:
        self.path = Path(path)
        self.pattern = pattern
        if not self.path.is_dir():
            raise CampaignError(f"ligand library directory not found: {self.path}")
        self._files = sorted(self.path.glob(pattern))
        if not self._files:
            raise CampaignError(
                f"no files matching {pattern!r} under {self.path}"
            )

    @staticmethod
    def _split_models(text: str) -> list[str]:
        """Split a PDB document into per-MODEL chunks (whole doc if none)."""
        if "\nMODEL" not in text and not text.startswith("MODEL"):
            return [text]
        chunks: list[str] = []
        current: list[str] | None = None
        for line in text.splitlines():
            record = line[:6].strip()
            if record == "MODEL":
                current = []
            elif record == "ENDMDL":
                if current:
                    chunks.append("\n".join(current) + "\nEND\n")
                current = None
            elif current is not None:
                current.append(line)
        if current:  # MODEL without ENDMDL — take what's there
            chunks.append("\n".join(current) + "\nEND\n")
        return chunks or [text]

    def __iter__(self) -> Iterator[Ligand]:
        from repro.molecules.pdb import loads_pdb

        for path in self._files:
            text = path.read_text(encoding="ascii", errors="replace")
            chunks = self._split_models(text)
            for model_index, chunk in enumerate(chunks):
                ligand = loads_pdb(chunk, kind="ligand")
                if not ligand.title:
                    suffix = f":{model_index + 1}" if len(chunks) > 1 else ""
                    ligand.title = f"{path.stem}{suffix}"
                yield ligand

    def descriptor(self) -> dict:
        return {
            "kind": "pdb-dir",
            "path": str(self.path.resolve()),
            "pattern": self.pattern,
        }

    def count(self) -> int | None:
        return None  # multi-model files make the ligand count unknowable


#: Tokens counted as one heavy atom when sizing a ligand from its SMILES.
#: Bracket atoms ([NH3+], [Se], …) count as one; hydrogens don't count.
_SMILES_ATOM = re.compile(r"Cl|Br|\[[^\]]*\]|[BCNOPSFI]|[bcnops]")


def _line_ligand(
    smiles: str, title: str, seed: int, atoms_range: tuple[int, int]
) -> Ligand:
    """Deterministically synthesise a ligand for one library line.

    Real conformer generation is out of scope (the paper's inputs are
    pre-built poses); what matters for the campaign layer is that each line
    maps to a *stable* ligand — same atom count (a heavy-atom estimate from
    the SMILES) and same generation seed (a content hash, NOT python's
    per-process ``hash()``) on every stream, every process, every node.
    """
    lo, hi = atoms_range
    heavy = len([m for m in _SMILES_ATOM.findall(smiles) if m != "[H]"])
    n_atoms = min(max(heavy, lo), hi)
    digest = hashlib.blake2b(
        f"{smiles}\x00{title}\x00{seed}".encode("utf-8"), digest_size=8
    ).digest()
    return generate_ligand(
        n_atoms, seed=int.from_bytes(digest, "big"), title=title
    )


def _title_key(title: str) -> bytes:
    """8-byte dedup key: bounded memory even for 10^7-title libraries."""
    return hashlib.blake2b(title.encode("utf-8"), digest_size=8).digest()


class SmilesSource:
    """Stream ligands from a line-delimited SMILES file (``.smi``).

    Each non-blank, non-``#`` line is ``SMILES[ whitespace title]``; an
    untitled line uses its SMILES string as the title. With ``dedup=True``
    (the default) a line whose title was already seen is skipped — the
    dedup set holds 8-byte content hashes, so memory stays bounded at any
    library size. Iteration order is the file order minus duplicates, hence
    stable across runs — the determinism resume depends on.
    """

    kind = "smiles"

    def __init__(
        self,
        path: str | Path,
        *,
        seed: int = 0,
        dedup: bool = True,
        atoms_range: tuple[int, int] = (4, 64),
    ) -> None:
        self.path = Path(path)
        if not self.path.is_file():
            raise CampaignError(f"ligand library file not found: {self.path}")
        lo, hi = atoms_range
        if not 1 <= lo <= hi:
            raise CampaignError(f"invalid atoms_range {atoms_range}")
        self.seed = int(seed)
        self.dedup = bool(dedup)
        self.atoms_range = (int(lo), int(hi))

    def _entries(self) -> Iterator[tuple[str, str]]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(None, 1)
                smiles = parts[0]
                title = parts[1].strip() if len(parts) > 1 else smiles
                yield smiles, title

    def __iter__(self) -> Iterator[Ligand]:
        seen: set[bytes] = set()
        for smiles, title in self._entries():
            if self.dedup:
                key = _title_key(title)
                if key in seen:
                    continue
                seen.add(key)
            yield _line_ligand(smiles, title, self.seed, self.atoms_range)

    def descriptor(self) -> dict:
        return {
            "kind": self.kind,
            "path": str(self.path.resolve()),
            "seed": self.seed,
            "dedup": self.dedup,
            "atoms_range": list(self.atoms_range),
        }

    def count(self) -> int | None:
        return None  # knowable only by streaming (dedup skips lines)


class CsvSource(SmilesSource):
    """Stream ligands from a CSV with SMILES (and optionally title) columns.

    The header row names the columns (matched case-insensitively); rows
    missing the SMILES cell are skipped. Everything else — synthetic ligand
    mapping, bounded-memory title dedup, deterministic order — matches
    :class:`SmilesSource`.
    """

    kind = "csv"

    def __init__(
        self,
        path: str | Path,
        *,
        smiles_column: str = "smiles",
        title_column: str = "title",
        seed: int = 0,
        dedup: bool = True,
        atoms_range: tuple[int, int] = (4, 64),
    ) -> None:
        super().__init__(path, seed=seed, dedup=dedup, atoms_range=atoms_range)
        self.smiles_column = str(smiles_column)
        self.title_column = str(title_column)

    def _entries(self) -> Iterator[tuple[str, str]]:
        import csv

        with open(self.path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise CampaignError(f"{self.path} is empty") from None
            columns = {name.strip().lower(): i for i, name in enumerate(header)}
            smiles_at = columns.get(self.smiles_column.lower())
            if smiles_at is None:
                raise CampaignError(
                    f"{self.path} has no {self.smiles_column!r} column "
                    f"(found {sorted(columns)})"
                )
            title_at = columns.get(self.title_column.lower())
            for row in reader:
                if smiles_at >= len(row) or not row[smiles_at].strip():
                    continue
                smiles = row[smiles_at].strip()
                title = (
                    row[title_at].strip()
                    if title_at is not None
                    and title_at < len(row)
                    and row[title_at].strip()
                    else smiles
                )
                yield smiles, title

    def descriptor(self) -> dict:
        descriptor = super().descriptor()
        descriptor["smiles_column"] = self.smiles_column
        descriptor["title_column"] = self.title_column
        return descriptor


@dataclass(frozen=True, slots=True)
class Shard:
    """A contiguous slice of the global ligand ordering.

    ``shard_id`` is derived from the ordinals (``start // shard size``), so
    the shard plan is a pure function of the library order and shard size —
    the property journal replay and resume rely on.
    """

    shard_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def ordinals(self) -> range:
        """Global ligand ordinals covered by this shard."""
        return range(self.start, self.stop)


def iter_shards(
    source: Iterable[Ligand], shard_size: int
) -> Iterator[tuple[Shard, list[tuple[int, Ligand]]]]:
    """Cut a ligand stream into fixed-size shards, one shard in memory.

    Yields ``(shard, [(ordinal, ligand), ...])``; only the current shard's
    ligands are ever materialised.
    """
    if shard_size < 1:
        raise CampaignError(f"shard_size must be >= 1, got {shard_size}")
    buffer: list[tuple[int, Ligand]] = []
    start = 0
    for ordinal, ligand in enumerate(source):
        buffer.append((ordinal, ligand))
        if len(buffer) == shard_size:
            yield Shard(start // shard_size, start, start + len(buffer)), buffer
            start += len(buffer)
            buffer = []
    if buffer:
        yield Shard(start // shard_size, start, start + len(buffer)), buffer


def resolve_title(title: str, ordinal: int, seen: set[str]) -> str:
    """Collision-free display/store key for one ligand.

    Empty titles become ``ligand-<ordinal>``; a title already taken by an
    earlier ligand gets ``#<ordinal>`` suffixed. Deterministic given the
    stream prefix, so resume re-derives identical keys.
    """
    name = title or f"ligand-{ordinal}"
    if name in seen:
        name = f"{name}#{ordinal}"
    seen.add(name)
    return name


def build_receptor(descriptor: dict) -> Receptor:
    """Reconstruct a receptor from its campaign-config descriptor.

    The inverse of what ``campaign run`` records: ``synthetic`` descriptors
    regenerate (bitwise, same seed), ``pdb`` descriptors re-read the file.
    Anything else (an ``opaque`` in-memory receptor) cannot be rebuilt in
    another process and raises :class:`~repro.errors.CampaignError`.
    """
    kind = descriptor.get("kind")
    if kind == "synthetic":
        from repro.molecules.synthetic import generate_receptor

        return generate_receptor(
            int(descriptor["n_atoms"]), seed=int(descriptor["seed"])
        )
    if kind == "pdb":
        from repro.molecules.pdb import read_pdb

        return read_pdb(descriptor["path"], kind="receptor")
    raise CampaignError(
        "this campaign's receptor cannot be reconstructed from its "
        f"descriptor {descriptor}; resume it via the Python API"
    )


def build_source(descriptor: dict) -> LigandSource:
    """Reconstruct a ligand source from its campaign-config descriptor.

    Same contract as :func:`build_receptor`: ``synthetic`` and ``pdb-dir``
    libraries rebuild exactly; one-shot ``iterable``/``list`` sources raise.
    """
    kind = descriptor.get("kind")
    if kind == "synthetic":
        return SyntheticSource(
            int(descriptor["n_ligands"]),
            atoms_range=tuple(descriptor["atoms_range"]),
            seed=int(descriptor["seed"]),
        )
    if kind == "pdb-dir":
        return PDBDirectorySource(
            descriptor["path"], descriptor.get("pattern", "*.pdb")
        )
    if kind in ("smiles", "csv"):
        cls = SmilesSource if kind == "smiles" else CsvSource
        kwargs = dict(
            seed=int(descriptor.get("seed", 0)),
            dedup=bool(descriptor.get("dedup", True)),
            atoms_range=tuple(descriptor.get("atoms_range", (4, 64))),
        )
        if kind == "csv":
            kwargs["smiles_column"] = descriptor.get("smiles_column", "smiles")
            kwargs["title_column"] = descriptor.get("title_column", "title")
        return cls(descriptor["path"], **kwargs)
    raise CampaignError(
        "this campaign's ligand library cannot be reconstructed from its "
        f"descriptor {descriptor}; resume it via the Python API"
    )


def materialize_ordinals(
    source: LigandSource, ordinals: list[int]
) -> dict[int, Ligand]:
    """Fetch specific ligands by global ordinal.

    Random-access sources (:meth:`SyntheticSource.ligand_at`) jump straight
    to each ordinal; streaming sources are scanned once up to the largest
    requested ordinal. Worker nodes use this to materialise a lease's
    ligands locally instead of shipping them over the wire.
    """
    wanted = set(ordinals)
    if not wanted:
        return {}
    out: dict[int, Ligand] = {}
    ligand_at = getattr(source, "ligand_at", None)
    if callable(ligand_at):
        return {ordinal: ligand_at(ordinal) for ordinal in sorted(wanted)}
    last = max(wanted)
    for ordinal, ligand in enumerate(source):
        if ordinal in wanted:
            out[ordinal] = ligand
        if ordinal >= last:
            break
    missing = wanted - set(out)
    if missing:
        raise CampaignError(
            f"library ended before ordinals {sorted(missing)} were reached"
        )
    return out


def receptor_fingerprint(receptor: Receptor) -> str:
    """Content hash of a receptor (coordinates, elements, charges).

    Stored in the campaign config; resume refuses to continue against a
    receptor whose fingerprint drifted.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(receptor.coords, dtype=np.float64).tobytes())
    digest.update("|".join(str(e) for e in receptor.elements).encode())
    digest.update(np.ascontiguousarray(receptor.charges, dtype=np.float64).tobytes())
    return digest.hexdigest()
