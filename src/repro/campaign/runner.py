"""Campaign orchestration: drive shards of ligands through the host runtime.

A :class:`CampaignRunner` wraps the existing :func:`repro.vs.docking.dock`
machinery (including the PR 1 process-parallel host runtime via
``host_workers``/``parallel_mode``/``prune_spots``) with the durability
layer: every completed ligand is committed to the :class:`CampaignStore`
before the next one starts, shard boundaries are journalled write-ahead, and
:meth:`resume` reconciles journal and store to continue exactly where a
crash, SIGKILL, or Ctrl-C left off.

Determinism: ligand ``ordinal`` is always docked with seed ``seed +
ordinal`` (the same rule ``screen()`` has always used), so an interrupted
and resumed campaign produces bitwise-identical scores to an uninterrupted
one, for any shard size or worker count.

Runtime ownership: with ``host_workers > 0`` and ``persistent_pool=True``
(the default) the campaign owns one
:class:`repro.engine.host_runtime.PersistentHostRuntime` for its whole
lifetime — worker pool, staged receptor and Eq. 1 warm-up are paid once, and
each ligand is swapped in through the versioned rebind protocol (with the
next ligand prefetch-staged while the current one docks). ``dock()``
receives the runtime through its ``evaluator_factory`` seam and never closes
it. With ``pipeline_depth > 1`` the runner drives that many ligands'
metaheuristics concurrently through the shared pool (each on a lease, each
with its own seed and launch trace), committing results in ordinal order so
the durability layer cannot tell the difference; depth 1 is bit-for-bit the
classic serial loop.

Failure policy: per-ligand bounded retry with exponential backoff (a worker
pool that died is recycled in place by the persistent runtime — workers are
replaced, the staged receptor and warm-up weights survive — or rebuilt by
the next ``dock()`` call on the fresh-pool path); a ligand that exhausts its
attempts is recorded ``failed`` with the exception text and the campaign
continues past it. ``KeyboardInterrupt``/``SystemExit`` are never swallowed
— they are the crash the journal exists for.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import observability as obs
from repro.engine.host_runtime import PersistentHostRuntime
from repro.errors import CampaignError
from repro.hardware.node import NodeSpec
from repro.metaheuristics.template import MetaheuristicSpec
from repro.molecules.spots import find_spots
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import ScoringFunction
from repro.vs.docking import dock

from repro.campaign.backends import (
    STORE_BACKENDS,
    create_store,
    open_store,
    store_disk_bytes,
)
from repro.campaign.journal import CampaignJournal
from repro.campaign.library import (
    LigandSource,
    iter_shards,
    receptor_fingerprint,
    resolve_title,
)
from repro.campaign.store import CampaignStore
from repro.observability.flight import (
    dump_flight,
    flight_dir,
    flight_event,
    flight_recorder,
)

__all__ = ["CampaignRunner", "CampaignProgress", "campaign_config", "config_hash"]

#: Config keys that affect the science (scores/ranking); the hash covers
#: exactly these. Execution knobs (host workers, balancing mode, node model)
#: may change freely between run and resume — results are bitwise identical
#: either way. Autotuning is hashed by the *content* of its calibration
#: table, not the file path: a different table selects different kernels
#: (low-order bits move with the GEMM shape), so a resume must replay the
#: same selections; with autotune off both keys are omitted, keeping hashes
#: of pre-autotune stores valid.
HASHED_KEYS = (
    "receptor_hash",
    "library",
    "n_spots",
    "metaheuristic",
    "scoring",
    "seed",
    "workload_scale",
    "shard_size",
    "prune_spots",
    "autotune",
    "calibration_hash",
)


@dataclass(frozen=True, slots=True)
class CampaignProgress:
    """One progress snapshot, emitted after every shard.

    ``ligands_per_second`` measures *this session's* docking rate;
    ``eta_seconds`` is ``nan`` while the library size is unknown.
    """

    shard_id: int
    done: int
    failed: int
    total: int | None
    elapsed_seconds: float
    ligands_per_second: float
    eta_seconds: float


def campaign_config(
    receptor: Receptor,
    source: LigandSource,
    *,
    n_spots: int,
    metaheuristic: str | MetaheuristicSpec,
    scoring: ScoringFunction | None,
    seed: int,
    workload_scale: float,
    shard_size: int,
    prune_spots: bool,
    node: NodeSpec | None,
    mode: str,
    receptor_descriptor: dict | None = None,
    autotune: bool = False,
    calibration_hash: str | None = None,
) -> dict:
    """Build the JSON-serialisable campaign configuration record."""
    spec_name = (
        metaheuristic.name
        if isinstance(metaheuristic, MetaheuristicSpec)
        else str(metaheuristic)
    )
    scoring_name = (
        None if scoring is None else getattr(scoring, "name", type(scoring).__name__)
    )
    config = {
        "schema_version": 1,
        "receptor_hash": receptor_fingerprint(receptor),
        "receptor_title": receptor.title or "receptor",
        "receptor": receptor_descriptor or {"kind": "opaque"},
        "library": source.descriptor(),
        "n_spots": int(n_spots),
        "metaheuristic": spec_name,
        "scoring": scoring_name,
        "seed": int(seed),
        "workload_scale": float(workload_scale),
        "shard_size": int(shard_size),
        "prune_spots": bool(prune_spots),
        "node": None if node is None else node.name,
        "mode": mode,
    }
    if autotune:
        # Omitted entirely when off, so pre-autotune store hashes stay valid.
        config["autotune"] = True
        config["calibration_hash"] = calibration_hash
    return config


def config_hash(config: dict) -> str:
    """Hash the result-affecting subset of a campaign config."""
    hashed = {key: config.get(key) for key in HASHED_KEYS}
    return hashlib.sha256(
        json.dumps(hashed, sort_keys=True).encode()
    ).hexdigest()


class CampaignRunner:
    """Execute (or continue) one durable screening campaign.

    Parameters mirror :func:`repro.vs.screening.screen` plus the durability
    knobs. ``store_path=":memory:"`` gives the one-shot in-memory campaign
    ``screen()`` itself is built on (no journal, failures raise).
    """

    def __init__(
        self,
        receptor: Receptor,
        source: LigandSource,
        *,
        store_path: str | Path,
        store_backend: str = "sqlite",
        journal_path: str | Path | None = None,
        journal_batch_records: int = 1,
        journal_batch_seconds: float = 0.0,
        n_spots: int = 16,
        metaheuristic: str | MetaheuristicSpec = "M2",
        scoring: ScoringFunction | None = None,
        seed: int = 0,
        workload_scale: float = 1.0,
        shard_size: int = 32,
        node: NodeSpec | None = None,
        mode: str = "gpu-heterogeneous",
        host_workers: int = 0,
        parallel_mode: str = "static",
        prune_spots: bool = False,
        persistent_pool: bool = True,
        pipeline_depth: int = 2,
        autotune=False,
        calibration_file: str | Path | None = None,
        refine_calibration: bool = False,
        max_attempts: int = 3,
        backoff_base: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
        progress: Callable[[CampaignProgress], None] | None = None,
        raise_on_failure: bool = False,
        receptor_descriptor: dict | None = None,
        nodes: int = 0,
        cluster=None,
    ) -> None:
        if host_workers < 0:
            raise CampaignError(f"host_workers must be >= 0, got {host_workers}")
        if nodes < 0:
            raise CampaignError(f"nodes must be >= 0, got {nodes}")
        if parallel_mode not in ("static", "dynamic"):
            raise CampaignError(
                f"parallel_mode must be 'static' or 'dynamic', got {parallel_mode!r}"
            )
        if shard_size < 1:
            raise CampaignError(f"shard_size must be >= 1, got {shard_size}")
        if max_attempts < 1:
            raise CampaignError(f"max_attempts must be >= 1, got {max_attempts}")
        if pipeline_depth < 1:
            raise CampaignError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        if store_backend not in STORE_BACKENDS:
            raise CampaignError(
                f"store_backend must be one of {STORE_BACKENDS}, "
                f"got {store_backend!r}"
            )
        if store_backend == "columnar" and str(store_path) == ":memory:":
            raise CampaignError(
                "the columnar store backend persists to a directory; "
                ":memory: campaigns use the sqlite backend"
            )
        self.receptor = receptor
        self.source = source
        self.store_path = str(store_path)
        self.store_backend = store_backend
        if journal_path is None and self.store_path != ":memory:":
            journal_path = self.store_path + ".journal"
        self.journal = (
            CampaignJournal(
                journal_path,
                batch_records=journal_batch_records,
                batch_seconds=journal_batch_seconds,
            )
            if journal_path
            else None
        )
        self.n_spots = n_spots
        self.metaheuristic = metaheuristic
        self.scoring = scoring
        self.seed = seed
        self.workload_scale = workload_scale
        self.shard_size = shard_size
        self.node = node
        self.mode = mode
        self.host_workers = host_workers
        self.parallel_mode = parallel_mode
        self.prune_spots = prune_spots
        self.persistent_pool = bool(persistent_pool)
        #: Ligands docked concurrently through the shared pool (needs
        #: ``host_workers > 0`` and the persistent pool). Depth 1 is the
        #: exact legacy serial loop. An execution knob — never hashed;
        #: results are bitwise identical at every depth.
        self.pipeline_depth = int(pipeline_depth)
        self._runtime: PersistentHostRuntime | None = None
        # --- input-aware kernel autotuning -----------------------------
        # `autotune` is False, True (load `calibration_file`), or a
        # ready-made AutotuneController (screen()/tests share one). The
        # controller is built here so the table's content hash can enter
        # the campaign config before any store is created.
        from repro.scoring.autotune import AutotuneController, CalibrationTable

        self.calibration_file = (
            None if calibration_file is None else str(calibration_file)
        )
        self.refine_calibration = bool(refine_calibration)
        self._autotune: AutotuneController | None = None
        calibration_hash = None
        if isinstance(autotune, AutotuneController):
            self._autotune = autotune
        elif autotune:
            if self.calibration_file is None:
                raise CampaignError(
                    "autotune=True needs a calibration_file "
                    "(write one with `repro-vs calibrate`)"
                )
            try:
                table = CalibrationTable.load(self.calibration_file)
            except Exception as exc:
                raise CampaignError(str(exc)) from exc
            self._autotune = AutotuneController(table, prune_spots=bool(prune_spots))
        self.autotune = self._autotune is not None
        if self._autotune is not None:
            calibration_hash = hashlib.sha256(
                json.dumps(
                    self._autotune.selector.table.to_json(), sort_keys=True
                ).encode()
            ).hexdigest()
        if self.refine_calibration and (
            not self.autotune or self.calibration_file is None
        ):
            raise CampaignError(
                "refine_calibration needs autotune plus a calibration_file "
                "to write the refined table back to"
            )
        # --- distributed execution -------------------------------------
        # nodes >= 2 delegates _execute to the cluster fleet (nodes in
        # {0, 1} keeps the in-process single-node path — a "1-node cluster"
        # exists only through the explicit ClusterCampaign API, where the
        # benchmark uses it for apples-to-apples scaling baselines).
        self.nodes = int(nodes)
        self.cluster = cluster
        self.cluster_spawn = True  # False = serve remote workers only (CLI)
        self.fleet = None  # set by execute_fleet; tests reach processes here
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self._sleep = sleep
        self._progress = progress
        self.raise_on_failure = raise_on_failure
        self.config = campaign_config(
            receptor,
            source,
            n_spots=n_spots,
            metaheuristic=metaheuristic,
            scoring=scoring,
            seed=seed,
            workload_scale=workload_scale,
            shard_size=shard_size,
            prune_spots=prune_spots,
            node=node,
            mode=mode,
            receptor_descriptor=receptor_descriptor,
            autotune=self.autotune,
            calibration_hash=calibration_hash,
        )
        # Recorded for visibility only: the backend and pipeline depth are
        # execution knobs, deliberately outside HASHED_KEYS — sqlite and
        # columnar stores (at any depth) of the same campaign share one
        # config hash and science digest.
        self.config["store_backend"] = self.store_backend
        self.config["pipeline_depth"] = self.pipeline_depth
        self.config_hash = config_hash(self.config)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self) -> CampaignStore:
        """Start a fresh campaign; refuses to clobber an existing store.

        Returns the open store (caller closes it — or uses it as a context
        manager).
        """
        with obs.span("campaign.run", config=self.config_hash[:12]):
            store = create_store(
                self.store_path,
                self.config,
                self.config_hash,
                backend=self.store_backend,
            )
            if self.journal is not None:
                self.journal.campaign_start(self.config_hash)
            return self._execute(store, finished=set())

    def resume(self) -> CampaignStore:
        """Continue an interrupted campaign from its store + journal.

        Verifies the config hash, replays the journal, re-queues shards that
        started but never finished, and docks only ligands without a
        committed result. Resuming a completed campaign is a no-op.
        """
        with obs.span("campaign.resume", config=self.config_hash[:12]) as span_tags:
            store = open_store(self.store_path)
            try:
                if store.config_hash != self.config_hash:
                    raise CampaignError(
                        "campaign config mismatch: the store was created with "
                        f"config hash {store.config_hash[:12]}… but resume was "
                        f"given {self.config_hash[:12]}…. Receptor, library, "
                        "seed, spots, metaheuristic, scoring, workload scale, "
                        "shard size, pruning and autotune calibration must "
                        "all match the original run."
                    )
                state = (
                    self.journal.replay() if self.journal is not None else None
                )
                if state is not None and state.config_hash not in (
                    None,
                    self.config_hash,
                ):
                    raise CampaignError(
                        f"journal {self.journal.path} belongs to config hash "
                        f"{state.config_hash[:12]}…, not {self.config_hash[:12]}…"
                    )
                if store.is_complete():
                    # Nothing to do; ranking is already final. Still a
                    # telemetry event — resume no-ops must stay observable.
                    span_tags["noop"] = True
                    obs.counter("campaign.resumes.noop").inc()
                    return store
                # A shard is settled iff the store says so AND the journal
                # agrees (store shard rows commit before the journal's
                # shard_finish, so the store is authoritative; the journal
                # catches a store that lost its very last update).
                finished = store.finished_shards()
                if state is not None:
                    finished |= state.finished
                if self.journal is not None:
                    self.journal.campaign_resume(self.config_hash)
            except Exception:
                store.close()
                raise
            return self._execute(store, finished=finished)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, store: CampaignStore, finished: set[int]) -> CampaignStore:
        # A 1-node fleet is only explicit opt-in: an attached ClusterConfig
        # (the multinode benchmark's apples-to-apples baseline) or a
        # remote-serving coordinator (cluster_spawn=False). Bare nodes=1
        # keeps the classic in-process path.
        if self.nodes >= 2 or (
            self.nodes == 1 and (self.cluster is not None or not self.cluster_spawn)
        ):
            from repro.cluster.fleet import execute_fleet

            return execute_fleet(
                self,
                store,
                finished,
                nodes=self.nodes,
                cluster=self.cluster,
                spawn=self.cluster_spawn,
            )
        spots = find_spots(self.receptor, self.n_spots)
        total = self.source.count()
        session_start = time.perf_counter()
        session_docked = 0
        seen_titles: set[str] = set()
        n_streamed = 0
        try:
            try:
                if self.host_workers > 0 and self.persistent_pool:
                    # Campaign-owned runtime: pool spawn, receptor staging
                    # and Eq. 1 warm-up are paid once, every ligand after
                    # the first is a slot rebind.
                    self._runtime = PersistentHostRuntime(
                        self.receptor,
                        spots,
                        n_workers=self.host_workers,
                        mode=self.parallel_mode,
                        scoring=self.scoring,
                        prune_spots=self.prune_spots,
                        autotune=self._autotune,
                        pipeline_depth=self.pipeline_depth,
                    )
                # One shard of lookahead so the current shard's tail can
                # hint the *next* shard's first ligand — without it, every
                # shard boundary paid a cold rebind (prefetch miss).
                shards = iter_shards(self.source, self.shard_size)
                upcoming = next(shards, None)
                while upcoming is not None:
                    shard, items = upcoming
                    upcoming = next(shards, None)
                    next_first = (
                        upcoming[1][0][1]
                        if upcoming is not None and upcoming[1]
                        else None
                    )
                    titled = [
                        (ordinal, ligand, resolve_title(ligand.title, ordinal, seen_titles))
                        for ordinal, ligand in items
                    ]
                    n_streamed += len(items)
                    if shard.shard_id in finished:
                        obs.counter("campaign.shards.skipped").inc()
                        continue
                    shard_t0 = time.perf_counter()
                    with obs.span("campaign.shard", shard=shard.shard_id):
                        if self.journal is not None:
                            self.journal.shard_start(
                                shard.shard_id, shard.start, shard.stop
                            )
                        store.start_shard(shard.shard_id, shard.start, shard.stop)
                        store.register_ligands([(o, t) for o, _, t in titled])
                        already_done = store.done_ordinals(shard.start, shard.stop)
                        pending = [
                            (ordinal, ligand, title)
                            for ordinal, ligand, title in titled
                            if ordinal not in already_done
                        ]
                        if self._runtime is not None and self.pipeline_depth > 1:
                            n_failed = self._dock_shard_pipelined(
                                store, spots, pending, next_first
                            )
                            session_docked += len(pending)
                        else:
                            n_failed = 0
                            for pos, (ordinal, ligand, title) in enumerate(pending):
                                if self._runtime is not None:
                                    # Double buffer: while this ligand docks,
                                    # the runtime's stager binds and stages the
                                    # next one (tail position: the next shard's
                                    # first) into a free slot bank.
                                    if pos + 1 < len(pending):
                                        self._runtime.hint_next(pending[pos + 1][1])
                                    elif next_first is not None:
                                        self._runtime.hint_next(next_first)
                                ok = self._dock_one(store, spots, ordinal, ligand, title)
                                session_docked += 1
                                if not ok:
                                    n_failed += 1
                        shard_s = time.perf_counter() - shard_t0
                        store.finish_shard(shard.shard_id, shard_s)
                        if self.journal is not None:
                            self.journal.shard_finish(
                                shard.shard_id, shard.size - n_failed, n_failed
                            )
                    obs.counter("campaign.shards.done").inc()
                    obs.histogram("campaign.shard.seconds").observe(shard_s)
                    flight_event(
                        "shard.finish",
                        shard=shard.shard_id,
                        wall=round(shard_s, 6),
                    )
                    self._update_disk_gauge()
                    # Shard boundary: worker-session telemetry has folded in and
                    # the store row is durable — force a live sample so the
                    # series shows every shard even when shards outpace the
                    # sampling interval.
                    obs.mark("campaign.shard", force=True)
                    self._emit_progress(
                        store, shard.shard_id, total, session_start, session_docked
                    )
                store.mark_complete(n_streamed)
                if self.journal is not None:
                    self.journal.campaign_finish(n_streamed)
                if (
                    self._autotune is not None
                    and self.refine_calibration
                    and self.calibration_file is not None
                ):
                    # Only on clean completion: a crashed campaign must not
                    # overwrite the table its resume will be hashed against.
                    self._autotune.refined_table().save(self.calibration_file)
            except BaseException:
                # Crash path: everything committed so far is durable; close the
                # connection so the WAL checkpoints cleanly, then let it fly.
                store.close()
                raise
        finally:
            if self.journal is not None:
                # Group-commit stragglers: a batched journal must not lose
                # markers to a clean exit or a raised exception (SIGKILL is
                # the one case this can't cover, and resume tolerates it).
                self.journal.flush()
            runtime, self._runtime = self._runtime, None
            if runtime is not None:
                runtime.close()
            if str(self.store_path) != ":memory:" and obs.enabled():
                # Black-box dump for the post-mortem doctor; best-effort.
                # A fleet run retags this process "coordinator"; only the
                # still-default role means this was a single-node campaign.
                if flight_recorder().role == "process":
                    flight_recorder().role = "runner"
                dump_flight(flight_dir(self.store_path) / "runner.flight")
        return store

    def _update_disk_gauge(self) -> None:
        """Satellite gauge: on-disk store footprint at each shard boundary.

        Lands in every sampler series record and on ``/metrics``, so the
        columnar-vs-SQLite growth curves are comparable over time.
        """
        if str(self.store_path) == ":memory:":
            return
        obs.gauge("store.disk.bytes").set(float(store_disk_bytes(self.store_path)))

    def _dock_one(
        self,
        store: CampaignStore,
        spots,
        ordinal: int,
        ligand: Ligand,
        title: str,
    ) -> bool:
        """Dock one ligand with bounded retry; returns False if it poisoned."""
        store.mark_running(ordinal)
        factory = (
            None if self._runtime is None else self._runtime.evaluator_factory
        )
        outcome = self._dock_attempts(spots, ordinal, ligand, factory)
        return self._commit_outcome(store, ordinal, title, outcome)

    def _dock_attempts(
        self, spots, ordinal: int, ligand: Ligand, evaluator_factory
    ) -> dict:
        """The bounded-retry dock loop, store-free (safe on a dock thread).

        Returns an outcome dict for :meth:`_commit_outcome`; never touches
        the store, so the pipelined scheduler can run it concurrently and
        commit results in ordinal order from the main thread.
        """
        delay = self.backoff_base
        for attempt in range(1, self.max_attempts + 1):
            t0 = time.perf_counter()
            try:
                result = dock(
                    self.receptor,
                    ligand,
                    spots=spots,
                    metaheuristic=self.metaheuristic,
                    scoring=self.scoring,
                    seed=self.seed + ordinal,
                    workload_scale=self.workload_scale,
                    node=self.node,
                    mode=self.mode,
                    host_workers=self.host_workers,
                    parallel_mode=self.parallel_mode,
                    prune_spots=self.prune_spots,
                    evaluator_factory=evaluator_factory,
                    autotune=self._autotune,
                )
            except Exception as exc:
                if attempt >= self.max_attempts:
                    return {"ok": False, "exc": exc, "attempts": attempt}
                obs.counter("campaign.retries").inc()
                flight_event(
                    "dock.retry",
                    ordinal=ordinal,
                    attempt=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                )
                self._sleep(delay)
                delay *= 2
                continue
            # One clock read for both the histogram and the stored row —
            # they must agree.
            wall_s = time.perf_counter() - t0
            return {
                "ok": True,
                "result": result,
                "wall_s": wall_s,
                "attempts": attempt,
            }
        raise AssertionError("unreachable")  # pragma: no cover

    def _commit_outcome(
        self, store: CampaignStore, ordinal: int, title: str, outcome: dict
    ) -> bool:
        """Commit one dock outcome (main thread only); False if it poisoned."""
        if not outcome["ok"]:
            exc = outcome["exc"]
            if self.raise_on_failure:
                raise exc
            store.record_failure(
                ordinal, title, f"{type(exc).__name__}: {exc}", outcome["attempts"]
            )
            obs.counter("campaign.ligands.failed").inc()
            return False
        result, wall_s = outcome["result"], outcome["wall_s"]
        obs.counter("campaign.ligands.done").inc()
        obs.histogram("campaign.dock.seconds").observe(wall_s)
        if self._autotune is not None:
            self._observe_throughput(result, wall_s)
        store.record_result(
            ordinal,
            title,
            result.best_score,
            result.best.spot_index,
            result.evaluations,
            wall_seconds=wall_s,
            simulated_seconds=result.simulated_seconds,
            attempts=outcome["attempts"],
        )
        return True

    def _dock_shard_pipelined(
        self, store: CampaignStore, spots, pending: list, next_first
    ) -> int:
        """Dock one shard's pending ligands depth-at-a-time; commit in order.

        The bounded in-flight scheduler of the docking pipeline: up to
        ``pipeline_depth`` ligands hold leases on the shared persistent
        pool, each docking on its own thread, so one ligand's launches
        fill another's host-side gaps. The main thread does everything
        stateful — leases (the first one forks the pool), ``mark_running``,
        and ordinal-ordered commits — so journal/store/resume semantics are
        byte-for-byte the serial loop's. Per-ligand seeds and launch
        sequences are untouched; only inter-ligand interleaving differs.
        ``next_first`` is the following shard's first ligand, hinted at the
        shard tail so the boundary rebind is warm.
        """
        depth = min(self.pipeline_depth, max(1, len(pending)))
        n_failed = 0
        submit_pos = 0
        inflight: dict[int, tuple] = {}  # ordinal -> (future, lease)
        executor = ThreadPoolExecutor(
            max_workers=depth, thread_name_prefix="dock-pipeline"
        )

        def docked(ordinal, ligand, lease, lane):
            with obs.span("campaign.pipeline.dock", ordinal=ordinal, pipeline_lane=lane):
                return self._dock_attempts(
                    spots, ordinal, ligand, lease.evaluator_factory
                )

        try:
            for commit_pos, (ordinal, ligand, title) in enumerate(pending):
                while submit_pos < len(pending) and len(inflight) < depth:
                    next_ordinal, next_ligand, _ = pending[submit_pos]
                    # Hint before leasing: lease() kicks the stager for the
                    # ligand after this one as its last step.
                    if submit_pos + 1 < len(pending):
                        self._runtime.hint_next(pending[submit_pos + 1][1])
                    elif next_first is not None:
                        self._runtime.hint_next(next_first)
                    store.mark_running(next_ordinal)
                    lease = self._runtime.lease(next_ligand)
                    future = executor.submit(
                        docked, next_ordinal, next_ligand, lease, submit_pos % depth
                    )
                    inflight[next_ordinal] = (future, lease)
                    submit_pos += 1
                future, lease = inflight.pop(ordinal)
                try:
                    outcome = future.result()
                finally:
                    lease.release()
                if not self._commit_outcome(store, ordinal, title, outcome):
                    n_failed += 1
        finally:
            # Error path: let started docks drain (their pool is still
            # alive), then free any leases the commits never reached.
            executor.shutdown(wait=True, cancel_futures=True)
            for future, lease in inflight.values():
                lease.release()
        return n_failed

    def _observe_throughput(self, result, wall_s: float) -> None:
        """Feed measured poses/s back into the autotune controller.

        Prefers the per-worker telemetry gauges (they exclude campaign
        overhead: staging, store writes, journal flushes); falls back to
        evaluations / wall-clock when no worker gauge carries a sample —
        the serial path, or a run without the persistent pool.
        """
        rate = 0.0
        for w in range(self.host_workers):
            g = obs.gauge("host.worker.poses_per_s", worker=w)
            v = float(getattr(g, "value", 0.0) or 0.0)
            if v > 0.0:
                rate += v
        if rate <= 0.0 and wall_s > 0.0:
            rate = result.evaluations / wall_s
        if rate > 0.0:
            self._autotune.observe(rate)

    def _emit_progress(
        self,
        store: CampaignStore,
        shard_id: int,
        total: int | None,
        session_start: float,
        session_docked: int,
    ) -> None:
        if self._progress is None:
            return
        counts = store.counts()
        elapsed = time.perf_counter() - session_start
        rate = session_docked / elapsed if elapsed > 0 else 0.0
        if total is None or rate <= 0:
            eta = float("nan")
        else:
            remaining = max(0, total - counts["done"] - counts["failed"])
            eta = remaining / rate
        self._progress(
            CampaignProgress(
                shard_id=shard_id,
                done=counts["done"],
                failed=counts["failed"],
                total=total,
                elapsed_seconds=elapsed,
                ligands_per_second=rate,
                eta_seconds=eta,
            )
        )
