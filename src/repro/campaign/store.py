"""SQLite result store: one database per screening campaign.

The store is the durable record of a campaign — metadata (receptor
fingerprint, scoring/metaheuristic/seed config and its hash, schema
version), one row per ligand (scores, timings, ``pending``/``running``/
``done``/``failed`` status, failure text), and one row per shard. Design
points:

* **WAL mode** so the single writer never blocks readers (``campaign
  status``/``top`` against a live run).
* **Idempotent upserts keyed on the ligand ordinal** — re-recording a
  result is harmless, which is what makes crash/resume replay safe.
* **Indexed top-K** via a partial index on ``(best_score)`` for ``done``
  rows: ranking a million-ligand campaign reads K index entries, never the
  full table.
* **Streaming export** to JSON or CSV, row by row.
"""

from __future__ import annotations

import csv
import hashlib
import json
import sqlite3
import time
from pathlib import Path
from typing import Iterator, TextIO

from repro.errors import CampaignError
from repro.vs.results import ScreeningEntry, ScreeningReport

__all__ = ["CampaignStore", "SCHEMA_VERSION", "export_report"]

#: Bounded retry on SQLite "database is locked": a campaign store is
#: single-writer by design, but `campaign status`/`top` readers, WAL
#: checkpoints, and (in cluster mode) coordinator handler threads can
#: briefly contend. 6 doubling sleeps from 10 ms cover ~0.6 s of contention
#: before surfacing a CampaignError.
_LOCK_ATTEMPTS = 6
_LOCK_BACKOFF_S = 0.01

#: Bump on any incompatible schema change; ``open`` refuses mismatches.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS ligands (
    ordinal           INTEGER PRIMARY KEY,
    title             TEXT NOT NULL,
    status            TEXT NOT NULL DEFAULT 'pending'
        CHECK (status IN ('pending', 'running', 'done', 'failed')),
    best_score        REAL,
    best_spot         INTEGER,
    evaluations       INTEGER,
    wall_seconds      REAL,
    simulated_seconds REAL,
    attempts          INTEGER NOT NULL DEFAULT 0,
    error             TEXT
);
CREATE INDEX IF NOT EXISTS ligands_score_idx
    ON ligands (best_score, ordinal) WHERE status = 'done';
CREATE TABLE IF NOT EXISTS shards (
    shard_id     INTEGER PRIMARY KEY,
    start        INTEGER NOT NULL,
    stop         INTEGER NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending'
        CHECK (status IN ('pending', 'running', 'done')),
    wall_seconds REAL
);
"""

_RESULT_COLUMNS = (
    "ordinal",
    "title",
    "status",
    "best_score",
    "best_spot",
    "evaluations",
    "wall_seconds",
    "simulated_seconds",
    "attempts",
    "error",
)


def export_report(store, destination: str | Path | TextIO) -> int:
    """Stream a store's completed ligands as ``ScreeningReport`` JSON.

    Produces output :meth:`repro.vs.results.ScreeningReport.from_json` reads
    back, without ever materialising the report: rows stream one at a time
    from :meth:`iter_results`, and the ``simulated_seconds`` total — only
    known once the stream ends — is written *after* the entries
    (``from_json`` is key-order agnostic). This is the export path a
    million-row campaign report relies on; ``to_report()`` remains for
    callers that want the in-memory object. Works on any store backend.
    Returns the number of entries written.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return export_report(store, handle)
    from repro.vs.results import _encode_float

    config = store.config
    title = str(config.get("receptor_title") or "receptor")
    destination.write(
        f'{{"receptor_title": {json.dumps(title)}, "entries": ['
    )
    n = 0
    simulated_total = 0.0
    for row in store.iter_results():
        if row["status"] != "done":
            continue
        simulated = row["simulated_seconds"]
        entry = {
            "ligand_title": str(row["title"]),
            "best_score": _encode_float(float(row["best_score"])),
            "best_spot": int(row["best_spot"]),
            "evaluations": int(row["evaluations"]),
            "simulated_seconds": _encode_float(
                float("nan") if simulated is None else float(simulated)
            ),
        }
        destination.write(("," if n else "") + "\n" + json.dumps(entry))
        if simulated is not None:
            simulated_total += float(simulated)
        n += 1
    destination.write(
        '\n], "simulated_seconds": '
        f"{json.dumps(_encode_float(simulated_total))}}}\n"
    )
    return n


class CampaignStore:
    """Durable per-campaign result database (see module docstring).

    Use :meth:`create` for a fresh campaign and :meth:`open` to attach to an
    existing one; the constructor is internal. The store is also a context
    manager (closes on exit).
    """

    def __init__(self, connection: sqlite3.Connection, path: str) -> None:
        self._conn = connection
        self.path = path

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, path: str | Path, config: dict, config_hash: str
    ) -> "CampaignStore":
        """Create a fresh campaign store; refuses to overwrite an existing one."""
        path = str(path)
        if path != ":memory:" and Path(path).exists() and Path(path).stat().st_size:
            raise CampaignError(
                f"campaign store already exists at {path}; "
                "use resume to continue it"
            )
        store = cls(cls._connect(path), path)
        store._conn.executescript(_SCHEMA)
        store._set_meta("schema_version", str(SCHEMA_VERSION))
        store._set_meta("config", json.dumps(config, sort_keys=True))
        store._set_meta("config_hash", config_hash)
        store._set_meta("completed", "0")
        return store

    @classmethod
    def open(cls, path: str | Path) -> "CampaignStore":
        """Attach to an existing campaign store, validating the schema."""
        path = str(path)
        if path != ":memory:" and not Path(path).exists():
            raise CampaignError(f"no campaign store at {path}")
        store = cls(cls._connect(path), path)
        version = store._get_meta("schema_version")
        if version is None:
            store.close()
            raise CampaignError(f"{path} is not a campaign store (no metadata)")
        if int(version) != SCHEMA_VERSION:
            store.close()
            raise CampaignError(
                f"campaign store schema v{version} != supported v{SCHEMA_VERSION}"
            )
        return store

    @staticmethod
    def _connect(path: str) -> sqlite3.Connection:
        # Autocommit: every statement is its own durable transaction, so a
        # SIGKILL loses at most the in-flight ligand. check_same_thread is
        # off because the cluster coordinator commits results from its
        # per-node handler threads (serialised under the coordinator lock).
        try:
            conn = sqlite3.connect(path, isolation_level=None, check_same_thread=False)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=2000")
        except sqlite3.DatabaseError as exc:
            raise CampaignError(f"{path} is not a campaign store: {exc}") from None
        return conn

    def _execute(self, sql: str, params=(), many: bool = False):
        """Run one write statement with bounded backoff on lock contention."""
        delay = _LOCK_BACKOFF_S
        for attempt in range(1, _LOCK_ATTEMPTS + 1):
            try:
                if many:
                    return self._conn.executemany(sql, params)
                return self._conn.execute(sql, params)
            except sqlite3.OperationalError as exc:
                text = str(exc).lower()
                if "locked" not in text and "busy" not in text:
                    raise
                if attempt >= _LOCK_ATTEMPTS:
                    raise CampaignError(
                        f"campaign store at {self.path} stayed locked after "
                        f"{_LOCK_ATTEMPTS} attempts: {exc}"
                    ) from exc
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Close the database connection."""
        self._conn.close()

    def wait_for_compaction(self) -> None:
        """No-op: SQLite has no tiered compaction (columnar-store parity)."""

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def _set_meta(self, key: str, value: str) -> None:
        self._execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _get_meta(self, key: str) -> str | None:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise CampaignError(f"{self.path} is not a campaign store: {exc}") from None
        return None if row is None else str(row["value"])

    @property
    def config(self) -> dict:
        """The campaign configuration recorded at creation."""
        text = self._get_meta("config")
        if text is None:
            raise CampaignError("campaign store has no recorded config")
        return json.loads(text)

    @property
    def config_hash(self) -> str:
        """Hash of the result-affecting configuration."""
        value = self._get_meta("config_hash")
        if value is None:
            raise CampaignError("campaign store has no recorded config hash")
        return value

    def is_complete(self) -> bool:
        """True once every shard has finished (set by the runner)."""
        return self._get_meta("completed") == "1"

    def mark_complete(self, n_ligands: int) -> None:
        """Record that the campaign streamed and processed the whole library."""
        self._set_meta("n_ligands", str(n_ligands))
        self._set_meta("completed", "1")

    @property
    def n_ligands(self) -> int | None:
        """Total library size, known once the campaign completed."""
        value = self._get_meta("n_ligands")
        return None if value is None else int(value)

    # ------------------------------------------------------------------
    # shards
    # ------------------------------------------------------------------
    def start_shard(self, shard_id: int, start: int, stop: int) -> None:
        """Mark a shard running (idempotent across resume replays)."""
        self._execute(
            "INSERT INTO shards (shard_id, start, stop, status) "
            "VALUES (?, ?, ?, 'running') "
            "ON CONFLICT(shard_id) DO UPDATE SET status = 'running'",
            (shard_id, start, stop),
        )

    def finish_shard(self, shard_id: int, wall_seconds: float) -> None:
        """Mark a shard done."""
        self._execute(
            "UPDATE shards SET status = 'done', wall_seconds = ? WHERE shard_id = ?",
            (wall_seconds, shard_id),
        )

    def finished_shards(self) -> set[int]:
        """IDs of shards whose every ligand is recorded."""
        rows = self._conn.execute(
            "SELECT shard_id FROM shards WHERE status = 'done'"
        ).fetchall()
        return {int(r["shard_id"]) for r in rows}

    # ------------------------------------------------------------------
    # ligands
    # ------------------------------------------------------------------
    def register_ligands(self, items: list[tuple[int, str]]) -> None:
        """Insert pending rows for (ordinal, title) pairs; existing rows win."""
        self._execute(
            "INSERT OR IGNORE INTO ligands (ordinal, title) VALUES (?, ?)",
            items,
            many=True,
        )

    def mark_running(self, ordinal: int) -> None:
        """Flag one ligand as in flight."""
        self._execute(
            "UPDATE ligands SET status = 'running' WHERE ordinal = ?", (ordinal,)
        )

    def record_result(
        self,
        ordinal: int,
        title: str,
        best_score: float,
        best_spot: int,
        evaluations: int,
        wall_seconds: float,
        simulated_seconds: float,
        attempts: int = 1,
    ) -> None:
        """Upsert one completed ligand (idempotent on ordinal)."""
        self._execute(
            "INSERT INTO ligands (ordinal, title, status, best_score, best_spot,"
            " evaluations, wall_seconds, simulated_seconds, attempts, error) "
            "VALUES (?, ?, 'done', ?, ?, ?, ?, ?, ?, NULL) "
            "ON CONFLICT(ordinal) DO UPDATE SET "
            " title = excluded.title, status = 'done',"
            " best_score = excluded.best_score, best_spot = excluded.best_spot,"
            " evaluations = excluded.evaluations,"
            " wall_seconds = excluded.wall_seconds,"
            " simulated_seconds = excluded.simulated_seconds,"
            " attempts = excluded.attempts, error = NULL",
            (
                ordinal,
                title,
                float(best_score),
                int(best_spot),
                int(evaluations),
                float(wall_seconds),
                float(simulated_seconds),
                int(attempts),
            ),
        )

    def record_failure(
        self, ordinal: int, title: str, error: str, attempts: int
    ) -> None:
        """Record a ligand that exhausted its attempts; the campaign moves on."""
        self._execute(
            "INSERT INTO ligands (ordinal, title, status, attempts, error) "
            "VALUES (?, ?, 'failed', ?, ?) "
            "ON CONFLICT(ordinal) DO UPDATE SET "
            " title = excluded.title, status = 'failed',"
            " attempts = excluded.attempts, error = excluded.error",
            (ordinal, title, int(attempts), error),
        )

    def done_ordinals(self, start: int, stop: int) -> set[int]:
        """Ordinals already completed in ``[start, stop)`` — never redone."""
        rows = self._conn.execute(
            "SELECT ordinal FROM ligands "
            "WHERE status = 'done' AND ordinal >= ? AND ordinal < ?",
            (start, stop),
        ).fetchall()
        return {int(r["ordinal"]) for r in rows}

    def counts(self) -> dict[str, int]:
        """Ligand counts per status (absent statuses are 0)."""
        rows = self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM ligands GROUP BY status"
        ).fetchall()
        counts = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        for row in rows:
            counts[str(row["status"])] = int(row["n"])
        return counts

    # ------------------------------------------------------------------
    # queries and export
    # ------------------------------------------------------------------
    def top(self, k: int = 10) -> list[sqlite3.Row]:
        """The ``k`` best completed ligands, ascending score.

        Served by the partial ``(best_score, ordinal)`` index — K index
        probes, independent of campaign size.
        """
        if k < 1:
            raise CampaignError(f"k must be >= 1, got {k}")
        return self._conn.execute(
            "SELECT ordinal, title, best_score, best_spot, evaluations,"
            " wall_seconds, simulated_seconds FROM ligands "
            "WHERE status = 'done' AND best_score IS NOT NULL "
            "ORDER BY best_score ASC, ordinal ASC LIMIT ?",
            (k,),
        ).fetchall()

    def science_rows(self) -> Iterator[tuple]:
        """Stream the result-affecting columns only, in ordinal order.

        Excludes wall-clock timings and attempt counts — everything that
        legitimately varies between two executions of the same campaign.
        What remains (ordinal, title, status, score, spot, evaluations) is
        bitwise identical across shard sizes, worker counts, node counts,
        and crash/resume boundaries.
        """
        cursor = self._conn.execute(
            "SELECT ordinal, title, status, best_score, best_spot, evaluations "
            "FROM ligands ORDER BY ordinal"
        )
        for row in cursor:
            yield tuple(row)

    def science_digest(self) -> str:
        """SHA-256 over :meth:`science_rows` — the store-parity fingerprint.

        Two stores of the same campaign config compare equal here iff their
        science is identical; parity tests and the multinode benchmark use
        this instead of comparing whole database files (which differ in
        timings and page layout).
        """
        digest = hashlib.sha256()
        for row in self.science_rows():
            digest.update(json.dumps(row, sort_keys=True).encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def iter_results(self) -> Iterator[dict]:
        """Stream every ligand row as a dict, in ordinal order."""
        cursor = self._conn.execute(
            f"SELECT {', '.join(_RESULT_COLUMNS)} FROM ligands ORDER BY ordinal"
        )
        for row in cursor:
            yield {column: row[column] for column in _RESULT_COLUMNS}

    def export_json(self, destination: str | Path | TextIO) -> int:
        """Write the full campaign dump as JSON; returns rows written.

        Rows stream one at a time — the full table is never in memory.
        """
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.export_json(handle)
        destination.write('{"campaign": ')
        destination.write(json.dumps(self.config, sort_keys=True))
        destination.write(f', "config_hash": {json.dumps(self.config_hash)}')
        destination.write(f', "counts": {json.dumps(self.counts())}')
        destination.write(', "results": [')
        n = 0
        for row in self.iter_results():
            destination.write(("," if n else "") + "\n" + json.dumps(row))
            n += 1
        destination.write("\n]}\n")
        return n

    def export_csv(self, destination: str | Path | TextIO) -> int:
        """Write per-ligand rows as CSV; returns rows written."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8", newline="") as handle:
                return self.export_csv(handle)
        writer = csv.writer(destination)
        writer.writerow(_RESULT_COLUMNS)
        n = 0
        for row in self.iter_results():
            writer.writerow([row[column] for column in _RESULT_COLUMNS])
            n += 1
        return n

    def to_report(self) -> ScreeningReport:
        """Materialise completed ligands as a :class:`ScreeningReport`.

        Failed/pending ligands are omitted (they have no score); entries
        keep ordinal (submission) order, matching ``screen()``.
        """
        config = self.config
        report = ScreeningReport(
            receptor_title=str(config.get("receptor_title") or "receptor")
        )
        cursor = self._conn.execute(
            "SELECT title, best_score, best_spot, evaluations, simulated_seconds "
            "FROM ligands WHERE status = 'done' ORDER BY ordinal"
        )
        for row in cursor:
            simulated = row["simulated_seconds"]
            entry = ScreeningEntry(
                ligand_title=str(row["title"]),
                best_score=float(row["best_score"]),
                best_spot=int(row["best_spot"]),
                evaluations=int(row["evaluations"]),
                simulated_seconds=(
                    float("nan") if simulated is None else float(simulated)
                ),
            )
            report.add(entry)
            if simulated is not None:
                report.simulated_seconds += float(simulated)
        return report
