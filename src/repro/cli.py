"""Command-line interface (``repro-vs``).

Subcommands:

* ``dock`` — dock a synthetic (or PDB-file) complex and print the pose
  ranking per spot.
* ``screen`` — screen a synthetic ligand library.
* ``tables`` — regenerate the paper's Tables 6–9 (simulated seconds).
* ``devices`` — list the modelled hardware (Tables 1–3).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _add_host_runtime_args(sub: argparse.ArgumentParser) -> None:
    """Flags for the real process-parallel host runtime."""
    sub.add_argument(
        "--host-workers",
        type=int,
        default=0,
        metavar="N",
        help="score on N real worker processes (0 = serial; results are "
        "bitwise identical either way)",
    )
    sub.add_argument(
        "--parallel-mode",
        choices=("static", "dynamic"),
        default="static",
        help="static = warm-up-weighted shares (Eq. 1), "
        "dynamic = work-stealing spot queue",
    )
    sub.add_argument(
        "--prune-spots",
        action="store_true",
        help="score each spot against its active-site receptor subset "
        "(exact for the default cutoff scoring)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-vs",
        description="Metaheuristic virtual screening on modelled heterogeneous nodes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dock = sub.add_parser("dock", help="dock one ligand against a receptor surface")
    dock.add_argument("--receptor-pdb", help="receptor PDB file (default: synthetic)")
    dock.add_argument("--ligand-pdb", help="ligand PDB file (default: synthetic)")
    dock.add_argument("--receptor-atoms", type=int, default=1000)
    dock.add_argument("--ligand-atoms", type=int, default=32)
    dock.add_argument("--spots", type=int, default=16)
    dock.add_argument("--metaheuristic", default="M2", help="M1-M4 preset name")
    dock.add_argument("--scale", type=float, default=0.25, help="workload scale")
    dock.add_argument("--seed", type=int, default=0)
    dock.add_argument("--node", choices=("jupiter", "hertz"), default="hertz")
    dock.add_argument("--out-pdb", help="write the best docked complex here")
    dock.add_argument(
        "--flexible",
        action="store_true",
        help="search ligand torsions too (flexible-ligand extension)",
    )
    dock.add_argument("--max-torsions", type=int, default=6)
    _add_host_runtime_args(dock)

    scr = sub.add_parser("screen", help="screen a synthetic ligand library")
    scr.add_argument("--receptor-atoms", type=int, default=1000)
    scr.add_argument("--ligands", type=int, default=8)
    scr.add_argument("--spots", type=int, default=8)
    scr.add_argument("--metaheuristic", default="M2")
    scr.add_argument("--scale", type=float, default=0.1)
    scr.add_argument("--seed", type=int, default=0)
    scr.add_argument("--node", choices=("jupiter", "hertz"), default="hertz")
    _add_host_runtime_args(scr)

    tab = sub.add_parser("tables", help="regenerate the paper's Tables 6-9")
    tab.add_argument(
        "--table",
        choices=("6", "7", "8", "9", "all"),
        default="all",
        help="which paper table to regenerate",
    )
    tab.add_argument("--scale", type=float, default=1.0)

    sub.add_parser("devices", help="list the modelled hardware")

    trc = sub.add_parser(
        "trace", help="write a full-scale analytic launch trace to a file"
    )
    trc.add_argument("--preset", default="M2", help="M1-M4")
    trc.add_argument("--dataset", choices=("2BSM", "2BXG"), default="2BSM")
    trc.add_argument("--scale", type=float, default=1.0)
    trc.add_argument("--out", required=True, help="output JSON path")

    rep = sub.add_parser("replay", help="time a saved launch trace on a node")
    rep.add_argument("--trace", required=True, help="trace JSON path")
    rep.add_argument("--node", choices=("jupiter", "hertz"), default="hertz")
    rep.add_argument(
        "--mode",
        choices=("openmp", "gpu-homogeneous", "gpu-heterogeneous", "gpu-dynamic"),
        default="gpu-heterogeneous",
    )
    rep.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_dock(args: argparse.Namespace) -> int:
    from repro.hardware.node import hertz, jupiter
    from repro.molecules.pdb import read_pdb, write_pdb
    from repro.molecules.synthetic import generate_ligand, generate_receptor
    from repro.vs.docking import dock

    receptor = (
        read_pdb(args.receptor_pdb, kind="receptor")
        if args.receptor_pdb
        else generate_receptor(args.receptor_atoms, seed=args.seed)
    )
    ligand = (
        read_pdb(args.ligand_pdb, kind="ligand")
        if args.ligand_pdb
        else generate_ligand(args.ligand_atoms, seed=args.seed + 1)
    )
    node = jupiter() if args.node == "jupiter" else hertz()
    if args.flexible:
        from repro.vs.flexible import dock_flexible

        flex_result = dock_flexible(
            receptor,
            ligand,
            n_spots=args.spots,
            max_torsions=args.max_torsions,
            seed=args.seed,
        )
        print(
            f"flexible best score {flex_result.best_score:.3f} kcal/mol at "
            f"spot {flex_result.best.spot_index} "
            f"({flex_result.n_torsions} torsions, "
            f"{flex_result.evaluations} evaluations)"
        )
        for pose in sorted(flex_result.per_spot, key=lambda p: p.score):
            print(f"  spot {pose.spot_index:3d}: {pose.score:12.3f}")
        return 0
    result = dock(
        receptor,
        ligand,
        n_spots=args.spots,
        metaheuristic=args.metaheuristic,
        seed=args.seed,
        workload_scale=args.scale,
        node=node,
        host_workers=args.host_workers,
        parallel_mode=args.parallel_mode,
        prune_spots=args.prune_spots,
    )
    print(
        f"best score {result.best_score:.3f} kcal/mol at spot "
        f"{result.best.spot_index} ({result.evaluations} evaluations, "
        f"simulated {result.simulated_seconds:.3f}s on {node.name})"
    )
    print("per-spot best scores:")
    for conf in sorted(result.per_spot, key=lambda c: c.score):
        print(f"  spot {conf.spot_index:3d}: {conf.score:12.3f}")
    if args.out_pdb:
        write_pdb(result.complex_molecule(), args.out_pdb)
        print(f"wrote docked complex to {args.out_pdb}")
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    from repro.hardware.node import hertz, jupiter
    from repro.molecules.synthetic import generate_receptor
    from repro.vs.screening import screen, synthetic_library

    receptor = generate_receptor(args.receptor_atoms, seed=args.seed)
    ligands = synthetic_library(args.ligands, seed=args.seed + 10)
    node = jupiter() if args.node == "jupiter" else hertz()
    report = screen(
        receptor,
        ligands,
        n_spots=args.spots,
        metaheuristic=args.metaheuristic,
        seed=args.seed,
        workload_scale=args.scale,
        node=node,
        host_workers=args.host_workers,
        parallel_mode=args.parallel_mode,
        prune_spots=args.prune_spots,
    )
    print(report.to_text())
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.runner import hertz_table, jupiter_table
    from repro.experiments.tables import format_hertz_table, format_jupiter_table

    plans = {
        "6": lambda: format_jupiter_table(jupiter_table("2BSM", args.scale)),
        "7": lambda: format_jupiter_table(jupiter_table("2BXG", args.scale)),
        "8": lambda: format_hertz_table(hertz_table("2BSM", args.scale)),
        "9": lambda: format_hertz_table(hertz_table("2BXG", args.scale)),
    }
    wanted = plans.keys() if args.table == "all" else [args.table]
    for key in wanted:
        print(f"=== Paper Table {key} ===")
        print(plans[key]())
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.engine.traceio import dump_trace
    from repro.experiments.datasets import get_dataset
    from repro.experiments.trace import analytic_trace

    dataset = get_dataset(args.dataset)
    trace = analytic_trace(
        args.preset,
        dataset.n_spots,
        dataset.receptor_atoms,
        dataset.ligand_atoms,
        args.scale,
    )
    dump_trace(
        trace,
        args.out,
        metadata={
            "preset": args.preset,
            "dataset": args.dataset,
            "workload_scale": args.scale,
        },
    )
    poses = sum(r.n_conformations for r in trace)
    print(f"wrote {len(trace)} launches ({poses:,} conformations) to {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.engine.executor import MultiGpuExecutor
    from repro.engine.traceio import load_trace
    from repro.hardware.node import hertz, jupiter

    trace, metadata = load_trace(args.trace)
    node = jupiter() if args.node == "jupiter" else hertz()
    executor = MultiGpuExecutor(node, seed=args.seed)
    timing, scheduler = executor.replay(trace, args.mode)
    if metadata:
        print(f"trace metadata: {metadata}")
    print(
        f"{args.mode} on {node.name} ({scheduler}): "
        f"{timing.total_s:.3f}s simulated "
        f"(scoring {timing.scoring_s:.3f}s, host {timing.host_s:.3f}s, "
        f"warm-up {timing.warmup_s:.3f}s, balance {timing.balance:.3f})"
    )
    return 0


def _cmd_devices(_args: argparse.Namespace) -> int:
    from repro.hardware.registry import CPUS, GPUS
    from repro.hardware.specs import CUDA_GENERATIONS

    print("CUDA generations (paper Table 1):")
    for g in CUDA_GENERATIONS:
        print(
            f"  {g.name:8s} {g.year}  {g.max_cores:5d} cores  "
            f"{g.peak_sp_gflops:5d} GFLOPS  perf/W {g.perf_per_watt}"
        )
    print("\nGPUs (Tables 2-3 + extensions):")
    for gpu in GPUS.values():
        print(
            f"  {gpu.name:18s} {gpu.architecture.value:8s} "
            f"{gpu.total_cores:5d} cores @ {gpu.clock_mhz:.0f} MHz  "
            f"CCC {gpu.ccc}  sustained {gpu.pairs_per_sec / 1e9:.1f} Gpairs/s"
        )
    print("\nCPUs:")
    for cpu in CPUS.values():
        print(f"  {cpu.name:18s} {cpu.cores} cores @ {cpu.clock_mhz:.0f} MHz")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)
    commands = {
        "dock": _cmd_dock,
        "screen": _cmd_screen,
        "tables": _cmd_tables,
        "devices": _cmd_devices,
        "trace": _cmd_trace,
        "replay": _cmd_replay,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
