"""Command-line interface (``repro-vs``).

Subcommands:

* ``dock`` — dock a synthetic (or PDB-file) complex and print the pose
  ranking per spot.
* ``screen`` — screen a synthetic ligand library.
* ``campaign`` — durable, resumable screening campaigns
  (``run``/``resume``/``status``/``top``/``export``), with live
  observability: ``--progress``, ``--live-metrics``, ``--serve-metrics``,
  and distributed execution: ``--nodes N``.
* ``cluster`` — the same distributed fleet over real sockets:
  ``coordinator`` serves a campaign, ``worker`` dials in and docks leases.
* ``metrics`` — inspect/convert a telemetry snapshot (``show``: text
  summary, JSON, Prometheus textfile, or Chrome/Perfetto trace), or put it
  behind an HTTP scrape endpoint (``serve``).
* ``calibrate`` — sweep the scoring kernel variants over a grid of complex
  sizes and write the calibration table that ``--autotune`` consumes.
* ``bench`` — benchmark artifact tooling (``compare``: regression-gate two
  ``BENCH_*.json`` artifact sets).
* ``tables`` — regenerate the paper's Tables 6–9 (simulated seconds).
* ``devices`` — list the modelled hardware (Tables 1–3).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import math
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]


def _nonnegative_int(text: str) -> int:
    """argparse type: an int >= 0, rejected with a clear message otherwise."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    """argparse type: an int >= 1, rejected with a clear message otherwise."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_host_runtime_args(
    sub: argparse.ArgumentParser, pool_flag: bool = False
) -> None:
    """Flags for the real process-parallel host runtime.

    ``pool_flag`` adds ``--fresh-pool`` for multi-ligand commands, where the
    worker pool persists across ligands by default.
    """
    sub.add_argument(
        "--host-workers",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="score on N real worker processes (0 = serial; results are "
        "bitwise identical either way)",
    )
    sub.add_argument(
        "--parallel-mode",
        choices=("static", "dynamic"),
        default="static",
        help="static = warm-up-weighted shares (Eq. 1), "
        "dynamic = work-stealing spot queue",
    )
    sub.add_argument(
        "--prune-spots",
        action="store_true",
        help="score each spot against its active-site receptor subset "
        "(exact for the default cutoff scoring)",
    )
    sub.add_argument(
        "--pipeline-depth",
        type=_positive_int,
        default=2,
        metavar="D",
        help="co-schedule up to D ligands through the persistent pool so "
        "one ligand's barrier tails overlap another's scoring (default 2; "
        "1 = strictly serial ligand loop; only affects multi-ligand runs; "
        "results are bitwise identical at every depth)",
    )
    if pool_flag:
        sub.add_argument(
            "--fresh-pool",
            action="store_true",
            help="spawn a fresh worker pool per ligand instead of keeping "
            "one persistent pool (receptor staging + Eq. 1 warm-up) for the "
            "whole run; scores are bitwise identical either way",
        )


def _add_autotune_args(sub: argparse.ArgumentParser, refine_flag: bool = False) -> None:
    """Input-aware kernel-selection flags (``repro-vs calibrate`` output).

    ``refine_flag`` adds ``--refine-calibration`` for campaign runs, where
    online throughput observations can be persisted for the next campaign.
    """
    sub.add_argument(
        "--autotune",
        action="store_true",
        help="pick the scoring kernel variant and chunk size per complex "
        "size from a calibration table (requires --calibration-file); "
        "scores stay bitwise identical to the serial reference path",
    )
    sub.add_argument(
        "--calibration-file",
        metavar="PATH",
        help="calibration table written by `repro-vs calibrate`",
    )
    if refine_flag:
        sub.add_argument(
            "--refine-calibration",
            action="store_true",
            help="on clean completion, write throughput-refined cell "
            "expectations back to --calibration-file for the next campaign "
            "(selections never change mid-campaign)",
        )


def _positive_float(text: str) -> float:
    """argparse type: a float > 0, rejected with a clear message otherwise."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    """argparse type: a float >= 0, rejected with a clear message otherwise."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _port(text: str) -> int:
    """argparse type: a TCP port (0 = pick an ephemeral one)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(f"port must be in [0, 65535], got {value}")
    return value


def _add_cluster_args(sub: argparse.ArgumentParser, nodes_flag: bool = True) -> None:
    """Distributed-fleet flags (``repro.cluster``).

    ``nodes_flag`` adds ``--nodes`` for campaign commands; the dedicated
    ``cluster coordinator`` subcommand sizes its fleet with
    ``--expect-nodes`` instead.
    """
    if nodes_flag:
        sub.add_argument(
            "--nodes",
            type=_nonnegative_int,
            default=0,
            metavar="N",
            help="distribute the campaign over N worker-node processes "
            "(coordinator + Eq. 1 node shares + inter-node stealing); "
            "0 = classic in-process run, results bitwise identical",
        )
    sub.add_argument(
        "--heartbeat-timeout",
        type=_positive_float,
        default=5.0,
        metavar="S",
        help="seconds of heartbeat silence before a worker node is declared "
        "dead and its leases reassigned (default 5)",
    )
    sub.add_argument(
        "--lease-window",
        type=_positive_int,
        default=2,
        metavar="N",
        help="shard leases a worker node may hold at once (default 2)",
    )


def _cluster_config(args: argparse.Namespace, host: str | None = None, port: int = 0):
    """Build a ClusterConfig from CLI flags (None when not clustering)."""
    from repro.cluster import ClusterConfig

    kwargs = {
        "heartbeat_timeout_s": args.heartbeat_timeout,
        "lease_window": args.lease_window,
    }
    if host is not None:
        kwargs["host"] = host
        kwargs["port"] = port
    return ClusterConfig(**kwargs)


def _add_metrics_args(sub: argparse.ArgumentParser) -> None:
    """Telemetry flags, shared by every run-something subcommand."""
    sub.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's telemetry snapshot (counters, histograms, "
        "spans) to this JSON file; inspect it with `repro-vs metrics show`",
    )
    sub.add_argument(
        "--live-metrics",
        metavar="PATH",
        help="append a live JSONL time series (rates, worker shares, queue "
        "waits) to this file while the run is in progress",
    )
    sub.add_argument(
        "--sample-interval",
        type=_positive_float,
        default=1.0,
        metavar="S",
        help="seconds between live samples (with --live-metrics; default 1)",
    )


def _add_campaign_store_args(sub: argparse.ArgumentParser) -> None:
    """Store-backend and journal-batching flags for campaign-starting commands."""
    sub.add_argument(
        "--store-backend",
        choices=("sqlite", "columnar"),
        default="sqlite",
        help="result store layout: sqlite = one database file, columnar = "
        "append-only sharded directory built for million-ligand libraries",
    )
    sub.add_argument(
        "--journal-batch",
        type=_positive_int,
        default=1,
        metavar="N",
        help="group-commit the shard journal every N records instead of "
        "fsyncing each one (default 1 = every record)",
    )
    sub.add_argument(
        "--journal-batch-seconds",
        type=_nonnegative_float,
        default=0.0,
        metavar="S",
        help="flush a partially filled journal batch after S seconds "
        "(default 0 = only on --journal-batch boundaries)",
    )


def _add_campaign_library_args(sub: argparse.ArgumentParser) -> None:
    """Streaming line-delimited library flags shared by run/coordinator."""
    sub.add_argument(
        "--library-smiles",
        metavar="PATH",
        help="line-delimited SMILES file streamed with bounded memory "
        "(overrides --library-dir and the synthetic library)",
    )
    sub.add_argument(
        "--library-csv",
        metavar="PATH",
        help="CSV file with smiles/title columns, streamed with bounded "
        "memory (overrides --library-dir and the synthetic library)",
    )


@contextlib.contextmanager
def _maybe_sampler(args: argparse.Namespace):
    """Run a live sampler around a command when ``--live-metrics`` was given."""
    path = getattr(args, "live_metrics", None)
    if not path:
        yield None
        return
    from repro import observability as obs

    sampler = obs.TelemetrySampler(path, interval_s=args.sample_interval)
    sampler.start()
    try:
        yield sampler
    finally:
        sampler.stop()
        print(f"wrote live metrics series to {path}")


def _maybe_write_metrics(args: argparse.Namespace, default: str | None = None) -> None:
    """Write the global telemetry snapshot if the command asked for one."""
    path = getattr(args, "metrics_out", None) or default
    if path is None:
        return
    from repro import observability as obs

    obs.write_snapshot(obs.snapshot(), path)
    print(f"wrote telemetry snapshot to {path}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-vs",
        description="Metaheuristic virtual screening on modelled heterogeneous nodes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dock = sub.add_parser("dock", help="dock one ligand against a receptor surface")
    dock.add_argument("--receptor-pdb", help="receptor PDB file (default: synthetic)")
    dock.add_argument("--ligand-pdb", help="ligand PDB file (default: synthetic)")
    dock.add_argument("--receptor-atoms", type=int, default=1000)
    dock.add_argument("--ligand-atoms", type=int, default=32)
    dock.add_argument("--spots", type=int, default=16)
    dock.add_argument("--metaheuristic", default="M2", help="M1-M4 preset name")
    dock.add_argument("--scale", type=float, default=0.25, help="workload scale")
    dock.add_argument("--seed", type=int, default=0)
    dock.add_argument("--node", choices=("jupiter", "hertz"), default="hertz")
    dock.add_argument("--out-pdb", help="write the best docked complex here")
    dock.add_argument(
        "--flexible",
        action="store_true",
        help="search ligand torsions too (flexible-ligand extension)",
    )
    dock.add_argument("--max-torsions", type=int, default=6)
    _add_host_runtime_args(dock)
    _add_autotune_args(dock)
    _add_metrics_args(dock)

    scr = sub.add_parser("screen", help="screen a synthetic ligand library")
    scr.add_argument("--receptor-atoms", type=int, default=1000)
    scr.add_argument("--ligands", type=int, default=8)
    scr.add_argument("--spots", type=int, default=8)
    scr.add_argument("--metaheuristic", default="M2")
    scr.add_argument("--scale", type=float, default=0.1)
    scr.add_argument("--seed", type=int, default=0)
    scr.add_argument("--node", choices=("jupiter", "hertz"), default="hertz")
    _add_host_runtime_args(scr, pool_flag=True)
    _add_autotune_args(scr)
    _add_metrics_args(scr)

    camp = sub.add_parser(
        "campaign", help="durable, resumable screening campaigns"
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    crun = csub.add_parser("run", help="start a new campaign")
    crun.add_argument(
        "--store",
        required=True,
        help="campaign store path (SQLite file, or a directory with "
        "--store-backend columnar)",
    )
    crun.add_argument("--receptor-pdb", help="receptor PDB file (default: synthetic)")
    crun.add_argument("--receptor-atoms", type=_positive_int, default=1000)
    crun.add_argument(
        "--library-dir",
        help="directory of ligand PDB files (default: synthetic library)",
    )
    _add_campaign_library_args(crun)
    crun.add_argument(
        "--ligands", type=_positive_int, default=16, help="synthetic library size"
    )
    crun.add_argument("--atoms-min", type=_positive_int, default=20)
    crun.add_argument("--atoms-max", type=_positive_int, default=50)
    crun.add_argument("--spots", type=_positive_int, default=8)
    crun.add_argument("--metaheuristic", default="M2")
    crun.add_argument("--scale", type=float, default=0.1)
    crun.add_argument("--seed", type=int, default=0)
    crun.add_argument(
        "--shard-size",
        type=_positive_int,
        default=32,
        metavar="N",
        help="ligands per durable shard (checkpoint granularity)",
    )
    crun.add_argument("--node", choices=("jupiter", "hertz", "none"), default="hertz")
    crun.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=3,
        help="docking attempts per ligand before it is recorded as failed",
    )
    _add_campaign_store_args(crun)
    _add_host_runtime_args(crun, pool_flag=True)
    _add_autotune_args(crun, refine_flag=True)
    _add_cluster_args(crun)
    _add_metrics_args(crun)
    _add_campaign_observability_args(crun)

    cres = csub.add_parser(
        "resume", help="continue an interrupted campaign from its store"
    )
    cres.add_argument("--store", required=True)
    cres.add_argument("--max-attempts", type=_positive_int, default=3)
    # Execution knobs may change between run and resume — scores cannot.
    cres.add_argument("--host-workers", type=_nonnegative_int, default=0, metavar="N")
    cres.add_argument("--parallel-mode", choices=("static", "dynamic"), default="static")
    cres.add_argument(
        "--pipeline-depth",
        type=_positive_int,
        default=2,
        metavar="D",
        help="co-schedule up to D ligands through the persistent pool for "
        "the rest of the campaign (default 2; 1 = serial ligand loop)",
    )
    cres.add_argument(
        "--fresh-pool",
        action="store_true",
        help="spawn a fresh worker pool per ligand instead of one "
        "persistent pool for the rest of the campaign",
    )
    cres.add_argument(
        "--journal-batch",
        type=_positive_int,
        default=1,
        metavar="N",
        help="group-commit the shard journal every N records (default 1)",
    )
    cres.add_argument(
        "--journal-batch-seconds",
        type=_nonnegative_float,
        default=0.0,
        metavar="S",
        help="flush a partially filled journal batch after S seconds",
    )
    # Autotuned campaigns are score-affecting config: resuming one needs
    # the same calibration file so the config hash matches the store.
    _add_autotune_args(cres, refine_flag=True)
    _add_cluster_args(cres)
    _add_metrics_args(cres)
    _add_campaign_observability_args(cres)

    cstat = csub.add_parser("status", help="summarise a campaign store")
    cstat.add_argument("--store", required=True)

    ctop = csub.add_parser("top", help="best ligands so far (indexed query)")
    ctop.add_argument("--store", required=True)
    ctop.add_argument("-k", "--top", type=_positive_int, default=10, dest="k")

    cexp = csub.add_parser("export", help="dump campaign results to a file")
    cexp.add_argument("--store", required=True)
    cexp.add_argument("--out", required=True, help="output path")
    cexp.add_argument(
        "--format",
        choices=("json", "csv", "report"),
        default="json",
        help="json = full streaming dump, csv = per-ligand rows, "
        "report = ScreeningReport.to_json() of completed ligands",
    )

    clu = sub.add_parser(
        "cluster",
        help="distributed campaign fleet over real sockets "
        "(coordinator + worker nodes)",
    )
    clsub = clu.add_subparsers(dest="cluster_command", required=True)

    ccoord = clsub.add_parser(
        "coordinator",
        help="serve a campaign to remote worker nodes (spawns none locally); "
        "start workers with `repro-vs cluster worker --connect HOST:PORT`",
    )
    ccoord.add_argument(
        "--listen",
        default="127.0.0.1:7641",
        metavar="HOST:PORT",
        help="address to accept worker connections on (default 127.0.0.1:7641)",
    )
    ccoord.add_argument(
        "--expect-nodes",
        type=_positive_int,
        required=True,
        metavar="N",
        help="worker nodes that must dial in before shards are partitioned",
    )
    ccoord.add_argument(
        "--store",
        required=True,
        help="campaign store path (SQLite file, or a directory with "
        "--store-backend columnar)",
    )
    ccoord.add_argument("--receptor-pdb", help="receptor PDB file (default: synthetic)")
    ccoord.add_argument("--receptor-atoms", type=_positive_int, default=1000)
    ccoord.add_argument(
        "--library-dir",
        help="directory of ligand PDB files (default: synthetic library)",
    )
    _add_campaign_library_args(ccoord)
    ccoord.add_argument(
        "--ligands", type=_positive_int, default=16, help="synthetic library size"
    )
    ccoord.add_argument("--atoms-min", type=_positive_int, default=20)
    ccoord.add_argument("--atoms-max", type=_positive_int, default=50)
    ccoord.add_argument("--spots", type=_positive_int, default=8)
    ccoord.add_argument("--metaheuristic", default="M2")
    ccoord.add_argument("--scale", type=float, default=0.1)
    ccoord.add_argument("--seed", type=int, default=0)
    ccoord.add_argument(
        "--shard-size", type=_positive_int, default=32, metavar="N",
        help="ligands per durable shard (checkpoint granularity)",
    )
    ccoord.add_argument(
        "--node", choices=("jupiter", "hertz", "none"), default="hertz"
    )
    ccoord.add_argument("--max-attempts", type=_positive_int, default=3)
    ccoord.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted campaign from its store (library/"
        "receptor flags are ignored; the store's descriptors win)",
    )
    _add_campaign_store_args(ccoord)
    _add_host_runtime_args(ccoord, pool_flag=True)
    _add_autotune_args(ccoord)
    _add_cluster_args(ccoord, nodes_flag=False)
    _add_metrics_args(ccoord)
    _add_campaign_observability_args(ccoord)

    cwork = clsub.add_parser(
        "worker",
        help="run one worker node: dial a coordinator, dock leased ligands "
        "until drained or told to shut down",
    )
    cwork.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to dial",
    )
    cwork.add_argument(
        "--connect-attempts",
        type=_positive_int,
        default=10,
        help="dial retries before giving up (exponential backoff; default 10)",
    )
    cwork.add_argument(
        "--connect-backoff",
        type=_positive_float,
        default=0.1,
        metavar="S",
        help="initial retry backoff in seconds (default 0.1)",
    )

    cal = sub.add_parser(
        "calibrate",
        help="measure kernel-variant throughput over a grid of complex "
        "sizes and write the table that --autotune consumes",
    )
    cal.add_argument("--out", required=True, help="calibration table JSON path")
    cal.add_argument(
        "--receptor-atoms",
        type=_positive_int,
        nargs="+",
        default=[256, 1000, 3264],
        metavar="N",
        help="receptor sizes to sweep (default: 256 1000 3264 — the "
        "paper's 2BSM/2BXG scale plus a small cell)",
    )
    cal.add_argument(
        "--ligand-atoms",
        type=_positive_int,
        nargs="+",
        default=[16, 32, 48],
        metavar="N",
        help="ligand sizes to sweep (default: 16 32 48)",
    )
    cal.add_argument(
        "--workers",
        type=_nonnegative_int,
        nargs="+",
        default=[0],
        metavar="N",
        help="host worker counts to sweep (0 = serial; default: 0)",
    )
    cal.add_argument(
        "--families",
        choices=("exact", "cutoff-float32", "cutoff-float64"),
        nargs="+",
        default=["exact", "cutoff-float32"],
        help="numerics families to calibrate (default: exact cutoff-float32)",
    )
    cal.add_argument(
        "--poses",
        type=_positive_int,
        default=256,
        help="poses per timing batch (default 256)",
    )
    cal.add_argument(
        "--repeats",
        type=_positive_int,
        default=3,
        help="timing repeats per candidate; best-of is recorded (default 3)",
    )
    cal.add_argument("--seed", type=int, default=0)

    met = sub.add_parser(
        "metrics", help="inspect or serve telemetry snapshots"
    )
    msub = met.add_subparsers(dest="metrics_command", required=True)
    mshow = msub.add_parser(
        "show", help="render a snapshot written by --metrics-out"
    )
    mshow.add_argument("snapshot", help="snapshot JSON path (from --metrics-out)")
    mshow.add_argument(
        "--format",
        choices=("text", "json", "prom", "trace"),
        default="text",
        help="text = human summary, json = validated snapshot document, "
        "prom = Prometheus textfile exposition, trace = Chrome/Perfetto "
        "trace_event timeline (open in ui.perfetto.dev)",
    )
    mshow.add_argument("--out", help="write the rendering here instead of stdout")
    mtrace = msub.add_parser(
        "trace",
        help="render a snapshot as a Chrome/Perfetto trace_event timeline "
        "(shorthand for `metrics show --format trace`); distributed "
        "snapshots get per-node lanes and cross-node ligand flow arrows",
    )
    mtrace.add_argument("snapshot", help="snapshot JSON path (from --metrics-out)")
    mtrace.add_argument("--out", help="write the trace here instead of stdout")
    mserve = msub.add_parser(
        "serve",
        help="serve a snapshot file over HTTP (/metrics + /healthz), "
        "re-reading it on every scrape",
    )
    mserve.add_argument("snapshot", help="snapshot JSON path (from --metrics-out)")
    mserve.add_argument("--port", type=_port, default=9464)
    mserve.add_argument("--host", default="127.0.0.1")
    mserve.add_argument(
        "--for-seconds",
        type=_positive_float,
        default=None,
        metavar="S",
        help="serve for S seconds then exit (default: until Ctrl-C)",
    )

    ben = sub.add_parser("bench", help="benchmark artifact tooling")
    bsub = ben.add_subparsers(dest="bench_command", required=True)
    bcmp = bsub.add_parser(
        "compare",
        help="diff two BENCH_*.json artifact sets; non-zero exit on regression",
    )
    bcmp.add_argument("baseline", help="baseline artifact set (file or directory)")
    bcmp.add_argument("current", help="current artifact set (file or directory)")
    bcmp.add_argument(
        "--threshold",
        type=_positive_float,
        default=10.0,
        metavar="PCT",
        help="percent a metric may move in its bad direction (default 10)",
    )
    bcmp.add_argument(
        "--report-only",
        action="store_true",
        help="print the delta table but always exit 0 (CI trend jobs)",
    )

    tab = sub.add_parser("tables", help="regenerate the paper's Tables 6-9")
    tab.add_argument(
        "--table",
        choices=("6", "7", "8", "9", "all"),
        default="all",
        help="which paper table to regenerate",
    )
    tab.add_argument("--scale", type=float, default=1.0)

    doc = sub.add_parser(
        "doctor",
        help="post-mortem a campaign: fuse its journal, flight dumps, "
        "metrics snapshot, and series file into a slow/stuck diagnosis",
    )
    doc.add_argument("--store", required=True, help="campaign store path")
    doc.add_argument(
        "--series",
        help="optional live-metrics series file (from --live-metrics)",
    )
    doc.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    doc.add_argument("--out", help="write the report here instead of stdout")

    sub.add_parser("devices", help="list the modelled hardware")

    trc = sub.add_parser(
        "trace", help="write a full-scale analytic launch trace to a file"
    )
    trc.add_argument("--preset", default="M2", help="M1-M4")
    trc.add_argument("--dataset", choices=("2BSM", "2BXG"), default="2BSM")
    trc.add_argument("--scale", type=float, default=1.0)
    trc.add_argument("--out", required=True, help="output JSON path")

    rep = sub.add_parser("replay", help="time a saved launch trace on a node")
    rep.add_argument("--trace", required=True, help="trace JSON path")
    rep.add_argument("--node", choices=("jupiter", "hertz"), default="hertz")
    rep.add_argument(
        "--mode",
        choices=("openmp", "gpu-homogeneous", "gpu-heterogeneous", "gpu-dynamic"),
        default="gpu-heterogeneous",
    )
    rep.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_dock(args: argparse.Namespace) -> int:
    from repro.hardware.node import hertz, jupiter
    from repro.molecules.pdb import read_pdb, write_pdb
    from repro.molecules.synthetic import generate_ligand, generate_receptor
    from repro.vs.docking import dock

    receptor = (
        read_pdb(args.receptor_pdb, kind="receptor")
        if args.receptor_pdb
        else generate_receptor(args.receptor_atoms, seed=args.seed)
    )
    ligand = (
        read_pdb(args.ligand_pdb, kind="ligand")
        if args.ligand_pdb
        else generate_ligand(args.ligand_atoms, seed=args.seed + 1)
    )
    node = jupiter() if args.node == "jupiter" else hertz()
    if args.flexible:
        from repro.vs.flexible import dock_flexible

        flex_result = dock_flexible(
            receptor,
            ligand,
            n_spots=args.spots,
            max_torsions=args.max_torsions,
            seed=args.seed,
        )
        print(
            f"flexible best score {flex_result.best_score:.3f} kcal/mol at "
            f"spot {flex_result.best.spot_index} "
            f"({flex_result.n_torsions} torsions, "
            f"{flex_result.evaluations} evaluations)"
        )
        for pose in sorted(flex_result.per_spot, key=lambda p: p.score):
            print(f"  spot {pose.spot_index:3d}: {pose.score:12.3f}")
        return 0
    result = dock(
        receptor,
        ligand,
        n_spots=args.spots,
        metaheuristic=args.metaheuristic,
        seed=args.seed,
        workload_scale=args.scale,
        node=node,
        host_workers=args.host_workers,
        parallel_mode=args.parallel_mode,
        prune_spots=args.prune_spots,
        autotune=args.autotune,
        calibration_file=args.calibration_file,
    )
    print(
        f"best score {result.best_score:.3f} kcal/mol at spot "
        f"{result.best.spot_index} ({result.evaluations} evaluations, "
        f"simulated {result.simulated_seconds:.3f}s on {node.name})"
    )
    print("per-spot best scores:")
    for conf in sorted(result.per_spot, key=lambda c: c.score):
        print(f"  spot {conf.spot_index:3d}: {conf.score:12.3f}")
    if args.out_pdb:
        write_pdb(result.complex_molecule(), args.out_pdb)
        print(f"wrote docked complex to {args.out_pdb}")
    _maybe_write_metrics(args)
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    from repro.hardware.node import hertz, jupiter
    from repro.molecules.synthetic import generate_receptor
    from repro.vs.screening import screen, synthetic_library

    receptor = generate_receptor(args.receptor_atoms, seed=args.seed)
    ligands = synthetic_library(args.ligands, seed=args.seed + 10)
    node = jupiter() if args.node == "jupiter" else hertz()
    report = screen(
        receptor,
        ligands,
        n_spots=args.spots,
        metaheuristic=args.metaheuristic,
        seed=args.seed,
        workload_scale=args.scale,
        node=node,
        host_workers=args.host_workers,
        parallel_mode=args.parallel_mode,
        prune_spots=args.prune_spots,
        persistent_pool=not args.fresh_pool,
        autotune=args.autotune,
        calibration_file=args.calibration_file,
        pipeline_depth=args.pipeline_depth,
    )
    print(report.to_text())
    _maybe_write_metrics(args)
    return 0


def _add_campaign_observability_args(sub: argparse.ArgumentParser) -> None:
    """Live-run flags shared by ``campaign run`` and ``campaign resume``."""
    sub.add_argument(
        "--progress",
        action="store_true",
        help="print a single refreshing status line (shard n/N, ligands/s, "
        "ETA) to stderr; off by default so piped output stays clean",
    )
    sub.add_argument(
        "--serve-metrics",
        type=_port,
        default=None,
        metavar="PORT",
        help="serve /metrics (Prometheus) and /healthz (campaign progress "
        "JSON) on this port while the campaign runs (0 = ephemeral)",
    )


class _ProgressLine:
    """One refreshing status line on stderr (``campaign --progress``)."""

    def __init__(self, shard_size: int) -> None:
        self.shard_size = max(1, int(shard_size))
        self._last_len = 0

    def __call__(self, progress) -> None:
        if progress.total is None:
            shards = "?"
        else:
            shards = -(-progress.total // self.shard_size)  # ceil
        eta = (
            "?"
            if math.isnan(progress.eta_seconds)
            else f"{progress.eta_seconds:.0f}s"
        )
        line = (
            f"shard {progress.shard_id + 1}/{shards}  "
            f"{progress.done} done, {progress.failed} failed  "
            f"{progress.ligands_per_second:.2f} lig/s  ETA {eta}"
        )
        pad = " " * max(0, self._last_len - len(line))
        sys.stderr.write("\r" + line + pad)
        sys.stderr.flush()
        self._last_len = len(line)

    def close(self) -> None:
        if self._last_len:
            sys.stderr.write("\n")
            sys.stderr.flush()


@contextlib.contextmanager
def _campaign_session(args: argparse.Namespace, shard_size: int):
    """Wire the live pipeline around one campaign command.

    Composes (all optional, all observation-only): a JSONL time-series
    sampler (``--live-metrics``), an HTTP scrape endpoint with campaign
    progress on ``/healthz`` (``--serve-metrics``), and the refreshing
    stderr status line (``--progress``). Yields the combined progress
    callback for :class:`~repro.campaign.runner.CampaignRunner` (or None).
    """
    from repro import observability as obs

    callbacks = []
    sampler = None
    server = None
    health = None
    progress_line = None
    if getattr(args, "live_metrics", None):
        store = str(getattr(args, "store", ":memory:") or ":memory:")
        sampler = obs.TelemetrySampler(
            args.live_metrics,
            interval_s=args.sample_interval,
            disk_path=None if store == ":memory:" else store,
        )
        sampler.start()
    if getattr(args, "serve_metrics", None) is not None:
        health = obs.CampaignHealth(sampler=sampler)
        server = obs.MetricsServer(
            port=args.serve_metrics, health_fn=health.health
        ).start()
        print(
            f"serving /metrics and /healthz on {server.url}", file=sys.stderr
        )
        callbacks.append(health.update)
    if getattr(args, "progress", False):
        progress_line = _ProgressLine(shard_size)
        callbacks.append(progress_line)

    def combined(progress) -> None:
        for callback in callbacks:
            callback(progress)

    try:
        yield combined if callbacks else None
        if health is not None:
            health.finish("complete")
    finally:
        if progress_line is not None:
            progress_line.close()
        if sampler is not None:
            sampler.stop()
            print(f"wrote live metrics series to {args.live_metrics}")
        if server is not None:
            server.stop()


def _campaign_node(name: str | None):
    from repro.hardware.node import hertz, jupiter

    if name in (None, "none"):
        return None
    return jupiter() if name == "jupiter" else hertz()


def _print_campaign_summary(store) -> int:
    counts = store.counts()
    print(
        f"campaign {'complete' if store.is_complete() else 'in progress'}: "
        f"{counts['done']} done, {counts['failed']} failed, "
        f"{counts['pending'] + counts['running']} outstanding"
    )
    for row in store.top(5):
        print(f"  {row['title']}: {row['best_score']:.3f} (spot {row['best_spot']})")
    return 0


def _campaign_inputs(args: argparse.Namespace):
    """Receptor + descriptor + ligand source for a new campaign."""
    from repro.campaign import (
        CsvSource,
        PDBDirectorySource,
        SmilesSource,
        SyntheticSource,
    )
    from repro.molecules.pdb import read_pdb
    from repro.molecules.synthetic import generate_receptor

    if args.receptor_pdb:
        receptor = read_pdb(args.receptor_pdb, kind="receptor")
        receptor_descriptor = {"kind": "pdb", "path": args.receptor_pdb}
    else:
        receptor = generate_receptor(args.receptor_atoms, seed=args.seed)
        receptor_descriptor = {
            "kind": "synthetic",
            "n_atoms": args.receptor_atoms,
            "seed": args.seed,
        }
    if getattr(args, "library_smiles", None):
        source = SmilesSource(args.library_smiles, seed=args.seed + 10)
    elif getattr(args, "library_csv", None):
        source = CsvSource(args.library_csv, seed=args.seed + 10)
    elif args.library_dir:
        source = PDBDirectorySource(args.library_dir)
    else:
        source = SyntheticSource(
            args.ligands,
            atoms_range=(args.atoms_min, args.atoms_max),
            seed=args.seed + 10,
        )
    return receptor, receptor_descriptor, source


def _new_campaign_runner(
    args: argparse.Namespace, progress=None, *, nodes: int = 0, cluster=None
):
    """Build a fresh CampaignRunner from `campaign run`-style flags."""
    from repro.campaign import CampaignRunner

    receptor, receptor_descriptor, source = _campaign_inputs(args)
    return CampaignRunner(
        receptor,
        source,
        store_path=args.store,
        store_backend=getattr(args, "store_backend", "sqlite"),
        journal_batch_records=getattr(args, "journal_batch", 1),
        journal_batch_seconds=getattr(args, "journal_batch_seconds", 0.0),
        n_spots=args.spots,
        metaheuristic=args.metaheuristic,
        seed=args.seed,
        workload_scale=args.scale,
        shard_size=args.shard_size,
        node=_campaign_node(args.node),
        host_workers=args.host_workers,
        parallel_mode=args.parallel_mode,
        prune_spots=args.prune_spots,
        persistent_pool=not args.fresh_pool,
        autotune=args.autotune,
        calibration_file=args.calibration_file,
        refine_calibration=getattr(args, "refine_calibration", False),
        max_attempts=args.max_attempts,
        progress=progress,
        receptor_descriptor=receptor_descriptor,
        nodes=nodes,
        cluster=cluster,
        pipeline_depth=getattr(args, "pipeline_depth", 2),
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    cluster = _cluster_config(args) if args.nodes >= 2 else None
    with _campaign_session(args, args.shard_size) as progress_cb:
        runner = _new_campaign_runner(
            args, progress_cb, nodes=args.nodes, cluster=cluster
        )
        with runner.run() as store:
            rc = _print_campaign_summary(store)
    _maybe_write_metrics(args, default=f"{args.store}.metrics.json")
    return rc


def _rebuild_campaign_runner(
    args: argparse.Namespace, progress=None, *, nodes: int = 0, cluster=None
):
    """Reconstruct receptor/library from a store's recorded descriptors."""
    from repro.campaign import CampaignRunner, open_store
    from repro.campaign.library import build_receptor, build_source
    from repro.errors import CampaignError

    with open_store(args.store) as store:
        config = store.config

    receptor_desc = config.get("receptor", {})
    receptor = build_receptor(receptor_desc)
    source = build_source(config.get("library", {}))
    if config.get("scoring") is not None:
        raise CampaignError(
            "campaigns with a custom scoring function can only be resumed via "
            "the Python API"
        )
    return CampaignRunner(
        receptor,
        source,
        store_path=args.store,
        store_backend=str(config.get("store_backend", "sqlite")),
        journal_batch_records=getattr(args, "journal_batch", 1),
        journal_batch_seconds=getattr(args, "journal_batch_seconds", 0.0),
        n_spots=int(config["n_spots"]),
        metaheuristic=str(config["metaheuristic"]),
        seed=int(config["seed"]),
        workload_scale=float(config["workload_scale"]),
        shard_size=int(config["shard_size"]),
        node=_campaign_node(config.get("node")),
        mode=str(config.get("mode", "gpu-heterogeneous")),
        host_workers=args.host_workers,
        parallel_mode=args.parallel_mode,
        prune_spots=bool(config["prune_spots"]),
        persistent_pool=not args.fresh_pool,
        autotune=args.autotune or bool(config.get("autotune", False)),
        calibration_file=args.calibration_file,
        refine_calibration=getattr(args, "refine_calibration", False),
        max_attempts=args.max_attempts,
        progress=progress,
        receptor_descriptor=receptor_desc,
        nodes=nodes,
        cluster=cluster,
        pipeline_depth=getattr(args, "pipeline_depth", 2),
    )


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.campaign import open_store

    with open_store(args.store) as store:
        shard_size = int(store.config.get("shard_size", 1))
    cluster = _cluster_config(args) if args.nodes >= 2 else None
    with _campaign_session(args, shard_size) as progress_cb:
        runner = _rebuild_campaign_runner(
            args, progress=progress_cb, nodes=args.nodes, cluster=cluster
        )
        with runner.resume() as store:
            rc = _print_campaign_summary(store)
    # Even a no-op resume of a complete campaign leaves a valid snapshot
    # behind (span campaign.resume{noop}, counters) — observability is part
    # of the durability contract.
    _maybe_write_metrics(args, default=f"{args.store}.metrics.json")
    return rc


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import detect_backend, open_store, store_disk_bytes

    with open_store(args.store) as store:
        config = store.config
        counts = store.counts()
        print(f"campaign store: {args.store}")
        print(f"  backend: {detect_backend(args.store)}")
        print(f"  receptor: {config.get('receptor_title')}")
        print(
            f"  library: {config.get('library', {}).get('kind')}  "
            f"metaheuristic: {config.get('metaheuristic')}  "
            f"seed: {config.get('seed')}  spots: {config.get('n_spots')}  "
            f"shard size: {config.get('shard_size')}"
        )
        print(f"  config hash: {store.config_hash[:16]}…")
        print(f"  complete: {'yes' if store.is_complete() else 'no'}")
        print(
            f"  ligands: {counts['done']} done, {counts['failed']} failed, "
            f"{counts['running']} running, {counts['pending']} pending"
        )
        if os.path.exists(args.store):
            print(f"  store size: {store_disk_bytes(args.store)} bytes")
    return 0


def _cmd_campaign_top(args: argparse.Namespace) -> int:
    from repro.campaign import open_store

    with open_store(args.store) as store:
        rows = store.top(args.k)
        print(f"{'rank':>4s}  {'score':>12s}  {'spot':>5s}  ligand")
        for rank, row in enumerate(rows, start=1):
            print(
                f"{rank:4d}  {row['best_score']:12.3f}  {row['best_spot']:5d}  "
                f"{row['title']}"
            )
    return 0


def _cmd_campaign_export(args: argparse.Namespace) -> int:
    from repro.campaign import export_report, open_store

    with open_store(args.store) as store:
        if args.format == "json":
            n = store.export_json(args.out)
        elif args.format == "csv":
            n = store.export_csv(args.out)
        else:
            # Streams row by row — a million-ligand report never
            # materialises in memory.
            n = export_report(store, args.out)
    print(f"exported {n} ligands to {args.out} ({args.format})")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    commands = {
        "run": _cmd_campaign_run,
        "resume": _cmd_campaign_resume,
        "status": _cmd_campaign_status,
        "top": _cmd_campaign_top,
        "export": _cmd_campaign_export,
    }
    return commands[args.campaign_command](args)


def _parse_hostport(text: str) -> tuple[str, int]:
    """Split ``HOST:PORT``, with a clear error on malformed input."""
    from repro.errors import ClusterError

    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ClusterError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterError(f"invalid port in {text!r}") from None
    if not 0 <= port <= 65535:
        raise ClusterError(f"port must be in [0, 65535], got {port}")
    return host, port


def _cmd_cluster_coordinator(args: argparse.Namespace) -> int:
    """Serve one campaign over real sockets; workers dial in separately."""
    host, port = _parse_hostport(args.listen)
    cluster = _cluster_config(args, host=host, port=port)
    with _campaign_session(args, args.shard_size) as progress_cb:
        if args.resume:
            runner = _rebuild_campaign_runner(
                args, progress=progress_cb, nodes=args.expect_nodes, cluster=cluster
            )
        else:
            runner = _new_campaign_runner(
                args, progress_cb, nodes=args.expect_nodes, cluster=cluster
            )
        runner.cluster_spawn = False  # remote workers only
        print(
            f"coordinator listening on {host}:{port} for "
            f"{args.expect_nodes} worker node(s); start each with "
            f"`repro-vs cluster worker --connect {host}:{port}`",
            file=sys.stderr,
        )
        run = runner.resume if args.resume else runner.run
        with run() as store:
            rc = _print_campaign_summary(store)
        if runner.fleet is not None and runner.fleet.summary is not None:
            summary = runner.fleet.summary
            print(
                f"fleet: {summary['nodes']} nodes, {summary['shards']} shards, "
                f"{summary['steals']} steals, "
                f"{summary['node_deaths']} node deaths"
            )
    _maybe_write_metrics(args, default=f"{args.store}.metrics.json")
    return rc


def _cmd_cluster_worker(args: argparse.Namespace) -> int:
    """One worker node process: exit 0 on clean drain, 1 on lost coordinator."""
    from repro.cluster import run_worker

    host, port = _parse_hostport(args.connect)
    rc = run_worker(
        host,
        port,
        connect_attempts=args.connect_attempts,
        connect_backoff_s=args.connect_backoff,
    )
    if rc != 0:
        print(f"worker lost coordinator at {host}:{port}", file=sys.stderr)
    return rc


def _cmd_cluster(args: argparse.Namespace) -> int:
    commands = {
        "coordinator": _cmd_cluster_coordinator,
        "worker": _cmd_cluster_worker,
    }
    return commands[args.cluster_command](args)


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.scoring.autotune import run_calibration_sweep

    table = run_calibration_sweep(
        receptor_atoms=tuple(args.receptor_atoms),
        ligand_atoms=tuple(args.ligand_atoms),
        worker_counts=tuple(args.workers),
        families=tuple(args.families),
        poses=args.poses,
        repeats=args.repeats,
        seed=args.seed,
    )
    table.save(args.out)
    print(
        f"calibrated {len(table.cells)} cells "
        f"({len(args.receptor_atoms)} receptor x {len(args.ligand_atoms)} "
        f"ligand sizes, workers {args.workers}, "
        f"families {' '.join(args.families)})"
    )
    header = f"{'receptor':>9s} {'ligand':>7s} {'workers':>7s}  {'family':<15s} {'variant':<22s} {'chunk':>6s} {'poses/s':>12s}"
    print(header)
    for cell in table.cells:
        print(
            f"{cell.receptor_atoms:9d} {cell.ligand_atoms:7d} "
            f"{cell.worker_count:7d}  {cell.family:<15s} "
            f"{cell.variant:<22s} {cell.chunk_size:6d} "
            f"{cell.poses_per_s:12.0f}"
        )
    print(f"wrote calibration table to {args.out}")
    return 0


def _cmd_metrics_show(args: argparse.Namespace) -> int:
    from repro.observability import (
        load_snapshot,
        snapshot_to_json,
        snapshot_to_prometheus,
        snapshot_to_text,
    )
    from repro.observability.trace import trace_events_to_json

    render = {
        "text": snapshot_to_text,
        "json": snapshot_to_json,
        "prom": snapshot_to_prometheus,
        "trace": trace_events_to_json,
    }[args.format]
    text = render(load_snapshot(args.snapshot))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.format} rendering to {args.out}")
    else:
        try:
            print(text)
        except BrokenPipeError:  # e.g. `repro-vs metrics ... | head`
            return 0
    return 0


def _cmd_metrics_serve(args: argparse.Namespace) -> int:
    from repro.observability import MetricsServer, load_snapshot

    snapshot_path = args.snapshot
    load_snapshot(snapshot_path)  # fail fast on a bad file, before binding
    server = MetricsServer(
        port=args.port,
        host=args.host,
        snapshot_fn=lambda: load_snapshot(snapshot_path),
        health_fn=lambda: {"status": "ok", "snapshot": str(snapshot_path)},
    ).start()
    try:
        print(f"serving /metrics and /healthz on {server.url}")
        if args.for_seconds is not None:
            time.sleep(args.for_seconds)
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.stop()
    return 0


def _cmd_metrics_trace(args: argparse.Namespace) -> int:
    args.format = "trace"
    return _cmd_metrics_show(args)


def _cmd_metrics(args: argparse.Namespace) -> int:
    commands = {
        "show": _cmd_metrics_show,
        "serve": _cmd_metrics_serve,
        "trace": _cmd_metrics_trace,
    }
    return commands[args.metrics_command](args)


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.observability import diagnose_campaign

    report = diagnose_campaign(args.store, series_path=args.series)
    if args.json:
        text = json.dumps(report.to_json(), indent=2, sort_keys=True)
    else:
        text = report.to_text()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote doctor report to {args.out}")
    else:
        print(text)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.observability.regression import compare_sets, format_delta_table

    rows = compare_sets(args.baseline, args.current, threshold_pct=args.threshold)
    print(format_delta_table(rows, args.threshold))
    regressions = sum(1 for row in rows if row.status == "regressed")
    if regressions and args.report_only:
        print(f"report-only: ignoring {regressions} regression(s)")
        return 0
    return 1 if regressions else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    commands = {"compare": _cmd_bench_compare}
    return commands[args.bench_command](args)


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.runner import hertz_table, jupiter_table
    from repro.experiments.tables import format_hertz_table, format_jupiter_table

    plans = {
        "6": lambda: format_jupiter_table(jupiter_table("2BSM", args.scale)),
        "7": lambda: format_jupiter_table(jupiter_table("2BXG", args.scale)),
        "8": lambda: format_hertz_table(hertz_table("2BSM", args.scale)),
        "9": lambda: format_hertz_table(hertz_table("2BXG", args.scale)),
    }
    wanted = plans.keys() if args.table == "all" else [args.table]
    for key in wanted:
        print(f"=== Paper Table {key} ===")
        print(plans[key]())
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.engine.traceio import dump_trace
    from repro.experiments.datasets import get_dataset
    from repro.experiments.trace import analytic_trace

    dataset = get_dataset(args.dataset)
    trace = analytic_trace(
        args.preset,
        dataset.n_spots,
        dataset.receptor_atoms,
        dataset.ligand_atoms,
        args.scale,
    )
    dump_trace(
        trace,
        args.out,
        metadata={
            "preset": args.preset,
            "dataset": args.dataset,
            "workload_scale": args.scale,
        },
    )
    poses = sum(r.n_conformations for r in trace)
    print(f"wrote {len(trace)} launches ({poses:,} conformations) to {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.engine.executor import MultiGpuExecutor
    from repro.engine.traceio import load_trace
    from repro.hardware.node import hertz, jupiter

    trace, metadata = load_trace(args.trace)
    node = jupiter() if args.node == "jupiter" else hertz()
    executor = MultiGpuExecutor(node, seed=args.seed)
    timing, scheduler = executor.replay(trace, args.mode)
    if metadata:
        print(f"trace metadata: {metadata}")
    print(
        f"{args.mode} on {node.name} ({scheduler}): "
        f"{timing.total_s:.3f}s simulated "
        f"(scoring {timing.scoring_s:.3f}s, host {timing.host_s:.3f}s, "
        f"warm-up {timing.warmup_s:.3f}s, balance {timing.balance:.3f})"
    )
    return 0


def _cmd_devices(_args: argparse.Namespace) -> int:
    from repro.hardware.registry import CPUS, GPUS
    from repro.hardware.specs import CUDA_GENERATIONS

    print("CUDA generations (paper Table 1):")
    for g in CUDA_GENERATIONS:
        print(
            f"  {g.name:8s} {g.year}  {g.max_cores:5d} cores  "
            f"{g.peak_sp_gflops:5d} GFLOPS  perf/W {g.perf_per_watt}"
        )
    print("\nGPUs (Tables 2-3 + extensions):")
    for gpu in GPUS.values():
        print(
            f"  {gpu.name:18s} {gpu.architecture.value:8s} "
            f"{gpu.total_cores:5d} cores @ {gpu.clock_mhz:.0f} MHz  "
            f"CCC {gpu.ccc}  sustained {gpu.pairs_per_sec / 1e9:.1f} Gpairs/s"
        )
    print("\nCPUs:")
    for cpu in CPUS.values():
        print(f"  {cpu.name:18s} {cpu.cores} cores @ {cpu.clock_mhz:.0f} MHz")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Library errors (:class:`repro.errors.ReproError`) are reported as a
    one-line ``error: …`` message with exit code 2, never a traceback.
    """
    from repro.errors import ReproError

    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Back-compat shim: `repro-vs metrics SNAPSHOT` predates the
    # show/serve split and still means `metrics show SNAPSHOT`.
    if (
        len(argv) >= 2
        and argv[0] == "metrics"
        and argv[1] not in ("show", "serve", "trace", "-h", "--help")
    ):
        argv.insert(1, "show")
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)
    commands = {
        "dock": _cmd_dock,
        "screen": _cmd_screen,
        "campaign": _cmd_campaign,
        "cluster": _cmd_cluster,
        "calibrate": _cmd_calibrate,
        "metrics": _cmd_metrics,
        "doctor": _cmd_doctor,
        "bench": _cmd_bench,
        "tables": _cmd_tables,
        "devices": _cmd_devices,
        "trace": _cmd_trace,
        "replay": _cmd_replay,
    }
    try:
        if args.command in ("dock", "screen"):
            with _maybe_sampler(args):
                return commands[args.command](args)
        return commands[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
