"""Distributed campaign fleet: one campaign across N worker-node processes.

The paper's future-work direction — "extending the proposal to several
nodes" — realised over the campaign runtime: a :class:`Coordinator` shards
the ligand stream with Eq. 1 warm-up-measured per-node throughput shares
plus dynamic inter-node work-stealing, and each :mod:`worker
<repro.cluster.worker>` process owns a full single-node execution stack
(persistent host runtime included), reporting every docked ligand over a
length-prefixed stdlib-socket protocol. Node death is detected by heartbeat
silence or instant EOF; leases are reclaimed and re-run — determinism
(``seed + ordinal``) makes every re-run, shard assignment, and node count
produce a bitwise-identical store.

Entry points: ``CampaignRunner(..., nodes=N)`` / ``screen(..., nodes=N)``
for the Python API, ``repro-vs campaign run --nodes N`` for the CLI, and
``repro-vs cluster coordinator|worker`` for multi-machine layouts.
"""

from repro.cluster.config import ClusterConfig, build_scoring, scoring_descriptor
from repro.cluster.coordinator import (
    ClusterProgress,
    Coordinator,
    ShardTask,
    retag_snapshot,
)
from repro.cluster.fleet import ClusterCampaign, execute_fleet
from repro.cluster.protocol import (
    MAX_MESSAGE_BYTES,
    MESSAGE_KINDS,
    PROTOCOL_VERSION,
    Channel,
    connect,
    ligand_from_payload,
    ligand_to_payload,
    molecule_to_payload,
    receptor_from_payload,
    recv_message,
    send_message,
)
from repro.cluster.shares import node_shares, partition_shards
from repro.cluster.worker import WorkerNode, run_worker

__all__ = [
    "ClusterConfig",
    "ClusterCampaign",
    "ClusterProgress",
    "Coordinator",
    "ShardTask",
    "WorkerNode",
    "Channel",
    "MESSAGE_KINDS",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "build_scoring",
    "connect",
    "execute_fleet",
    "ligand_from_payload",
    "ligand_to_payload",
    "molecule_to_payload",
    "node_shares",
    "partition_shards",
    "receptor_from_payload",
    "recv_message",
    "retag_snapshot",
    "run_worker",
    "scoring_descriptor",
    "send_message",
]
