"""Fleet tuning knobs and cross-process reconstruction helpers.

:class:`ClusterConfig` carries every execution-side setting of a distributed
campaign — addresses, timeouts, lease window, warm-up probe policy. None of
it is science-affecting: like ``host_workers`` or ``parallel_mode``, the
fleet shape may change freely between a run and its resume, and scores stay
bitwise identical for any node count.

Scoring functions are the one constructor argument a worker process cannot
receive by reference, so :func:`scoring_descriptor` /:func:`build_scoring`
round-trip the reconstructable ones (the registered scorers with
JSON-representable constructor args) through the config message. A custom
scorer instance raises :class:`~repro.errors.ClusterError` up front rather
than silently docking with different numerics on the far side.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import ClusterError
from repro.scoring.base import ScoringFunction, get_scoring

__all__ = ["ClusterConfig", "scoring_descriptor", "build_scoring"]


@dataclass(frozen=True)
class ClusterConfig:
    """Execution settings for one campaign fleet (see module docstring).

    Attributes
    ----------
    host, port:
        Coordinator listen address. Port 0 binds an ephemeral port (the
        local fleet's default — workers are told the real port).
    heartbeat_interval_s:
        How often an idle/busy worker proves liveness.
    heartbeat_timeout_s:
        Silence threshold after which the coordinator declares a node dead
        and reclaims its leases.
    message_timeout_s:
        Per-message completion timeout once a frame has started.
    connect_attempts, connect_backoff_s:
        Worker dial retry policy (workers race the coordinator's bind).
    lease_window:
        Outstanding leases per node — 2 keeps a node busy while its next
        shard is in flight, without hoarding work a thief could use.
    warmup_probe:
        Measure one probe dock per node for Eq. 1 shares; off = equal
        shares (stealing still balances).
    warmup_deadline_s:
        How long the coordinator waits for hellos + probes before
        partitioning over whichever nodes made it.
    probe_atoms:
        Probe ligand size (science-neutral: probe results are discarded).
    probe_seconds_override:
        Test/bench seam: ``((node_id, seconds), ...)`` pairs that replace
        the measured probe time per node, making Eq. 1 shares — and
        therefore steal traffic — deterministic.
    service_time_s:
        Synthetic per-ligand device service time (a worker sleeps this long
        after each dock). The multinode benchmark uses it to emulate the
        device-bound regime on oversubscribed CI hosts, where N CPU-bound
        node processes on one core cannot show real overlap. 0 (default)
        for every real campaign.
    heartbeat_telemetry:
        Ship incremental telemetry snapshots inside heartbeats (at most one
        every ``heartbeat_timeout_s / 2``). The coordinator keeps only the
        latest per node and merges it when the node *dies* — so a SIGKILLed
        worker still has lanes in the fleet trace. Clean exits merge the
        ``bye`` snapshot instead; a node's telemetry is merged exactly once
        either way.
    """

    host: str = "127.0.0.1"
    port: int = 0
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 5.0
    message_timeout_s: float = 30.0
    connect_attempts: int = 10
    connect_backoff_s: float = 0.1
    lease_window: int = 2
    warmup_probe: bool = True
    warmup_deadline_s: float = 120.0
    probe_atoms: int = 24
    probe_seconds_override: tuple[tuple[int, float], ...] = field(default=())
    service_time_s: float = 0.0
    heartbeat_telemetry: bool = True

    def __post_init__(self) -> None:
        if not 0 <= int(self.port) <= 65535:
            raise ClusterError(f"port must be in [0, 65535], got {self.port}")
        if self.heartbeat_interval_s <= 0:
            raise ClusterError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ClusterError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s "
                f"({self.heartbeat_timeout_s} <= {self.heartbeat_interval_s})"
            )
        if self.lease_window < 1:
            raise ClusterError(f"lease_window must be >= 1, got {self.lease_window}")
        if self.service_time_s < 0:
            raise ClusterError(
                f"service_time_s must be >= 0, got {self.service_time_s}"
            )

    # -- wire form -----------------------------------------------------
    def to_wire(self) -> dict:
        """JSON-serialisable form for the ``config`` message."""
        doc = asdict(self)
        doc["probe_seconds_override"] = [
            [int(n), float(s)] for n, s in self.probe_seconds_override
        ]
        return doc

    @classmethod
    def from_wire(cls, doc: dict) -> "ClusterConfig":
        try:
            override = tuple(
                (int(n), float(s)) for n, s in doc.get("probe_seconds_override", [])
            )
            return cls(
                host=str(doc.get("host", "127.0.0.1")),
                port=int(doc.get("port", 0)),
                heartbeat_interval_s=float(doc["heartbeat_interval_s"]),
                heartbeat_timeout_s=float(doc["heartbeat_timeout_s"]),
                message_timeout_s=float(doc["message_timeout_s"]),
                connect_attempts=int(doc["connect_attempts"]),
                connect_backoff_s=float(doc["connect_backoff_s"]),
                lease_window=int(doc["lease_window"]),
                warmup_probe=bool(doc["warmup_probe"]),
                warmup_deadline_s=float(doc["warmup_deadline_s"]),
                probe_atoms=int(doc["probe_atoms"]),
                probe_seconds_override=override,
                service_time_s=float(doc.get("service_time_s", 0.0)),
                heartbeat_telemetry=bool(doc.get("heartbeat_telemetry", True)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(f"malformed cluster config on the wire: {exc}") from exc

    def probe_override_for(self, node_id: int) -> float | None:
        for node, seconds in self.probe_seconds_override:
            if node == node_id:
                return seconds
        return None


# ----------------------------------------------------------------------
# scoring reconstruction across the process boundary
# ----------------------------------------------------------------------
def scoring_descriptor(scoring: ScoringFunction | None) -> dict | None:
    """Describe a scoring function so a worker can rebuild it by value."""
    if scoring is None:
        return None
    from repro.molecules.forcefield import default_forcefield
    from repro.scoring.cutoff import CutoffLennardJonesScoring
    from repro.scoring.lennard_jones import LennardJonesScoring

    if isinstance(scoring, CutoffLennardJonesScoring):
        if scoring.forcefield is not None and not _is_default_forcefield(
            scoring.forcefield, default_forcefield()
        ):
            raise ClusterError(
                "a custom forcefield cannot cross the cluster node boundary; "
                "run with nodes=0 or use the default forcefield"
            )
        return {
            "kind": "lennard-jones-cutoff",
            "cutoff": float(scoring.cutoff),
            "chunk_size": scoring.chunk_size,
            "dtype": np.dtype(scoring.dtype).name,
        }
    if type(scoring) is LennardJonesScoring:
        if not _is_default_forcefield(scoring.forcefield, default_forcefield()):
            raise ClusterError(
                "a custom forcefield cannot cross the cluster node boundary; "
                "run with nodes=0 or use the default forcefield"
            )
        return {"kind": "lennard-jones", "chunk_size": scoring.chunk_size}
    name = getattr(scoring, "name", "")
    raise ClusterError(
        f"scoring function {name or type(scoring).__name__!r} cannot be "
        "reconstructed on a worker node; distributed campaigns support the "
        "default scorer, lennard-jones, and lennard-jones-cutoff"
    )


def _is_default_forcefield(candidate, default) -> bool:
    try:
        return candidate is default or vars(candidate) == vars(default)
    except TypeError:
        return candidate is default


def build_scoring(descriptor: dict | None) -> ScoringFunction | None:
    """Worker-side inverse of :func:`scoring_descriptor`."""
    if descriptor is None:
        return None
    kind = descriptor.get("kind")
    if kind == "lennard-jones-cutoff":
        chunk = descriptor.get("chunk_size")
        return get_scoring(
            "lennard-jones-cutoff",
            cutoff=float(descriptor["cutoff"]),
            chunk_size=None if chunk is None else int(chunk),
            dtype=np.dtype(str(descriptor["dtype"])),
        )
    if kind == "lennard-jones":
        chunk = descriptor.get("chunk_size")
        return get_scoring(
            "lennard-jones", chunk_size=None if chunk is None else int(chunk)
        )
    raise ClusterError(f"unknown scoring descriptor on the wire: {descriptor}")
