"""Campaign coordinator: lease shards to worker nodes, survive their deaths.

The coordinator is the durability boundary of a distributed campaign. It is
the *only* process that touches the store and journal — workers report every
docked ligand over the wire and the coordinator commits it before the lease
is considered to shrink — so the crash-safety story is unchanged from the
single-node runner: anything committed is durable, anything else re-runs,
and determinism (seed = campaign seed + ordinal) makes the re-run bitwise
identical.

Scheduling is the paper's two-level discipline lifted one level up:

* **Static shares (Eq. 1)** — each node's warm-up probe time feeds
  :func:`repro.cluster.shares.node_shares`; the shard list is cut into
  contiguous per-node queues proportional to measured throughput.
* **Dynamic stealing** — a node that drains its queue asks to ``steal``;
  the coordinator moves a shard from the tail of the longest surviving
  queue, exactly as the in-node dynamic scheduler rebalances spots.

Failure model: a worker that misses ``heartbeat_timeout_s`` of messages —
or whose TCP stream closes (SIGKILL is detected instantly via EOF) — is
declared dead. Its outstanding leases are reclaimed, already-committed
ordinals are filtered out against the store, and the remainder re-queues on
the surviving nodes. Losing the *last* node raises
:class:`~repro.errors.ClusterError`; the store stays resumable.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro import observability as obs
from repro.campaign.backends import store_disk_bytes
from repro.campaign.journal import CampaignJournal
from repro.campaign.runner import CampaignProgress
from repro.campaign.store import CampaignStore
from repro.errors import ClusterError, ConnectionClosed, ProtocolError
from repro.observability.flight import dump_flight, flight_event

from repro.cluster.config import ClusterConfig
from repro.cluster.protocol import PROTOCOL_VERSION, Channel
from repro.cluster.shares import node_shares, partition_shards

__all__ = ["Coordinator", "ShardTask", "ClusterProgress", "retag_snapshot"]


@dataclass(frozen=True, slots=True)
class ClusterProgress(CampaignProgress):
    """Campaign progress plus a per-node fleet table.

    ``nodes`` rows are JSON-safe dicts (``node``, ``state``, ``done``,
    ``failed``, ``queued``, ``outstanding``, ``weight``) — the health
    endpoint serves them verbatim as the ``/healthz`` node table.
    """

    nodes: tuple = ()


@dataclass(frozen=True, slots=True)
class ShardTask:
    """One shard of the campaign plan, ready to lease.

    ``items`` holds ``(ordinal, title, payload-or-None)`` triples: a
    ``None`` payload means the worker rebuilds the ligand locally from the
    shared library descriptor (the cheap path for synthetic / on-disk
    libraries); an inline payload ships the ligand itself (the only option
    for one-shot in-memory sources).
    """

    shard_id: int
    start: int
    stop: int
    items: tuple

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass
class _Lease:
    """One shard granted to one node, tracked until every ordinal lands."""

    shard_id: int
    pending: set[int]
    stolen: bool = False


class _NodeState:
    """Coordinator-side view of one worker node."""

    __slots__ = (
        "node_id", "channel", "state", "last_seen", "probe_seconds",
        "weight", "queue", "outstanding", "done", "failed",
        "pending_telemetry",
    )

    def __init__(self, node_id: int, channel: Channel) -> None:
        self.node_id = node_id
        self.channel = channel
        self.state = "warming"  # warming -> active -> done | dead
        self.last_seen = time.monotonic()
        self.probe_seconds: float | None = None
        self.weight = 0.0
        self.queue: deque[int] = deque()
        self.outstanding: dict[int, _Lease] = {}
        self.done = 0
        self.failed = 0
        # Latest heartbeat-shipped telemetry snapshot: merged only if the
        # node dies (a clean bye supersedes it), so each node's telemetry
        # lands exactly once.
        self.pending_telemetry: dict | None = None

    @property
    def live(self) -> bool:
        return self.state in ("warming", "active")

    def backlog(self) -> int:
        return len(self.queue) + len(self.outstanding)


def retag_snapshot(snapshot: dict, node_id: int) -> dict:
    """Stamp ``node=<id>`` into every metric and span of a worker snapshot.

    Applied before merging a worker's ``bye`` telemetry so per-node series
    stay separable after the fold (and so the trace exporter can route the
    spans into per-node lanes). Existing tags win — a worker's own
    ``worker=k`` pool tags survive and compose into "node N worker K".
    """
    doc = dict(snapshot)
    for section in ("counters", "gauges", "histograms", "spans"):
        items = []
        for item in doc.get(section, []):
            tags = dict(item.get("tags", {}))
            tags.setdefault("node", node_id)
            items.append({**item, "tags": tags})
        doc[section] = items
    return doc


class Coordinator:
    """Serve one campaign to a fleet of worker nodes (see module docstring).

    The caller (normally :class:`repro.cluster.fleet.ClusterCampaign`) owns
    the listening socket, the open store, and the shard plan; ``serve()``
    blocks until every shard is finished or the fleet is unrecoverable.
    """

    def __init__(
        self,
        listener: socket.socket,
        *,
        store: CampaignStore,
        journal: CampaignJournal | None,
        tasks: list[ShardTask],
        config_base: dict,
        cluster: ClusterConfig,
        expected_nodes: int,
        total: int | None = None,
        progress=None,
        raise_on_failure: bool = False,
        trace_id: str | None = None,
        flight_path=None,
    ) -> None:
        if expected_nodes < 1:
            raise ClusterError(f"expected_nodes must be >= 1, got {expected_nodes}")
        self._listener = listener
        self._store = store
        self._journal = journal
        self._tasks = {task.shard_id: task for task in tasks}
        self._order = [task.shard_id for task in tasks]
        self._config_base = config_base
        self.cluster = cluster
        self.expected_nodes = expected_nodes
        self._total = total
        self._progress = progress
        self._raise_on_failure = raise_on_failure
        self.trace_id = trace_id
        self._flight_path = flight_path
        self._disk_gauge_t = 0.0

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._nodes: dict[int, _NodeState] = {}
        self._next_id = 0
        self._finished: set[int] = set()
        self._shard_t0: dict[int, float] = {}
        self._orphans: deque[int] = deque()  # reclaimed, waiting for a node
        self._partitioned = False
        self._closing = False
        self._fatal: BaseException | None = None
        self._session_start = time.monotonic()
        self._session_results = 0
        self.steals = 0
        self.node_deaths = 0
        self.stale_results = 0
        self.recovery_seconds = 0.0

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def serve(self) -> dict:
        """Run the campaign to completion; returns a fleet summary dict."""
        self._session_start = time.monotonic()
        self._listener.settimeout(0.2)
        accept = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        accept.start()
        try:
            self._await_warmups()
            with self._lock:
                if not self._tasks:
                    pass  # resuming an effectively-finished campaign
                else:
                    self._partition()
            self._monitor()
        finally:
            self._shutdown_fleet()
            accept.join(timeout=2.0)
            if self._flight_path is not None:
                dump_flight(self._flight_path)
        if self._fatal is not None:
            raise self._fatal
        return self.summary()

    def summary(self) -> dict:
        with self._lock:
            return {
                "nodes": len(self._nodes),
                "shards": len(self._order),
                "steals": self.steals,
                "node_deaths": self.node_deaths,
                "stale_results": self.stale_results,
                "recovery_seconds": self.recovery_seconds,
            }

    def node_table(self) -> tuple:
        """JSON-safe per-node rows (the ``/healthz`` fleet table)."""
        with self._lock:
            return self._node_rows()

    def _node_rows(self) -> tuple:
        """Per-node status rows (lock held).

        ``last_heartbeat_age_s`` and ``lease_queue_depth`` make a *stalling*
        node visible on ``/healthz`` before the heartbeat timeout declares
        it dead: the age creeps toward the timeout while the depth stops
        draining.
        """
        now = time.monotonic()
        return tuple(
            {
                "node": node.node_id,
                "state": node.state,
                "done": node.done,
                "failed": node.failed,
                "queued": len(node.queue),
                "outstanding": len(node.outstanding),
                "lease_queue_depth": node.backlog(),
                "last_heartbeat_age_s": (
                    round(now - node.last_seen, 3) if node.live else None
                ),
                "weight": round(node.weight, 6),
            }
            for node in sorted(self._nodes.values(), key=lambda n: n.node_id)
        )

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    # ------------------------------------------------------------------
    # connection handling (one thread per node)
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed underneath us: shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = Channel(
                sock,
                timeout=self.cluster.message_timeout_s,
                trace_id=self.trace_id,
            )
            threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name="cluster-node",
                daemon=True,
            ).start()

    def _serve_connection(self, channel: Channel) -> None:
        try:
            hello = channel.recv()
        except (ProtocolError, ConnectionClosed):
            channel.close()
            return
        if (
            hello is None
            or hello.get("kind") != "hello"
            or int(hello.get("protocol", -1)) != PROTOCOL_VERSION
        ):
            try:
                channel.send({"kind": "shutdown", "reason": "protocol mismatch"})
            except ProtocolError:
                pass
            channel.close()
            return
        with self._lock:
            node = _NodeState(self._next_id, channel)
            self._next_id += 1
            self._nodes[node.node_id] = node
            obs.counter("cluster.nodes.connected").inc()
        flight_event("node.connect", node=node.node_id, peer=channel.peer)
        try:
            channel.send(
                {**self._config_base, "kind": "config", "node": node.node_id}
            )
            self._node_loop(node)
        except (ProtocolError, ConnectionClosed) as exc:
            with self._lock:
                self._node_lost(node, f"channel broke: {exc}")

    def _node_loop(self, node: _NodeState) -> None:
        """Receive loop for one node; returns after ``bye`` or shutdown."""
        while True:
            message = node.channel.recv(
                idle_timeout=self.cluster.heartbeat_interval_s
            )
            if message is None:
                with self._lock:
                    # A live node's bye is still expected even while the
                    # fleet is closing — keep reading until it lands (or
                    # _shutdown_fleet's deadline closes the channel under
                    # us). Bailing out early here would strand the bye and
                    # stall shutdown for the full message timeout.
                    if not node.live:
                        return
                continue  # silence is the monitor thread's problem
            kind = message["kind"]
            with self._lock:
                node.last_seen = time.monotonic()
                if kind == "warmup":
                    node.probe_seconds = float(message["seconds"])
                    node.state = "active"
                    self._cond.notify_all()
                elif kind == "result":
                    self._on_result(node, message)
                elif kind == "steal":
                    self._on_steal(node)
                elif kind == "heartbeat":
                    node.done = int(message.get("done", node.done))
                    node.failed = int(message.get("failed", node.failed))
                    telemetry = message.get("telemetry")
                    if isinstance(telemetry, dict):
                        node.pending_telemetry = telemetry
                        flight_event(
                            "node.heartbeat",
                            node=node.node_id,
                            done=node.done,
                            failed=node.failed,
                        )
                elif kind == "bye":
                    self._on_bye(node, message)
                    return
                else:
                    raise ProtocolError(
                        f"coordinator received unexpected {kind} from "
                        f"node {node.node_id}"
                    )

    # ------------------------------------------------------------------
    # warm-up barrier + Eq. 1 partition
    # ------------------------------------------------------------------
    def _await_warmups(self) -> None:
        deadline = time.monotonic() + self.cluster.warmup_deadline_s
        with self._cond:
            while True:
                active = [n for n in self._nodes.values() if n.state == "active"]
                dead = sum(1 for n in self._nodes.values() if n.state == "dead")
                if len(active) >= self.expected_nodes:
                    return
                if active and len(active) + dead >= self.expected_nodes:
                    # Some nodes died before warming up; the rest of the
                    # fleet is as big as it is going to get.
                    obs.counter("cluster.warmup.partial").inc()
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if active:
                        obs.counter("cluster.warmup.partial").inc()
                        return  # partition over whoever made it
                    raise ClusterError(
                        f"no worker node completed warm-up within "
                        f"{self.cluster.warmup_deadline_s}s "
                        f"(expected {self.expected_nodes})"
                    )
                self._cond.wait(min(remaining, 0.5))

    def _partition(self) -> None:
        """Eq. 1 shares -> contiguous per-node shard queues -> first leases."""
        active = [n for n in self._nodes.values() if n.state == "active"]
        probes = {
            n.node_id: (n.probe_seconds if n.probe_seconds else 1.0) for n in active
        }
        weights = node_shares(probes)
        queues = partition_shards(self._order, weights)
        for node in active:
            node.weight = weights[node.node_id]
            node.queue = queues[node.node_id]
        self._partitioned = True
        for node in active:
            self._grant(node)

    # ------------------------------------------------------------------
    # leasing + stealing (lock held in all methods below)
    # ------------------------------------------------------------------
    def _grant(self, node: _NodeState) -> bool:
        """Top node up to ``lease_window`` outstanding leases.

        Sources, in order: reclaimed orphan shards, the node's own queue,
        then (only when the node would otherwise idle) a steal from the
        tail of the longest surviving queue. Returns True if anything was
        granted.
        """
        granted = False
        while node.live and len(node.outstanding) < self.cluster.lease_window:
            stolen = False
            if self._orphans:
                shard_id = self._orphans.popleft()
            elif node.queue:
                shard_id = node.queue.popleft()
            elif not node.outstanding:
                victim = self._steal_victim(node)
                if victim is None:
                    break
                shard_id = victim.queue.pop()  # tail: last-scheduled work
                stolen = True
                self.steals += 1
                obs.counter("cluster.steals").inc()
                flight_event(
                    "steal",
                    thief=node.node_id,
                    victim=victim.node_id,
                    shard=shard_id,
                )
            else:
                break
            if self._grant_shard(node, shard_id, stolen):
                granted = True
        return granted

    def _steal_victim(self, thief: _NodeState) -> _NodeState | None:
        candidates = [
            n
            for n in self._nodes.values()
            if n.live and n is not thief and n.queue
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda n: (len(n.queue), -n.node_id))

    def _grant_shard(
        self, node: _NodeState, shard_id: int, stolen: bool
    ) -> bool:
        """Lease one shard to a node; returns False if it was already done."""
        task = self._tasks[shard_id]
        first_grant = shard_id not in self._shard_t0
        if first_grant:
            self._shard_t0[shard_id] = time.monotonic()
        if self._journal is not None:
            self._journal.shard_start(
                shard_id, task.start, task.stop, node=node.node_id
            )
        self._store.start_shard(shard_id, task.start, task.stop)
        self._store.register_ligands([(o, t) for o, t, _ in task.items])
        already = self._store.done_ordinals(task.start, task.stop)
        pending = [item for item in task.items if item[0] not in already]
        if not pending:
            # Every ordinal is already committed (resume, or a dead node
            # that reported everything before its lease was reclaimed).
            self._finish_shard(shard_id, node)
            return False
        lease = _Lease(
            shard_id=shard_id,
            pending={item[0] for item in pending},
            stolen=stolen,
        )
        node.outstanding[shard_id] = lease
        try:
            node.channel.send(
                {
                    "kind": "lease",
                    "shard_id": shard_id,
                    "start": task.start,
                    "stop": task.stop,
                    "stolen": stolen,
                    "items": [list(item) for item in pending],
                }
            )
        except (ProtocolError, ConnectionClosed) as exc:
            # The grantee's channel is already broken: reclaim immediately
            # (the lease was just registered, so _node_lost re-queues it).
            self._node_lost(node, f"lease send failed: {exc}")
            return False
        obs.counter("cluster.leases").inc()
        flight_event(
            "lease.grant",
            shard=shard_id,
            node=node.node_id,
            stolen=stolen,
            pending=len(pending),
        )
        return True

    def _on_steal(self, node: _NodeState) -> None:
        if not self._partitioned:
            # Pre-partition idling (a fast warm-up racing slower peers):
            # nothing is schedulable yet, tell the node to keep waiting.
            node.channel.send({"kind": "drain"})
            return
        if not self._grant(node):
            node.channel.send({"kind": "drain"})

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _on_result(self, node: _NodeState, message: dict) -> None:
        shard_id = int(message["shard_id"])
        ordinal = int(message["ordinal"])
        title = str(message["title"])
        sent_s = message.get("sent_s")
        # Worker and coordinator perf_counter share CLOCK_MONOTONIC on one
        # host, so wire time is directly computable; across hosts it is
        # best-effort and clamped at zero.
        wire_s = (
            max(0.0, time.perf_counter() - float(sent_s))
            if sent_s is not None
            else None
        )
        with obs.span(
            "cluster.ligand.commit",
            ordinal=ordinal,
            shard=shard_id,
            src_node=node.node_id,
        ) as commit_tags:
            if wire_s is not None:
                commit_tags["wire_s"] = round(wire_s, 6)
            if message.get("ok"):
                self._store.record_result(
                    ordinal,
                    title,
                    float(message["score"]),
                    int(message["spot_index"]),
                    int(message["evaluations"]),
                    wall_seconds=float(message["wall_seconds"]),
                    simulated_seconds=float(message["simulated_seconds"]),
                    attempts=int(message["attempts"]),
                )
                node.done += 1
                obs.counter("campaign.ligands.done").inc()
            else:
                self._store.record_failure(
                    ordinal, title, str(message.get("error", "unknown")),
                    int(message.get("attempts", 1)),
                )
                node.failed += 1
                obs.counter("campaign.ligands.failed").inc()
                if self._raise_on_failure and self._fatal is None:
                    self._fatal = ClusterError(
                        f"ligand {title!r} (ordinal {ordinal}) failed on node "
                        f"{node.node_id}: {message.get('error', 'unknown')}"
                    )
                    self._cond.notify_all()
        if wire_s is not None:
            obs.histogram("cluster.wire.seconds").observe(wire_s)
        self._session_results += 1
        lease = node.outstanding.get(shard_id)
        if lease is None:
            # The shard was reclaimed (this node was presumed dead) and the
            # result arrived anyway. The upsert above is idempotent — the
            # replacement node computes the bitwise-identical row — so the
            # work is kept, just counted as stale.
            self.stale_results += 1
            obs.counter("cluster.results.stale").inc()
            flight_event("result.stale", node=node.node_id, ordinal=ordinal)
            return
        lease.pending.discard(ordinal)
        if not lease.pending:
            del node.outstanding[shard_id]
            self._finish_shard(shard_id, node)
            self._grant(node)
            self._emit_progress(shard_id)
            if len(self._finished) == len(self._tasks):
                self._cond.notify_all()

    def _finish_shard(self, shard_id: int, node: _NodeState) -> None:
        if shard_id in self._finished:
            return
        task = self._tasks[shard_id]
        n_done = len(self._store.done_ordinals(task.start, task.stop))
        n_failed = task.size - n_done
        wall = time.monotonic() - self._shard_t0.get(shard_id, time.monotonic())
        self._store.finish_shard(shard_id, wall)
        if self._journal is not None:
            self._journal.shard_finish(
                shard_id, n_done, n_failed, node=node.node_id
            )
        self._finished.add(shard_id)
        obs.counter("campaign.shards.done").inc()
        obs.histogram("campaign.shard.seconds").observe(wall)
        obs.histogram("cluster.lease.seconds").observe(wall)
        flight_event(
            "shard.finish",
            shard=shard_id,
            node=node.node_id,
            wall=round(wall, 6),
        )
        self._update_disk_gauge()
        obs.mark("campaign.shard", force=True)

    def _update_disk_gauge(self) -> None:
        """Refresh ``store.disk.bytes`` (throttled: the probe walks files)."""
        path = getattr(self._store, "path", None)
        if path is None or str(path) == ":memory:":
            return
        now = time.monotonic()
        if now - self._disk_gauge_t < 0.5:
            return
        self._disk_gauge_t = now
        obs.gauge("store.disk.bytes").set(float(store_disk_bytes(path)))

    def _emit_progress(self, shard_id: int) -> None:
        if self._progress is None:
            return
        counts = self._store.counts()
        elapsed = time.monotonic() - self._session_start
        rate = self._session_results / elapsed if elapsed > 0 else 0.0
        if self._total is None or rate <= 0:
            eta = float("nan")
        else:
            remaining = max(0, self._total - counts["done"] - counts["failed"])
            eta = remaining / rate
        nodes = self._node_rows()
        self._progress(
            ClusterProgress(
                shard_id=shard_id,
                done=counts["done"],
                failed=counts["failed"],
                total=self._total,
                elapsed_seconds=elapsed,
                ligands_per_second=rate,
                eta_seconds=eta,
                nodes=nodes,
            )
        )

    # ------------------------------------------------------------------
    # death + recovery
    # ------------------------------------------------------------------
    def _monitor(self) -> None:
        """Main-thread loop: heartbeat deadlines, completion, fatal errors."""
        with self._cond:
            while True:
                if self._fatal is not None:
                    return
                if len(self._finished) == len(self._tasks):
                    return
                now = time.monotonic()
                for node in list(self._nodes.values()):
                    if (
                        node.live
                        and now - node.last_seen > self.cluster.heartbeat_timeout_s
                    ):
                        self._node_lost(
                            node,
                            f"no message for {now - node.last_seen:.1f}s "
                            f"(timeout {self.cluster.heartbeat_timeout_s}s)",
                        )
                self._cond.wait(self.cluster.heartbeat_interval_s / 2)

    def _node_lost(self, node: _NodeState, reason: str) -> None:
        """Declare a node dead and reassign everything it held (lock held)."""
        if not node.live:
            return
        t0 = time.monotonic()
        node.state = "dead"
        self.node_deaths += 1
        obs.counter("cluster.node_deaths").inc()
        node.channel.close()
        orphan_leases = list(node.outstanding.values())
        node.outstanding.clear()
        requeue = list(node.queue)
        node.queue.clear()
        survivors = [
            n for n in self._nodes.values() if n.live and n.state == "active"
        ]
        reclaimed: list[int] = []
        for lease in orphan_leases:
            task = self._tasks[lease.shard_id]
            done = self._store.done_ordinals(task.start, task.stop)
            if len(done) >= task.size:
                self._finish_shard(lease.shard_id, node)
            else:
                reclaimed.append(lease.shard_id)
        # Reclaimed (partially-done) shards jump the line; the untouched
        # queue remainder spreads over the shortest surviving backlogs.
        if survivors:
            for shard_id in reclaimed:
                target = min(survivors, key=_NodeState.backlog)
                target.queue.appendleft(shard_id)
            for shard_id in requeue:
                target = min(survivors, key=_NodeState.backlog)
                target.queue.append(shard_id)
            for n in survivors:
                self._grant(n)
        else:
            self._orphans.extend(reclaimed)
            self._orphans.extend(requeue)
            if len(self._finished) < len(self._tasks) and not any(
                n.live for n in self._nodes.values()
            ):
                self._fatal = ClusterError(
                    f"node {node.node_id} died ({reason}) and no nodes "
                    "survive; the campaign store remains resumable"
                )
        self.recovery_seconds = time.monotonic() - t0
        obs.gauge("cluster.recovery.seconds").set(self.recovery_seconds)
        # The bye will never come: fold in whatever telemetry the node
        # shipped in its last heartbeat so its trace lanes survive the kill.
        if node.pending_telemetry is not None:
            obs.merge(retag_snapshot(node.pending_telemetry, node.node_id))
            node.pending_telemetry = None
        flight_event(
            "node.dead",
            node=node.node_id,
            reason=reason,
            reclaimed=reclaimed,
            requeued=len(requeue),
        )
        if self._flight_path is not None:
            # Best-effort black-box dump the moment a death is detected,
            # so the forensic record survives even if *we* die next.
            dump_flight(self._flight_path)
        self._cond.notify_all()

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def _on_bye(self, node: _NodeState, message: dict) -> None:
        node.state = "done"
        node.done = int(message.get("done", node.done))
        node.failed = int(message.get("failed", node.failed))
        # A clean bye carries the node's final telemetry; drop the
        # heartbeat-shipped snapshot so nothing merges twice.
        node.pending_telemetry = None
        telemetry = message.get("telemetry")
        if isinstance(telemetry, dict):
            obs.merge(retag_snapshot(telemetry, node.node_id))
        flight_event("node.bye", node=node.node_id, done=node.done)
        node.channel.close()
        self._cond.notify_all()

    def _shutdown_fleet(self) -> None:
        with self._lock:
            self._closing = True
            live = [n for n in self._nodes.values() if n.live]
            for node in live:
                try:
                    node.channel.send({"kind": "shutdown"})
                except (ProtocolError, ConnectionClosed):
                    node.state = "dead"
        # Wait (bounded) for handler threads to collect the byes — they
        # carry each node's telemetry snapshot.
        deadline = time.monotonic() + self.cluster.message_timeout_s
        with self._cond:
            while any(n.live for n in self._nodes.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(remaining, 0.2))
            for node in self._nodes.values():
                node.channel.close()
        try:
            self._listener.close()
        except OSError:
            pass
