"""Local campaign fleet: spawn N worker-node processes and coordinate them.

:class:`ClusterCampaign` is the bridge between :class:`~repro.campaign.runner.
CampaignRunner` (which owns the science config, store lifecycle, and resume
reconciliation) and the cluster subsystem (which owns distribution). The
runner delegates its ``_execute`` phase here when ``nodes >= 2``; everything
before (config hashing, journal replay, completed-campaign no-ops) and the
result contract after (an open store, bitwise identical to a single-node
run) are unchanged.

Execution shape, in order:

1. **Plan** — stream the library once, cutting it into the same shards the
   single-node runner would execute, with the same collision-free titles.
   Descriptor-backed libraries (synthetic, pdb-dir) lease ordinals only and
   workers regenerate ligands locally; one-shot in-memory sources ship each
   ligand inline in its lease.
2. **Listen, then fork** — the coordinator socket binds first (workers never
   race it), worker processes fork *before* any coordinator thread starts
   (fork + threads don't mix), and each worker resets its inherited
   telemetry and dials back in.
3. **Serve** — the :class:`~repro.cluster.coordinator.Coordinator` runs the
   warm-up barrier, Eq. 1 partition, leasing/stealing, and death recovery.
4. **Finalise** — on full completion, ``mark_complete`` + journal finish,
   exactly as the single-node path; on fatal fleet errors the store is
   closed and the error propagates (the store remains resumable).

``spawn=False`` runs the coordinator without local workers: ``repro-vs
cluster coordinator`` uses it to serve remote ``repro-vs cluster worker``
processes over real sockets.
"""

from __future__ import annotations

import multiprocessing
import socket
import sys
import uuid

from repro import observability as obs
from repro.campaign.library import iter_shards, resolve_title
from repro.campaign.store import CampaignStore
from repro.errors import ClusterError
from repro.metaheuristics.template import MetaheuristicSpec
from repro.observability.flight import flight_dir as _flight_dir
from repro.observability.flight import flight_event, flight_recorder

from repro.cluster.config import ClusterConfig, scoring_descriptor
from repro.cluster.coordinator import Coordinator, ShardTask
from repro.cluster.protocol import ligand_to_payload, molecule_to_payload

__all__ = ["ClusterCampaign", "execute_fleet"]

#: Library kinds whose descriptors rebuild bitwise on a worker — their
#: leases carry ordinals only, never ligand payloads.
_DESCRIPTOR_KINDS = frozenset({"synthetic", "pdb-dir", "smiles", "csv"})


def _worker_main(host: str, port: int, attempts: int, backoff_s: float) -> None:
    """Child-process entry point (top-level so spawn contexts can pickle it)."""
    from repro.cluster.worker import run_worker

    sys.exit(
        run_worker(host, port, connect_attempts=attempts, connect_backoff_s=backoff_s)
    )


def _mp_context():
    """Prefer fork: workers inherit loaded modules instead of re-importing
    the scientific stack per process (seconds each on small CI hosts)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class ClusterCampaign:
    """One distributed execution of a campaign (see module docstring).

    Tests and benchmarks reach the moving parts through ``processes`` (the
    local worker ``multiprocessing.Process`` handles — SIGKILL one to
    exercise recovery) and ``coordinator`` (live fleet state); ``summary``
    holds the serve() outcome (steals, node deaths, recovery seconds) after
    completion.
    """

    def __init__(
        self,
        runner,
        *,
        nodes: int,
        cluster: ClusterConfig | None = None,
        spawn: bool = True,
    ) -> None:
        if nodes < 1:
            raise ClusterError(f"a fleet needs nodes >= 1, got {nodes}")
        if isinstance(runner.metaheuristic, MetaheuristicSpec):
            raise ClusterError(
                "a custom MetaheuristicSpec cannot cross the cluster node "
                "boundary; use a preset name (M1-M4) or run with nodes=0"
            )
        if runner.refine_calibration:
            raise ClusterError(
                "refine_calibration is not supported with nodes >= 2: worker "
                "nodes cannot fold their observations into one table safely"
            )
        self.runner = runner
        self.nodes = int(nodes)
        self.cluster = cluster if cluster is not None else ClusterConfig()
        self.spawn = bool(spawn)
        # Fail fast on anything that cannot be rebuilt on a worker.
        self._scoring_descriptor = scoring_descriptor(runner.scoring)
        self._node_name = self._validate_node_spec(runner.node)
        self.processes: list = []
        self.coordinator: Coordinator | None = None
        self.summary: dict | None = None
        # Campaign-scoped trace id: stamped on every protocol frame in both
        # directions and tagged onto worker spans, so one wire capture or
        # merged timeline is attributable to exactly one fleet execution.
        self.trace_id = uuid.uuid4().hex[:16]
        store_path = str(getattr(runner, "store_path", ":memory:"))
        self.flight_dir = (
            None if store_path == ":memory:" else _flight_dir(store_path)
        )

    @staticmethod
    def _validate_node_spec(node) -> str | None:
        if node is None:
            return None
        from repro.hardware.node import hertz, jupiter

        factories = {"jupiter": jupiter, "hertz": hertz}
        expected = factories.get(node.name)
        if expected is None or expected() != node:
            raise ClusterError(
                f"node spec {node.name!r} cannot be reconstructed on a worker "
                "node; distributed campaigns support the built-in "
                "jupiter/hertz models"
            )
        return node.name

    # ------------------------------------------------------------------
    # plan
    # ------------------------------------------------------------------
    def _plan(self, finished: set[int]) -> tuple[list[ShardTask], int]:
        """Stream the library into leasable shard tasks (single pass)."""
        runner = self.runner
        library_kind = runner.config["library"].get("kind")
        ship = library_kind not in _DESCRIPTOR_KINDS
        seen_titles: set[str] = set()
        tasks: list[ShardTask] = []
        n_streamed = 0
        for shard, items in iter_shards(runner.source, runner.shard_size):
            titled = [
                (ordinal, ligand, resolve_title(ligand.title, ordinal, seen_titles))
                for ordinal, ligand in items
            ]
            n_streamed += len(items)
            if shard.shard_id in finished:
                obs.counter("campaign.shards.skipped").inc()
                continue
            tasks.append(
                ShardTask(
                    shard_id=shard.shard_id,
                    start=shard.start,
                    stop=shard.stop,
                    items=tuple(
                        (ordinal, title, ligand_to_payload(ligand) if ship else None)
                        for ordinal, ligand, title in titled
                    ),
                )
            )
        return tasks, n_streamed

    def _config_base(self) -> dict:
        """Everything a worker needs to rebuild the campaign locally."""
        runner = self.runner
        library_kind = runner.config["library"].get("kind")
        calibration = (
            None
            if runner._autotune is None
            else runner._autotune.selector.table.to_json()
        )
        return {
            "campaign": {
                "seed": runner.seed,
                "n_spots": runner.n_spots,
                "metaheuristic": str(runner.metaheuristic),
                "workload_scale": runner.workload_scale,
                "mode": runner.mode,
                "max_attempts": runner.max_attempts,
                "backoff_base": runner.backoff_base,
            },
            "execution": {
                "host_workers": runner.host_workers,
                "parallel_mode": runner.parallel_mode,
                "prune_spots": runner.prune_spots,
                "persistent_pool": runner.persistent_pool,
                "scoring": self._scoring_descriptor,
                "node": self._node_name,
            },
            "cluster": self.cluster.to_wire(),
            "receptor": molecule_to_payload(runner.receptor),
            "library": (
                runner.config["library"]
                if library_kind in _DESCRIPTOR_KINDS
                else None
            ),
            "calibration": calibration,
            "trace": self.trace_id,
            "flight_dir": (
                None if self.flight_dir is None else str(self.flight_dir)
            ),
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, store: CampaignStore, finished: set[int]) -> CampaignStore:
        """Run the planned fleet to completion against an open store."""
        runner = self.runner
        try:
            with obs.span("cluster.fleet", nodes=self.nodes, trace=self.trace_id):
                # This process is the fleet's coordinator from here on; the
                # black-box dump should say so (workers retag in run_worker).
                flight_recorder().role = "coordinator"
                tasks, n_streamed = self._plan(finished)
                flight_event(
                    "fleet.start",
                    nodes=self.nodes,
                    shards=len(tasks),
                    trace=self.trace_id,
                )
                obs.gauge("cluster.fleet.nodes").set(self.nodes)
                obs.gauge("cluster.fleet.shards").set(len(tasks))
                listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                try:
                    listener.bind((self.cluster.host, self.cluster.port))
                except OSError as exc:
                    listener.close()
                    raise ClusterError(
                        f"cannot bind cluster coordinator to "
                        f"{self.cluster.host}:{self.cluster.port}: {exc}"
                    ) from exc
                listener.listen(self.nodes + 2)
                port = listener.getsockname()[1]
                try:
                    if self.spawn:
                        # Fork strictly before the coordinator spins up its
                        # accept/handler threads: forking a multithreaded
                        # process is where deadlocks live.
                        ctx = _mp_context()
                        self.processes = [
                            ctx.Process(
                                target=_worker_main,
                                args=(
                                    self.cluster.host,
                                    port,
                                    self.cluster.connect_attempts,
                                    self.cluster.connect_backoff_s,
                                ),
                                name=f"cluster-node-{i}",
                                daemon=True,
                            )
                            for i in range(self.nodes)
                        ]
                        for process in self.processes:
                            process.start()
                    self.coordinator = Coordinator(
                        listener,
                        store=store,
                        journal=runner.journal,
                        tasks=tasks,
                        config_base=self._config_base(),
                        cluster=self.cluster,
                        expected_nodes=self.nodes,
                        total=runner.source.count(),
                        progress=runner._progress,
                        raise_on_failure=runner.raise_on_failure,
                        trace_id=self.trace_id,
                        flight_path=(
                            None
                            if self.flight_dir is None
                            else self.flight_dir / "coordinator.flight"
                        ),
                    )
                    self.summary = self.coordinator.serve()
                finally:
                    self._reap_workers()
                store.mark_complete(n_streamed)
                if runner.journal is not None:
                    runner.journal.campaign_finish(n_streamed)
        except BaseException:
            store.close()
            raise
        return store

    def _reap_workers(self) -> None:
        """Join worker processes; anything still alive gets terminated."""
        for process in self.processes:
            process.join(timeout=self.cluster.message_timeout_s)
        for process in self.processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=2.0)


def execute_fleet(
    runner,
    store: CampaignStore,
    finished: set[int],
    *,
    nodes: int,
    cluster: ClusterConfig | None = None,
    spawn: bool = True,
) -> CampaignStore:
    """Runner delegation hook: distribute one campaign execution phase.

    Called by :meth:`CampaignRunner._execute` when the runner was built with
    ``nodes >= 2``. The fleet object stays reachable as ``runner.fleet`` so
    tests can reach the worker processes (e.g. to SIGKILL one mid-run).
    """
    fleet = ClusterCampaign(runner, nodes=nodes, cluster=cluster, spawn=spawn)
    runner.fleet = fleet
    return fleet.execute(store, finished)
