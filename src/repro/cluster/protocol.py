"""Length-prefixed JSON message protocol for the campaign cluster.

One campaign, N worker nodes, stdlib sockets only. Every message is a JSON
object carrying a ``kind`` key, framed as a 4-byte big-endian length prefix
followed by the UTF-8 payload — the simplest framing that survives TCP's
stream semantics. The vocabulary (see :data:`MESSAGE_KINDS`):

==============  =========  =====================================================
kind            direction  meaning
==============  =========  =====================================================
``hello``       w -> c     worker announces itself (protocol version, pid)
``config``      c -> w     campaign + execution config, assigned node id
``warmup``      w -> c     Eq. 1 probe result (seconds for one probe dock)
``lease``       c -> w     a shard grant: ordinals, titles, optional ligands
``result``      w -> c     one ligand's outcome (done or failed)
``steal``       w -> c     idle worker asks for work from another node's queue
``drain``       c -> w     no work available right now; keep listening
``heartbeat``   w -> c     liveness + progress counters
``shutdown``    c -> w     campaign over (or aborting); worker should exit
``bye``         w -> c     worker's final telemetry snapshot before exiting
==============  =========  =====================================================

Timeout discipline: receives wait up to an *idle* timeout for the first
header byte (``None`` return — the caller decides whether silence is fine),
but once a frame has begun, the rest must arrive within the per-message
timeout or the channel is declared broken (:class:`~repro.errors.ProtocolError`)
— a frame boundary is the only safe place to give up. EOF at a boundary
raises :class:`~repro.errors.ConnectionClosed`, which is how both sides
detect a SIGKILLed peer immediately instead of waiting out a heartbeat.

Ligands cross the wire as plain JSON payloads (coords/elements/charges/
title) — :func:`ligand_to_payload` / :func:`ligand_from_payload` round-trip
bitwise because coordinates serialise through ``repr``-exact ``float``.

Trace context: a :class:`Channel` can be bound to a campaign-scoped trace
id (``channel.trace_id = ...``); from then on every outgoing frame carries
a ``"trace"`` key, so any capture of the wire can be attributed to its
campaign. The coordinator mints the id, ships it in ``config``, and the
worker binds its own channel to the same id — both directions of every
conversation are stamped.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import numpy as np

from repro.errors import ClusterError, ConnectionClosed, ProtocolError
from repro.molecules.structures import Ligand, Molecule, Receptor

__all__ = [
    "PROTOCOL_VERSION",
    "MESSAGE_KINDS",
    "MAX_MESSAGE_BYTES",
    "DEFAULT_MESSAGE_TIMEOUT_S",
    "send_message",
    "recv_message",
    "connect",
    "Channel",
    "ligand_to_payload",
    "ligand_from_payload",
    "molecule_to_payload",
    "receptor_from_payload",
]

#: Bumped on any incompatible wire change; ``hello`` carries it and the
#: coordinator refuses mismatched workers.
PROTOCOL_VERSION: int = 1

#: Every legal ``kind`` value (either direction).
MESSAGE_KINDS: frozenset[str] = frozenset(
    {
        "hello",
        "config",
        "warmup",
        "lease",
        "result",
        "steal",
        "drain",
        "heartbeat",
        "shutdown",
        "bye",
    }
)

#: Hard cap on one frame. Generous: a 64-ligand shard of 50-atom ligands
#: shipped inline is ~500 KB; telemetry snapshots are smaller still.
MAX_MESSAGE_BYTES: int = 64 * 1024 * 1024

#: Per-message completion timeout once a frame has started arriving.
DEFAULT_MESSAGE_TIMEOUT_S: float = 10.0

_HEADER = struct.Struct(">I")


def send_message(sock: socket.socket, message: dict, timeout: float) -> None:
    """Frame and send one message; raises ProtocolError on any failure."""
    kind = message.get("kind")
    if kind not in MESSAGE_KINDS:
        raise ProtocolError(f"cannot send message of unknown kind {kind!r}")
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"{kind} message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame cap"
        )
    sock.settimeout(timeout)
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except socket.timeout as exc:
        raise ProtocolError(
            f"timed out sending {kind} message after {timeout}s"
        ) from exc
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ConnectionClosed(f"peer closed while sending {kind}: {exc}") from exc


def _recv_exact(
    sock: socket.socket, n: int, timeout: float, context: str
) -> bytes:
    """Read exactly ``n`` bytes; raises on EOF or mid-read timeout."""
    chunks: list[bytes] = []
    remaining = n
    deadline = time.monotonic() + timeout
    while remaining > 0:
        budget = deadline - time.monotonic()
        if budget <= 0:
            raise ProtocolError(f"timed out {context} ({n - remaining}/{n} bytes)")
        sock.settimeout(budget)
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as exc:
            raise ProtocolError(
                f"timed out {context} ({n - remaining}/{n} bytes)"
            ) from exc
        except (ConnectionResetError, OSError) as exc:
            raise ConnectionClosed(f"peer closed {context}: {exc}") from exc
        if not chunk:
            raise ConnectionClosed(f"peer closed {context}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket,
    timeout: float = DEFAULT_MESSAGE_TIMEOUT_S,
    idle_timeout: float | None = None,
) -> dict | None:
    """Receive one message.

    Waits up to ``idle_timeout`` (default: ``timeout``) for the first byte;
    returns ``None`` if nothing arrives — silence at a frame boundary is the
    caller's policy decision. Once a frame starts, the remainder must land
    within ``timeout``. EOF at a frame boundary raises
    :class:`ConnectionClosed`; EOF or a stall mid-frame raises
    :class:`ProtocolError` (the stream is unrecoverable either way).
    """
    wait = timeout if idle_timeout is None else idle_timeout
    sock.settimeout(wait if wait > 0 else 0.000001)
    try:
        first = sock.recv(1)
    except socket.timeout:
        return None
    except (ConnectionResetError, OSError) as exc:
        raise ConnectionClosed(f"peer closed: {exc}") from exc
    if not first:
        raise ConnectionClosed("peer closed the channel")
    header = first + _recv_exact(sock, _HEADER.size - 1, timeout, "reading frame header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte cap (corrupt stream?)"
        )
    payload = _recv_exact(sock, length, timeout, "reading frame payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or message.get("kind") not in MESSAGE_KINDS:
        raise ProtocolError(f"frame is not a known message: {str(message)[:120]}")
    return message


def connect(
    host: str,
    port: int,
    attempts: int = 8,
    backoff_s: float = 0.1,
    timeout: float = DEFAULT_MESSAGE_TIMEOUT_S,
) -> socket.socket:
    """Dial a coordinator/worker with bounded retry and exponential backoff.

    Workers race their coordinator's ``listen()``; refusals during startup
    are expected and retried. The final failure raises
    :class:`~repro.errors.ClusterError` naming the address.
    """
    if attempts < 1:
        raise ClusterError(f"connect attempts must be >= 1, got {attempts}")
    delay = backoff_s
    last: Exception | None = None
    for attempt in range(attempts):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if attempt + 1 < attempts:
                time.sleep(delay)
                delay = min(delay * 2, 2.0)
    raise ClusterError(
        f"cannot connect to cluster peer at {host}:{port} "
        f"after {attempts} attempts: {last}"
    )


class Channel:
    """One framed, thread-safe message stream over a connected socket.

    Sends are serialised under a lock so a worker's heartbeat thread and its
    result-reporting main thread (or a coordinator handler topping up leases
    while another thread broadcasts shutdown) never interleave frames.
    Receives are single-consumer by construction — exactly one thread per
    side reads a channel.

    When ``trace_id`` is set, every outgoing frame that does not already
    carry a ``"trace"`` key is stamped with it (the caller's dict is not
    mutated).
    """

    def __init__(
        self,
        sock: socket.socket,
        timeout: float = DEFAULT_MESSAGE_TIMEOUT_S,
        trace_id: str | None = None,
    ) -> None:
        self._sock = sock
        self.timeout = timeout
        self.trace_id = trace_id
        self._send_lock = threading.Lock()
        self._closed = False

    def send(self, message: dict) -> None:
        if self.trace_id is not None and "trace" not in message:
            message = {**message, "trace": self.trace_id}
        with self._send_lock:
            if self._closed:
                raise ConnectionClosed("channel is closed")
            send_message(self._sock, message, self.timeout)

    def recv(self, idle_timeout: float | None = None) -> dict | None:
        if self._closed:
            raise ConnectionClosed("channel is closed")
        return recv_message(self._sock, self.timeout, idle_timeout=idle_timeout)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def peer(self) -> str:
        try:
            host, port = self._sock.getpeername()[:2]
            return f"{host}:{port}"
        except OSError:
            return "<disconnected>"

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# molecule payloads
# ----------------------------------------------------------------------
def molecule_to_payload(molecule: Molecule) -> dict:
    """JSON payload for one molecule (everything scoring depends on)."""
    return {
        "title": molecule.title,
        "coords": np.asarray(molecule.coords, dtype=np.float64).tolist(),
        "elements": [str(e) for e in molecule.elements],
        "charges": np.asarray(molecule.charges, dtype=np.float64).tolist(),
    }


def _payload_arrays(payload: dict) -> tuple[np.ndarray, list[str], np.ndarray, str]:
    try:
        coords = np.asarray(payload["coords"], dtype=np.float64)
        elements = [str(e) for e in payload["elements"]]
        charges = np.asarray(payload["charges"], dtype=np.float64)
        title = str(payload.get("title", ""))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed molecule payload: {exc}") from exc
    return coords, elements, charges, title


def ligand_to_payload(ligand: Ligand) -> dict:
    """Serialise a ligand for an inline lease payload."""
    return molecule_to_payload(ligand)


def ligand_from_payload(payload: dict) -> Ligand:
    """Rebuild a ligand from its wire payload (bitwise round-trip)."""
    coords, elements, charges, title = _payload_arrays(payload)
    return Ligand(coords, elements, charges, title=title)


def receptor_from_payload(payload: dict) -> Receptor:
    """Rebuild the staged receptor from the config message."""
    coords, elements, charges, title = _payload_arrays(payload)
    return Receptor(coords, elements, charges, title=title)
