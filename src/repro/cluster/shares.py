"""Eq. 1 generalised from devices-in-a-node to nodes-in-a-fleet.

The paper's warm-up (§3.3) measures each GPU on a few real iterations and
assigns conformation shares proportional to ``1 / Percent`` where
``Percent = t_device / t_slowest`` (Eq. 1). The cluster coordinator applies
the identical rule one level up: each worker node docks one probe ligand at
campaign settings during its hello/warm-up handshake, reports the measured
seconds, and receives a share of the campaign's *shards* proportional to its
measured throughput. Work-stealing then corrects any drift at run time,
exactly as the host runtime's dynamic mode corrects Eq. 1 inside a node.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence

import numpy as np

from repro import observability as obs
from repro.engine.partition import proportional_partition
from repro.errors import ClusterError

__all__ = ["node_shares", "partition_shards"]


def node_shares(probe_seconds: Mapping[int, float]) -> dict[int, float]:
    """Eq. 1 throughput weights from per-node warm-up probe times.

    ``Percent_i = t_i / t_slowest``; the returned weights are proportional
    to ``1 / Percent_i`` and sum to 1. Non-positive or non-finite probe
    times fall back to the slowest measured time (a node whose probe
    misfired gets the most conservative share, not a crash).
    """
    if not probe_seconds:
        raise ClusterError("node_shares needs at least one probe measurement")
    nodes = sorted(probe_seconds)
    times = np.array([float(probe_seconds[n]) for n in nodes], dtype=np.float64)
    finite = times[np.isfinite(times) & (times > 0)]
    if finite.size == 0:
        # No usable measurement anywhere -> equal shares.
        weights = np.full(len(nodes), 1.0 / len(nodes))
    else:
        slowest = float(finite.max())
        times = np.where(np.isfinite(times) & (times > 0), times, slowest)
        percent = times / slowest
        inv = 1.0 / percent
        weights = inv / inv.sum()
    shares = {node: float(w) for node, w in zip(nodes, weights)}
    for node in nodes:
        obs.gauge("cluster.node.probe_seconds", node=node).set(
            float(probe_seconds[node])
        )
        obs.gauge("cluster.node.weight", node=node).set(shares[node])
    return shares


def partition_shards(
    shard_ids: Sequence[int], weights: Mapping[int, float]
) -> dict[int, deque[int]]:
    """Split an ordered shard list into contiguous per-node queues.

    Largest-remainder apportionment over the Eq. 1 weights (via
    :func:`repro.engine.partition.proportional_partition`, the same
    partitioner the in-node scheduler uses), cut into *contiguous* runs so
    early ordinals finish early regardless of which node owns them — the
    property that keeps ``campaign top`` meaningful mid-run. Conservation
    is exact: every shard lands in exactly one queue.
    """
    nodes = sorted(weights)
    if not nodes:
        raise ClusterError("partition_shards needs at least one node")
    w = np.array([max(0.0, float(weights[n])) for n in nodes], dtype=np.float64)
    if w.sum() <= 0:
        w = np.ones(len(nodes))
    counts = proportional_partition(len(shard_ids), w)
    queues: dict[int, deque[int]] = {}
    cursor = 0
    for node, count in zip(nodes, counts):
        queues[node] = deque(shard_ids[cursor : cursor + int(count)])
        cursor += int(count)
    return queues
