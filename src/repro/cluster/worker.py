"""Worker-node process: one node of a distributed campaign fleet.

A worker owns the same execution stack a single-node campaign does — its own
:class:`~repro.engine.host_runtime.PersistentHostRuntime` (pool spawned
once, receptor staged once, Eq. 1 warm-up paid once), the same bounded-retry
dock loop, the same ``seed + ordinal`` seeding rule — and reports each
ligand's outcome to the coordinator as a ``result`` message the moment it is
docked. The coordinator, not the worker, owns the store: a worker that dies
mid-shard loses nothing that was already reported.

Lifecycle (one TCP channel, messages per :mod:`repro.cluster.protocol`):

1. dial the coordinator (bounded retry), send ``hello``;
2. receive ``config`` — campaign science settings, execution knobs, the
   receptor inline, optionally the library descriptor and autotune table;
3. dock one warm-up probe ligand, send ``warmup`` with the measured seconds
   (the coordinator's Eq. 1 input — this same dock also warms the pool);
4. serve: process leased ligands one at a time, interleaving protocol
   receives between docks so shutdown/lease top-ups are handled promptly;
   when idle, ask to ``steal``; heartbeat from a side thread throughout;
5. on ``shutdown``, send ``bye`` carrying the full local telemetry snapshot
   (the coordinator retags it ``node=<id>`` and merges it).

The worker is deliberately single-threaded around docking: message handling
happens *between* ligands, which bounds the protocol latency by one dock but
keeps the science path identical to the single-node runner.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from pathlib import Path

from repro import observability as obs
from repro.errors import ClusterError, ConnectionClosed, ProtocolError
from repro.observability.flight import (
    dump_flight,
    flight_event,
    flight_recorder,
    install_flight_signal_dump,
)

from repro.cluster.config import ClusterConfig, build_scoring
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Channel,
    connect,
    ligand_from_payload,
    receptor_from_payload,
)

__all__ = ["run_worker", "WorkerNode"]

#: Seed offset for the warm-up probe ligand — far outside any campaign's
#: ordinal range so the probe can never collide with a real ligand's stream.
PROBE_SEED_OFFSET = 999_331


def _build_node_spec(name: str | None):
    """Rebuild a named hardware model on the worker side (or ``None``)."""
    if name is None:
        return None
    from repro.hardware.node import hertz, jupiter

    factories = {"jupiter": jupiter, "hertz": hertz}
    if name not in factories:
        raise ClusterError(
            f"node spec {name!r} cannot be reconstructed on a worker node; "
            "distributed campaigns support the built-in jupiter/hertz models"
        )
    return factories[name]()


@dataclass
class _Lease:
    """One granted shard: ordinals with titles, ligands lazy or inline."""

    shard_id: int
    start: int
    stop: int
    stolen: bool
    items: deque = field(default_factory=deque)  # (ordinal, title, Ligand)
    accepted_s: float = 0.0  # perf_counter at acceptance, for lease-wait


class WorkerNode:
    """The serving half of a worker process (post-``config``)."""

    def __init__(self, channel: Channel, config_message: dict) -> None:
        try:
            self.node_id = int(config_message["node"])
            campaign = config_message["campaign"]
            execution = config_message["execution"]
            self.cluster = ClusterConfig.from_wire(config_message["cluster"])
            self.receptor = receptor_from_payload(config_message["receptor"])
            self.library = config_message.get("library")
            calibration = config_message.get("calibration")
            self.seed = int(campaign["seed"])
            self.n_spots = int(campaign["n_spots"])
            self.metaheuristic = str(campaign["metaheuristic"])
            self.workload_scale = float(campaign["workload_scale"])
            self.mode = str(campaign["mode"])
            self.max_attempts = int(campaign["max_attempts"])
            self.backoff_base = float(campaign["backoff_base"])
            self.host_workers = int(execution["host_workers"])
            self.parallel_mode = str(execution["parallel_mode"])
            self.prune_spots = bool(execution["prune_spots"])
            self.persistent_pool = bool(execution["persistent_pool"])
            self.scoring = build_scoring(execution.get("scoring"))
            self.node_spec = _build_node_spec(execution.get("node"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed config message: {exc}") from exc
        self.channel = channel
        self.channel.timeout = self.cluster.message_timeout_s
        # Campaign-scoped trace context: every frame we send from here on
        # carries the coordinator-minted trace id, and our spans are tagged
        # with it so the merged fleet timeline is campaign-attributable.
        self.trace_id = config_message.get("trace")
        self.channel.trace_id = self.trace_id
        flight_dir = config_message.get("flight_dir")
        self.flight_path = (
            None
            if flight_dir is None
            else Path(flight_dir) / f"node{self.node_id}.flight"
        )
        self._telemetry_shipped_t = 0.0
        self._autotune = None
        if calibration is not None:
            from repro.scoring.autotune import AutotuneController, CalibrationTable

            self._autotune = AutotuneController(
                CalibrationTable.from_json(calibration),
                prune_spots=self.prune_spots,
            )
        self._source = None  # built lazily from the library descriptor
        self._runtime = None
        self._leases: deque[_Lease] = deque()
        self._done = 0
        self._failed = 0
        self._stop = threading.Event()
        self._heartbeat_error: Exception | None = None
        from repro.molecules.spots import find_spots

        self.spots = find_spots(self.receptor, self.n_spots)

    def _trace_tags(self) -> dict:
        return {} if self.trace_id is None else {"trace": self.trace_id}

    # ------------------------------------------------------------------
    # warm-up
    # ------------------------------------------------------------------
    def start_runtime(self) -> None:
        if self.host_workers > 0 and self.persistent_pool:
            from repro.engine.host_runtime import PersistentHostRuntime

            self._runtime = PersistentHostRuntime(
                self.receptor,
                self.spots,
                n_workers=self.host_workers,
                mode=self.parallel_mode,
                scoring=self.scoring,
                prune_spots=self.prune_spots,
                autotune=self._autotune,
            )

    def probe(self) -> float:
        """Dock one throwaway ligand at campaign settings; return seconds.

        This is the fleet-level Eq. 1 measurement *and* the pool warm-up in
        one: the first dock pays pool spawn + receptor staging, so the probe
        time reflects steady-state per-ligand cost only if the pool is
        already warm — which is exactly why the probe dock happens after
        :meth:`start_runtime` and is itself discarded.
        """
        from repro.molecules.synthetic import generate_ligand

        probe_ligand = generate_ligand(
            self.cluster.probe_atoms,
            seed=self.seed + PROBE_SEED_OFFSET,
            title="__probe__",
        )
        t0 = time.perf_counter()
        with obs.span("cluster.worker.probe", **self._trace_tags()):
            self._dock(probe_ligand, ordinal=0)
        measured = time.perf_counter() - t0
        flight_event("probe", node=self.node_id, seconds=round(measured, 6))
        override = self.cluster.probe_override_for(self.node_id)
        return measured if override is None else float(override)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve(self) -> int:
        """Main loop: alternate protocol receives with single-ligand docks."""
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="cluster-heartbeat", daemon=True
        )
        heartbeat.start()
        asked_at: float | None = None
        try:
            while True:
                if self._heartbeat_error is not None:
                    return 1
                busy = bool(self._leases)
                idle = 0.0 if busy else self.cluster.heartbeat_interval_s
                message = self.channel.recv(idle_timeout=idle)
                if message is not None:
                    kind = message["kind"]
                    if kind == "lease":
                        self._leases.append(self._accept_lease(message))
                        asked_at = None
                        continue
                    if kind == "drain":
                        # Nothing unleased right now; keep listening (work
                        # can reappear via node-death reclamation).
                        asked_at = time.monotonic()
                        continue
                    if kind == "shutdown":
                        self._send_bye()
                        return 0
                    raise ProtocolError(
                        f"worker received unexpected {kind} message"
                    )
                if busy:
                    self._process_one()
                    continue
                now = time.monotonic()
                if asked_at is None or now - asked_at > self.cluster.heartbeat_timeout_s:
                    # Idle with nothing queued: ask the coordinator to steal
                    # from another node's backlog (re-ask defensively after a
                    # heartbeat timeout in case the grant got lost).
                    self.channel.send({"kind": "steal", "node": self.node_id})
                    asked_at = now
        finally:
            self._stop.set()
            runtime, self._runtime = self._runtime, None
            if runtime is not None:
                runtime.close()

    def _accept_lease(self, message: dict) -> _Lease:
        try:
            lease = _Lease(
                shard_id=int(message["shard_id"]),
                start=int(message["start"]),
                stop=int(message["stop"]),
                stolen=bool(message.get("stolen", False)),
            )
            raw_items = list(message["items"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed lease: {exc}") from exc
        lease.accepted_s = time.perf_counter()
        obs.counter("cluster.worker.leases").inc()
        if lease.stolen:
            obs.counter("cluster.worker.leases.stolen").inc()
        flight_event(
            "lease.accept",
            node=self.node_id,
            shard=lease.shard_id,
            stolen=lease.stolen,
            items=len(raw_items),
        )
        # Materialise ligands now: inline payloads decode directly, payload-
        # free items rebuild from the shared library descriptor by ordinal.
        missing = [int(o) for o, _, payload in raw_items if payload is None]
        local = self._materialize(missing)
        for ordinal, title, payload in raw_items:
            ordinal = int(ordinal)
            ligand = (
                local[ordinal] if payload is None else ligand_from_payload(payload)
            )
            lease.items.append((ordinal, str(title), ligand))
        return lease

    def _materialize(self, ordinals: list[int]) -> dict:
        if not ordinals:
            return {}
        if self.library is None:
            raise ProtocolError(
                "lease references library ordinals but no library descriptor "
                "was shipped in the config message"
            )
        from repro.campaign.library import build_source, materialize_ordinals

        if self._source is None:
            self._source = build_source(self.library)
        return materialize_ordinals(self._source, ordinals)

    def _process_one(self) -> None:
        """Dock the next leased ligand and report its result."""
        lease = self._leases[0]
        ordinal, title, ligand = lease.items.popleft()
        if not lease.items and len(self._leases) == 1:
            pass  # nothing to prefetch
        elif self._runtime is not None:
            nxt = lease.items[0] if lease.items else self._leases[1].items[0]
            if nxt is not None:
                self._runtime.hint_next(nxt[2])
        result_message = self._dock_with_retry(lease, ordinal, title, ligand)
        self.channel.send(result_message)
        if self.cluster.service_time_s > 0:
            # Synthetic device service time (benchmark emulation mode).
            time.sleep(self.cluster.service_time_s)
        if not lease.items:
            self._leases.popleft()

    def _dock(self, ligand, ordinal: int):
        from repro.vs.docking import dock

        return dock(
            self.receptor,
            ligand,
            spots=self.spots,
            metaheuristic=self.metaheuristic,
            scoring=self.scoring,
            seed=self.seed + ordinal,
            workload_scale=self.workload_scale,
            node=self.node_spec,
            mode=self.mode,
            host_workers=self.host_workers,
            parallel_mode=self.parallel_mode,
            prune_spots=self.prune_spots,
            evaluator_factory=(
                None if self._runtime is None else self._runtime.evaluator_factory
            ),
            autotune=self._autotune,
        )

    def _dock_with_retry(
        self, lease: _Lease, ordinal: int, title: str, ligand
    ) -> dict:
        """Mirror of ``CampaignRunner._dock_one``: same retry, same seeding."""
        delay = self.backoff_base
        tracer = obs.get_telemetry().tracer
        for attempt in range(1, self.max_attempts + 1):
            t0 = time.perf_counter()
            span_id = None
            try:
                with obs.span(
                    "cluster.ligand.dock",
                    ordinal=ordinal,
                    shard=lease.shard_id,
                    lease_wait_s=round(max(0.0, t0 - lease.accepted_s), 6),
                    **self._trace_tags(),
                ) as dock_tags:
                    span_id = tracer.current
                    result = self._dock(ligand, ordinal)
                    dock_tags["attempt"] = attempt
            except Exception as exc:
                if attempt >= self.max_attempts:
                    self._failed += 1
                    obs.counter("campaign.ligands.failed").inc()
                    return {
                        "kind": "result",
                        "node": self.node_id,
                        "shard_id": lease.shard_id,
                        "ordinal": ordinal,
                        "title": title,
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                        "attempts": attempt,
                        "sent_s": time.perf_counter(),
                    }
                obs.counter("campaign.retries").inc()
                flight_event(
                    "dock.retry",
                    node=self.node_id,
                    ordinal=ordinal,
                    attempt=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                )
                time.sleep(delay)
                delay *= 2
                continue
            wall_s = time.perf_counter() - t0
            self._done += 1
            obs.counter("campaign.ligands.done").inc()
            obs.histogram("campaign.dock.seconds").observe(wall_s)
            return {
                "kind": "result",
                "node": self.node_id,
                "shard_id": lease.shard_id,
                "ordinal": ordinal,
                "title": title,
                "ok": True,
                "score": float(result.best_score),
                "spot_index": int(result.best.spot_index),
                "evaluations": int(result.evaluations),
                "wall_seconds": float(wall_s),
                "simulated_seconds": float(result.simulated_seconds),
                "attempts": attempt,
                # sent_s/span let the coordinator compute wire time and
                # correlate its commit span with this dock (node-local id).
                "sent_s": time.perf_counter(),
                "span": span_id,
            }
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # liveness + farewell
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.cluster.heartbeat_interval_s):
            try:
                message = {
                    "kind": "heartbeat",
                    "node": self.node_id,
                    "done": self._done,
                    "failed": self._failed,
                }
                telemetry = self._heartbeat_telemetry()
                if telemetry is not None:
                    message["telemetry"] = telemetry
                    with obs.span(
                        "cluster.worker.heartbeat", **self._trace_tags()
                    ):
                        self.channel.send(message)
                else:
                    self.channel.send(message)
                obs.counter("cluster.worker.heartbeats").inc()
            except Exception as exc:  # channel gone -> the worker is over
                self._heartbeat_error = exc
                return

    def _heartbeat_telemetry(self) -> dict | None:
        """A telemetry snapshot to ride this heartbeat, rate-limited.

        At most one snapshot per ``heartbeat_timeout_s / 2`` crosses the
        wire, so a SIGKILLed node's trace lanes are at most about half a
        death-detection window stale — without paying the snapshot cost on
        every liveness ping.
        """
        if not self.cluster.heartbeat_telemetry or not obs.enabled():
            return None
        now = time.monotonic()
        if now - self._telemetry_shipped_t < self.cluster.heartbeat_timeout_s / 2:
            return None
        try:
            snapshot = obs.snapshot()
        except RuntimeError:  # lost a race with metric creation; next beat
            return None
        self._telemetry_shipped_t = now
        return snapshot

    def _send_bye(self) -> None:
        self._stop.set()
        flight_event("shutdown.recv", node=self.node_id, done=self._done)
        self.channel.send(
            {
                "kind": "bye",
                "node": self.node_id,
                "done": self._done,
                "failed": self._failed,
                "telemetry": obs.snapshot(),
            }
        )


def run_worker(
    host: str,
    port: int,
    *,
    connect_attempts: int = 10,
    connect_backoff_s: float = 0.1,
) -> int:
    """Process entry point for one worker node; returns an exit status.

    Top-level and picklable on purpose: the local fleet forks/spawns it via
    ``multiprocessing``, and ``repro-vs cluster worker`` calls it directly.
    Resets process-global telemetry (and the flight ring) first — a forked
    child inherits the parent's counters, and the coordinator must see only
    this node's numbers in the final ``bye`` snapshot.
    """
    obs.reset()
    obs.reset_flight("worker")
    sock = connect(host, port, attempts=connect_attempts, backoff_s=connect_backoff_s)
    with Channel(sock) as channel:
        channel.send(
            {"kind": "hello", "protocol": PROTOCOL_VERSION, "pid": os.getpid()}
        )
        message = channel.recv()
        if message is None:
            raise ProtocolError("coordinator sent no config message")
        if message["kind"] == "shutdown":
            return 0  # fleet aborted during startup
        if message["kind"] != "config":
            raise ProtocolError(f"expected config, got {message['kind']}")
        node = WorkerNode(channel, message)
        flight_recorder().role = f"worker-node{node.node_id}"
        if node.flight_path is not None:
            # Black-box semantics: a SIGTERM'd worker still leaves a dump.
            # (SIGKILL cannot; the coordinator's own dump records the death.)
            install_flight_signal_dump(node.flight_path)
        try:
            node.start_runtime()
            seconds = node.probe() if node.cluster.warmup_probe else 1.0
            channel.send(
                {"kind": "warmup", "node": node.node_id, "seconds": seconds}
            )
            return node.serve()
        except (ConnectionClosed, ProtocolError):
            # Coordinator died or the stream broke: durable state lives on
            # the coordinator side, so the worker just exits nonzero.
            return 1
        finally:
            if node.flight_path is not None:
                dump_flight(node.flight_path)
