"""Physical constants and library-wide numeric policy.

Units used throughout the library (AutoDock-style conventions):

* length: angstrom (Å)
* energy: kcal/mol
* charge: elementary charge (e)
* time (simulated hardware): seconds
"""

from __future__ import annotations

import numpy as np

#: Coulomb constant in kcal·Å/(mol·e²) — 332.06371 is the standard
#: electrostatics conversion factor used by AMBER/AutoDock.
COULOMB_CONSTANT: float = 332.06371

#: Default relative dielectric for the distance-dependent dielectric model.
DEFAULT_DIELECTRIC: float = 4.0

#: Minimum pair distance (Å) clamped into scoring kernels to avoid the LJ/
#: Coulomb singularity at r → 0 for badly clashed poses.
MIN_PAIR_DISTANCE: float = 0.05

#: Default non-bonded cutoff distance (Å) for neighbor-list based scorers.
DEFAULT_CUTOFF: float = 12.0

#: dtype policy: all coordinate/score math is float64 on the host. The
#: simulated GPU kernels model single-precision throughput (the paper's
#: kernels are SP), but we keep host math in double for test determinism.
FLOAT_DTYPE = np.float64

#: dtype for integer index arrays.
INDEX_DTYPE = np.int64

#: Default seed used by examples and experiment presets so that published
#: numbers regenerate bit-identically.
DEFAULT_SEED: int = 20160312  # PMAM'16 conference date: March 12 2016


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return the library-wide RNG.

    Every stochastic component takes either a seed or a
    :class:`numpy.random.Generator`; this helper centralises construction so
    the bit-generator choice (PCG64) is uniform across the package.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
