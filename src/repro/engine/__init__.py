"""Parallel runtime: schedulers, warm-up, simulated execution, reporting."""

from repro.engine.async_mode import partition_spots_by_weight, simulate_async_trace
from repro.engine.clock import VirtualClock
from repro.engine.cluster import (
    ClusterSpec,
    ClusterTiming,
    Interconnect,
    simulate_cluster_run,
)
from repro.engine.device_worker import Job, QueueResult, SimulatedDevice, run_job_queue
from repro.engine.events import Event, EventLoop
from repro.engine.executor import (
    EXECUTION_MODES,
    MultiGpuExecutor,
    host_overhead_s,
    simulate_cpu_trace,
    simulate_gpu_trace,
)
from repro.engine.host_runtime import (
    HostWarmupResult,
    ParallelSpotEvaluator,
    SharedArrayStage,
    rebuild_scorer,
    stage_scorer,
)
from repro.engine.openmp import ThreadedCpuEvaluator
from repro.engine.partition import equal_partition, proportional_partition
from repro.engine.reporting import ExecutionReport, TimingBreakdown
from repro.engine.screening_schedule import (
    LigandWorkload,
    ScreeningSchedule,
    dynamic_screening_makespan,
    static_screening_makespan,
)
from repro.engine.traceio import dump_trace, dumps_trace, load_trace, loads_trace
from repro.engine.scheduler import (
    DynamicSpotQueueScheduler,
    Scheduler,
    StaticEqualScheduler,
    StaticProportionalScheduler,
)
from repro.engine.warmup import (
    DEFAULT_WARMUP_ITERATIONS,
    WarmupResult,
    run_warmup,
)

__all__ = [
    "ClusterSpec",
    "ClusterTiming",
    "Interconnect",
    "simulate_cluster_run",
    "DEFAULT_WARMUP_ITERATIONS",
    "EXECUTION_MODES",
    "DynamicSpotQueueScheduler",
    "Event",
    "EventLoop",
    "ExecutionReport",
    "HostWarmupResult",
    "ParallelSpotEvaluator",
    "SharedArrayStage",
    "Job",
    "LigandWorkload",
    "MultiGpuExecutor",
    "QueueResult",
    "Scheduler",
    "SimulatedDevice",
    "StaticEqualScheduler",
    "ScreeningSchedule",
    "StaticProportionalScheduler",
    "ThreadedCpuEvaluator",
    "TimingBreakdown",
    "VirtualClock",
    "WarmupResult",
    "dump_trace",
    "dumps_trace",
    "dynamic_screening_makespan",
    "equal_partition",
    "host_overhead_s",
    "load_trace",
    "partition_spots_by_weight",
    "loads_trace",
    "proportional_partition",
    "rebuild_scorer",
    "run_job_queue",
    "run_warmup",
    "stage_scorer",
    "simulate_async_trace",
    "simulate_cpu_trace",
    "simulate_gpu_trace",
    "static_screening_makespan",
]
