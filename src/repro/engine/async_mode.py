"""Barrier-free execution: independent per-spot runs (§3.3).

Algorithm 2 synchronises after every scoring launch: all devices score
slices of the *same* candidate set, so each iteration waits for the slowest
share. But §3.3 also observes that the runs are "independent metaheuristic
executions … Parallel runs do not incur any communication overhead" — which
admits a stronger decomposition: give each device a *subset of spots* and
let it run its whole search without ever synchronising. Per-device time is
then the sum over its own launches, and the node finishes when the last
device does. No barrier losses; balance is set once, at spot granularity.

This module times that mode from the same launch traces (records carry
per-spot counts, so a device's share of every launch is exactly the poses
of its spots).
"""

from __future__ import annotations

import numpy as np

from repro.engine.partition import proportional_partition
from repro.engine.reporting import TimingBreakdown
from repro.errors import SchedulingError
from repro.hardware.cuda import KernelConfig
from repro.hardware.node import NodeSpec
from repro.hardware.perf_model import (
    DEFAULT_PARAMS,
    PerfModelParams,
    gpu_launch_time,
)
from repro.metaheuristics.evaluation import LaunchRecord

__all__ = ["partition_spots_by_weight", "simulate_async_trace"]


def partition_spots_by_weight(
    spot_ids: list[int], weights: np.ndarray
) -> list[list[int]]:
    """Deal spots to devices proportionally to throughput weights.

    Spots are dealt in index order, device counts from largest-remainder
    apportionment — deterministic and conserving.
    """
    if not spot_ids:
        raise SchedulingError("need at least one spot")
    counts = proportional_partition(len(spot_ids), np.asarray(weights, dtype=float))
    out: list[list[int]] = []
    cursor = 0
    for c in counts:
        out.append(list(spot_ids[cursor : cursor + int(c)]))
        cursor += int(c)
    return out


def simulate_async_trace(
    records: list[LaunchRecord],
    node: NodeSpec,
    weights: np.ndarray | None = None,
    params: PerfModelParams = DEFAULT_PARAMS,
    config: KernelConfig | None = None,
) -> TimingBreakdown:
    """Replay a trace under the barrier-free per-spot decomposition.

    Parameters
    ----------
    records:
        Launch trace with per-spot counts (uniform traces from
        :func:`repro.experiments.trace.analytic_trace` qualify).
    weights:
        Device spot-shares; defaults to sustained-throughput proportions
        (what a perfect warm-up would produce).

    Notes
    -----
    Host bookkeeping runs per device for its own sub-population, in
    parallel with the other devices, so it folds into the per-device sum
    rather than a global serial term.
    """
    if node.n_gpus == 0:
        raise SchedulingError(f"node {node.name!r} has no GPUs")
    if not records:
        raise SchedulingError("cannot replay an empty trace")
    if weights is None:
        weights = np.array([g.pairs_per_sec for g in node.gpus], dtype=float)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (node.n_gpus,):
        raise SchedulingError(
            f"{weights.size} weights for {node.n_gpus} devices"
        )

    spot_ids = sorted(records[0].spot_counts)
    assignment = partition_spots_by_weight(spot_ids, weights)

    device_time = np.zeros(node.n_gpus)
    total_conformations = 0
    for record in records:
        total_conformations += record.n_conformations
        for d, spots in enumerate(assignment):
            share = sum(record.spot_counts.get(s, 0) for s in spots)
            if share <= 0:
                continue
            t = gpu_launch_time(
                node.gpus[d], share, record.flops_per_pose, params, config
            ).total_s
            # Per-device host work for its own sub-population.
            stage = 1.0 if record.kind == "population" else params.improve_host_factor
            t += share * params.host_op_cost_s * stage + params.launch_host_overhead_s
            device_time[d] += t

    return TimingBreakdown(
        scoring_s=float(device_time.max()),
        host_s=0.0,  # folded into the per-device sums above
        warmup_s=0.0,
        n_launches=len(records),
        n_conformations=total_conformations,
        device_busy_s=device_time,
    )
