"""Virtual clock for the simulated runtime.

The scoring math runs for real on the host; *time* is an accumulator fed by
the performance model. The clock enforces monotonicity so model bugs
(negative durations) surface immediately.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotone simulated-time accumulator (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, duration: float) -> float:
        """Move time forward by ``duration`` seconds; returns the new time."""
        if duration < 0 or not duration == duration:  # NaN check
            raise SimulationError(f"cannot advance clock by {duration}")
        self._now += duration
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time (must not go backwards)."""
        if timestamp < self._now:
            raise SimulationError(
                f"clock cannot go backwards: {self._now} -> {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def reset(self) -> None:
        """Back to zero (new simulation)."""
        self._now = 0.0
