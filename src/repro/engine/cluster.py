"""Multi-node cluster extension (the paper's future work, §6).

"it could be convenient to adapt our virtual screening method to more
complex systems comprising several computational nodes working together
with the message-passing paradigm, and each node with several computational
components".

This module models exactly that: a :class:`ClusterSpec` of heterogeneous
nodes joined by an interconnect. Spots are *independent* (§3.1), so the
natural decomposition is spot-level: every node receives the structures
(broadcast), runs its share of spots with its own multicore+multiGPU
executor, and the best conformations are gathered at the root. Communication
is modelled with the standard α–β (latency–bandwidth) cost model that MPI
collectives follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.executor import MultiGpuExecutor
from repro.engine.partition import proportional_partition
from repro.errors import SchedulingError
from repro.hardware.node import NodeSpec
from repro.metaheuristics.evaluation import LaunchRecord

__all__ = ["Interconnect", "ClusterSpec", "ClusterTiming", "simulate_cluster_run"]


@dataclass(frozen=True, slots=True)
class Interconnect:
    """α–β model of the cluster network.

    Attributes
    ----------
    latency_s:
        Per-message latency (α).
    bandwidth_gbs:
        Point-to-point bandwidth in GB/s (1/β).
    """

    latency_s: float = 2.0e-6
    bandwidth_gbs: float = 5.0  # ~QDR InfiniBand of the paper's era

    def transfer_s(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` point-to-point."""
        if n_bytes < 0:
            raise SchedulingError(f"cannot transfer {n_bytes} bytes")
        return self.latency_s + n_bytes / (self.bandwidth_gbs * 1e9)

    def broadcast_s(self, n_bytes: float, n_nodes: int) -> float:
        """Binomial-tree broadcast: ceil(log2(n)) rounds."""
        if n_nodes < 1:
            raise SchedulingError("broadcast needs at least one node")
        rounds = int(np.ceil(np.log2(max(n_nodes, 2))))
        return rounds * self.transfer_s(n_bytes)

    def gather_s(self, n_bytes_per_node: float, n_nodes: int) -> float:
        """Binomial-tree gather of equal contributions."""
        if n_nodes < 1:
            raise SchedulingError("gather needs at least one node")
        rounds = int(np.ceil(np.log2(max(n_nodes, 2))))
        return rounds * self.transfer_s(n_bytes_per_node)


@dataclass(frozen=True)
class ClusterSpec:
    """Several heterogeneous nodes plus their interconnect."""

    name: str
    nodes: tuple[NodeSpec, ...]
    interconnect: Interconnect = field(default_factory=Interconnect)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise SchedulingError("a cluster needs at least one node")

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def node_gpu_throughputs(self) -> np.ndarray:
        """Aggregate sustained GPU throughput per node (pairs/s)."""
        return np.array(
            [sum(g.pairs_per_sec for g in node.gpus) for node in self.nodes]
        )


@dataclass
class ClusterTiming:
    """Breakdown of a simulated cluster run.

    ``total = broadcast + max(node compute) + gather`` — nodes work
    independently between the collectives (no mid-run communication, as the
    paper's independent-executions design implies).
    """

    broadcast_s: float
    gather_s: float
    node_compute_s: np.ndarray
    spot_shares: np.ndarray

    @property
    def compute_s(self) -> float:
        """Slowest node's compute time (the barrier)."""
        return float(self.node_compute_s.max())

    @property
    def total_s(self) -> float:
        """End-to-end cluster wall time."""
        return self.broadcast_s + self.compute_s + self.gather_s

    @property
    def balance(self) -> float:
        """Mean/max node compute (1.0 = perfect)."""
        if self.node_compute_s.max() <= 0:
            return 1.0
        return float(self.node_compute_s.mean() / self.node_compute_s.max())


def _scale_trace(trace: list[LaunchRecord], factor: float) -> list[LaunchRecord]:
    """Scale a per-spot-uniform trace's conformation counts by ``factor``
    (the node's share of the spots)."""
    scaled = []
    for record in trace:
        n = max(1, int(round(record.n_conformations * factor)))
        scaled.append(
            LaunchRecord(
                n_conformations=n,
                flops_per_pose=record.flops_per_pose,
                spot_counts=record.spot_counts,
                kind=record.kind,
                n_receptor_atoms=record.n_receptor_atoms,
            )
        )
    return scaled


def simulate_cluster_run(
    cluster: ClusterSpec,
    trace: list[LaunchRecord],
    n_spots: int,
    structure_bytes: float,
    mode: str = "gpu-heterogeneous",
    seed: int = 0,
) -> ClusterTiming:
    """Time a whole-surface screening run across the cluster.

    Spots are dealt to nodes proportionally to their aggregate GPU
    throughput; each node replays its share of the (per-spot-uniform)
    launch trace under ``mode``; collectives bracket the computation.

    Parameters
    ----------
    trace:
        Full-run launch trace (e.g. from
        :func:`repro.experiments.trace.analytic_trace`).
    n_spots:
        Spots the trace covers (the unit of distribution).
    structure_bytes:
        Receptor+ligand payload broadcast to every node.
    """
    if n_spots < 1:
        raise SchedulingError(f"n_spots must be >= 1, got {n_spots}")
    if not trace:
        raise SchedulingError("cannot simulate an empty trace")

    weights = cluster.node_gpu_throughputs()
    if mode == "openmp":
        weights = np.array(
            [
                node.total_cpu_cores * node.cpu.clock_mhz
                for node in cluster.nodes
            ],
            dtype=float,
        )
    shares = proportional_partition(n_spots, weights)

    node_times = np.zeros(cluster.n_nodes)
    for i, node in enumerate(cluster.nodes):
        if shares[i] == 0:
            continue
        executor = MultiGpuExecutor(node, seed=seed + i)
        node_trace = _scale_trace(trace, shares[i] / n_spots)
        timing, _ = executor.replay(node_trace, mode)
        node_times[i] = timing.total_s

    # Best-conformation gather: 8 floats (pose + score) per spot, SP.
    gather_bytes = float(max(shares.max(), 1)) * 8 * 4
    return ClusterTiming(
        broadcast_s=cluster.interconnect.broadcast_s(structure_bytes, cluster.n_nodes),
        gather_s=cluster.interconnect.gather_s(gather_bytes, cluster.n_nodes),
        node_compute_s=node_times,
        spot_shares=shares,
    )
