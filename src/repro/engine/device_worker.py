"""Event-driven simulated devices pulling from a cooperative job queue.

This is the full discrete-event counterpart of the closed-form LPT plan in
:class:`repro.engine.scheduler.DynamicSpotQueueScheduler`: devices *pull*
per-spot jobs when they become free, which (with deterministic job times)
produces the same assignment — a property the tests assert. Unlike the
closed form it also models **device failure**: a device that dies mid-job
requeues the job and stops pulling, and the remaining devices absorb the
work. That is the failure-injection substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.events import EventLoop
from repro.errors import SchedulingError
from repro.hardware.cuda import KernelConfig
from repro.hardware.perf_model import DEFAULT_PARAMS, PerfModelParams, gpu_launch_time
from repro.hardware.specs import GpuSpec

__all__ = ["Job", "SimulatedDevice", "QueueResult", "run_job_queue"]


@dataclass(frozen=True, slots=True)
class Job:
    """One independent unit of work.

    Either a single scoring launch (``count`` conformations at
    ``flops_per_pose``) or — for coarse jobs like a whole per-ligand docking
    run — an explicit ``launches`` sequence of ``(count, flops_per_pose)``
    entries whose device time is the sum of the individual launch times
    (small launches pay their wave floors individually, as they would in a
    real run).
    """

    spot: int
    count: int
    flops_per_pose: float
    launches: tuple[tuple[int, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SchedulingError(f"job needs count >= 1, got {self.count}")
        if self.flops_per_pose <= 0:
            raise SchedulingError("job needs positive flops_per_pose")
        if self.launches is not None:
            if not self.launches:
                raise SchedulingError("explicit launches must be non-empty")
            for count, flops in self.launches:
                if count < 1 or flops <= 0:
                    raise SchedulingError(
                        f"invalid launch entry ({count}, {flops})"
                    )


@dataclass
class SimulatedDevice:
    """One GPU worker in the queue simulation.

    Attributes
    ----------
    index:
        Slot number on the node.
    gpu:
        Device spec (drives job times via the performance model).
    fail_at:
        Simulated time at which the device dies (None = never). A job in
        flight at that moment is lost and requeued.
    """

    index: int
    gpu: GpuSpec
    fail_at: float | None = None
    busy_s: float = field(default=0.0, init=False)
    jobs_done: list[Job] = field(default_factory=list, init=False)
    failed: bool = field(default=False, init=False)
    idle: bool = field(default=True, init=False)

    def job_time(
        self, job: Job, params: PerfModelParams, config: KernelConfig | None
    ) -> float:
        """Modelled time for this device to run ``job``."""
        if job.launches is not None:
            return sum(
                gpu_launch_time(self.gpu, count, flops, params, config).total_s
                for count, flops in job.launches
            )
        return gpu_launch_time(
            self.gpu, job.count, job.flops_per_pose, params, config
        ).total_s


@dataclass
class QueueResult:
    """Outcome of one queue drain.

    Attributes
    ----------
    makespan_s:
        Time the last job finished.
    assignments:
        ``spot -> device index`` for every completed job.
    requeues:
        Jobs that had to be re-executed after a device failure.
    busy_s:
        Per-device busy time (completed work only).
    """

    makespan_s: float
    assignments: dict[int, int]
    requeues: list[Job]
    busy_s: np.ndarray

    @property
    def utilization(self) -> np.ndarray:
        """Per-device busy fraction of the makespan."""
        if self.makespan_s <= 0:
            return np.zeros_like(self.busy_s)
        return self.busy_s / self.makespan_s


def run_job_queue(
    jobs: list[Job],
    devices: list[SimulatedDevice],
    params: PerfModelParams = DEFAULT_PARAMS,
    config: KernelConfig | None = None,
) -> QueueResult:
    """Drain ``jobs`` through ``devices`` with an event-driven pull queue.

    Jobs are served largest-first (LPT). Every free, alive device pulls the
    next job; completion events re-trigger pulls. A device whose
    ``fail_at`` falls inside a job's execution window requeues that job at
    the failure instant.

    Raises
    ------
    SchedulingError
        When all devices fail before the queue drains.
    """
    if not jobs:
        raise SchedulingError("job queue needs at least one job")
    if not devices:
        raise SchedulingError("job queue needs at least one device")

    queue: list[Job] = sorted(jobs, key=lambda j: (-j.count, j.spot))
    loop = EventLoop()
    assignments: dict[int, int] = {}
    requeues: list[Job] = []
    outstanding = {"jobs": len(queue)}

    def try_pull(device: SimulatedDevice) -> None:
        if device.failed or not device.idle or not queue:
            return
        job = queue.pop(0)
        device.idle = False
        duration = device.job_time(job, params, config)
        start = loop.now
        end = start + duration
        if device.fail_at is not None and device.fail_at < end:
            # The device dies mid-job: the job is lost and requeued at the
            # failure instant; the device never pulls again.
            fail_time = max(device.fail_at, start)

            def on_fail(_loop: EventLoop, device=device, job=job) -> None:
                device.failed = True
                requeues.append(job)
                queue.insert(0, job)
                # Wake every idle survivor — one of them takes the job.
                for other in devices:
                    if not other.failed and other is not device:
                        try_pull(other)

            loop.schedule_at(fail_time, on_fail)
            return

        def on_done(_loop: EventLoop, device=device, job=job, duration=duration) -> None:
            device.busy_s += duration
            device.jobs_done.append(job)
            device.idle = True
            assignments[job.spot] = device.index
            outstanding["jobs"] -= 1
            try_pull(device)

        loop.schedule_at(end, on_done)

    for device in devices:
        try_pull(device)
    loop.run()

    if outstanding["jobs"] > 0:
        raise SchedulingError(
            f"{outstanding['jobs']} jobs undrained — every device failed"
        )
    busy = np.array([d.busy_s for d in devices])
    return QueueResult(
        makespan_s=loop.now,
        assignments=assignments,
        requeues=requeues,
        busy_s=busy,
    )
