"""Discrete-event simulation core.

A minimal but complete event-heap simulator: events are ``(time, seq,
callback)`` triples; callbacks may schedule further events. Used by the
dynamic cooperative scheduler (job queue over heterogeneous devices) and by
the failure-injection tests; the static schedulers use closed-form math and
do not need it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventLoop"]


@dataclass(order=True)
class Event:
    """One scheduled callback. Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    callback: Callable[["EventLoop"], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """Deterministic event-heap simulator."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[["EventLoop"], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0 or delay != delay:
            raise SimulationError(f"cannot schedule an event {delay} s in the past")
        event = Event(time=self._now + delay, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[["EventLoop"], None]) -> Event:
        """Schedule ``callback`` at an absolute time (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self.schedule(time - self._now, callback)

    def cancel(self, event: Event) -> None:
        """Mark an event cancelled (lazy removal)."""
        event.cancelled = True

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Drain the heap; returns the final simulation time.

        Parameters
        ----------
        until:
            Stop once the next event lies beyond this time (it stays queued).
        max_events:
            Runaway guard.
        """
        while self._heap:
            if self._processed >= max_events:
                raise SimulationError(f"event budget exhausted ({max_events})")
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"event at {event.time} before current time {self._now}"
                )
            self._now = event.time
            self._processed += 1
            event.callback(self)
        if until is not None:
            self._now = max(self._now, until)
        return self._now
