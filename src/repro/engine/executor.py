"""The multicore+multiGPU execution engine.

Separation of concerns mirrors the reproduction strategy: the metaheuristic
*math* runs on the host (NumPy), producing a trace of scoring launches; the
*time* those launches would have cost on a modelled machine comes from
replaying the trace through the performance model under a scheduler. Because
scoring is a pure function, results are identical no matter how launches are
partitioned — which is also why the paper's parallel runs need no
communication.

Trace replay implements Algorithm 2's synchronisation structure: every
launch is split across devices, each device scores its share concurrently,
and the iteration proceeds when the slowest share finishes.
"""

from __future__ import annotations

import numpy as np

from repro.engine.host_runtime import ParallelSpotEvaluator
from repro.engine.reporting import ExecutionReport, TimingBreakdown
from repro.engine.scheduler import (
    DynamicSpotQueueScheduler,
    Scheduler,
    StaticEqualScheduler,
    StaticProportionalScheduler,
)
from repro.engine.warmup import WarmupResult, run_warmup
from repro.errors import SchedulingError
from repro.hardware.cuda import KernelConfig
from repro.hardware.node import NodeSpec
from repro.hardware.perf_model import (
    DEFAULT_PARAMS,
    PerfModelParams,
    cpu_batch_time,
    gpu_launch_time,
)
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import LaunchRecord, SerialEvaluator
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import MetaheuristicSpec, run_metaheuristic
from repro.molecules.spots import Spot
from repro.scoring.base import BoundScorer

__all__ = [
    "host_overhead_s",
    "simulate_cpu_trace",
    "simulate_gpu_trace",
    "MultiGpuExecutor",
    "EXECUTION_MODES",
]

#: Recognised execution modes.
EXECUTION_MODES: tuple[str, ...] = (
    "openmp",
    "gpu-homogeneous",
    "gpu-heterogeneous",
    "gpu-dynamic",
)


def host_overhead_s(record: LaunchRecord, params: PerfModelParams) -> float:
    """Serial host cost charged to one launch.

    Template stages (sort/crossover/include) cost ``host_op_cost_s`` per
    individual on ``population`` launches; local-search steps
    (perturb/accept) are cheaper by ``improve_host_factor``. Every launch
    additionally pays the marshalling/launch/sync overhead.
    """
    stage_factor = 1.0 if record.kind == "population" else params.improve_host_factor
    return (
        record.n_conformations * params.host_op_cost_s * stage_factor
        + params.launch_host_overhead_s
    )


def simulate_cpu_trace(
    records: list[LaunchRecord],
    node: NodeSpec,
    params: PerfModelParams = DEFAULT_PARAMS,
) -> TimingBreakdown:
    """Replay a trace on the node's CPU cores (the OpenMP baseline)."""
    timing = TimingBreakdown(device_busy_s=np.zeros(1))
    for record in records:
        if record.n_receptor_atoms < 1:
            raise SchedulingError(
                "launch record lacks n_receptor_atoms (needed by the CPU model)"
            )
        t = cpu_batch_time(
            node.cpu,
            node.total_cpu_cores,
            record.n_conformations,
            record.flops_per_pose,
            record.n_receptor_atoms,
            params,
        )
        timing.scoring_s += t
        timing.device_busy_s[0] += t
        # The CPU version pays the template bookkeeping too, but not the
        # GPU marshalling/launch overhead.
        stage = 1.0 if record.kind == "population" else params.improve_host_factor
        timing.host_s += record.n_conformations * params.host_op_cost_s * stage
        timing.n_launches += 1
        timing.n_conformations += record.n_conformations
    return timing


def simulate_gpu_trace(
    records: list[LaunchRecord],
    node: NodeSpec,
    scheduler: Scheduler,
    params: PerfModelParams = DEFAULT_PARAMS,
    config: KernelConfig | None = None,
    failures: dict[int, float] | None = None,
    timeline: list[tuple[int, float, float, str]] | None = None,
) -> TimingBreakdown:
    """Replay a trace on the node's GPUs under a scheduler.

    Parameters
    ----------
    failures:
        Optional ``device index -> simulated failure time``. From that time
        on the device is excluded from planning (launch-granular dropout;
        mid-job dropout lives in :mod:`repro.engine.device_worker`).
    timeline:
        Optional list the replay appends ``(device, start_s, end_s, kind)``
        busy intervals to — feed it to
        :func:`repro.vs.visualize.gantt` for a schedule rendering.

    Raises
    ------
    SchedulingError
        If the node has no GPUs, or every GPU has failed.
    """
    if node.n_gpus == 0:
        raise SchedulingError(f"node {node.name!r} has no GPUs")
    failures = failures or {}
    timing = TimingBreakdown(device_busy_s=np.zeros(node.n_gpus))
    now = 0.0
    for record in records:
        alive = np.array(
            [failures.get(i, np.inf) > now for i in range(node.n_gpus)], dtype=bool
        )
        if not alive.any():
            raise SchedulingError(f"all devices failed by t={now:.3f}s")
        shares = scheduler.plan(record, node.gpus, alive)
        if int(shares.sum()) != record.n_conformations:
            raise SchedulingError(
                f"scheduler {scheduler.name} lost work: "
                f"{int(shares.sum())} != {record.n_conformations}"
            )
        launch_times = np.zeros(node.n_gpus)
        for d in range(node.n_gpus):
            if shares[d] > 0:
                launch_times[d] = gpu_launch_time(
                    node.gpus[d], int(shares[d]), record.flops_per_pose, params, config
                ).total_s
                if timeline is not None:
                    timeline.append(
                        (d, now, now + launch_times[d], record.kind)
                    )
        step = float(launch_times.max())  # barrier: slowest share gates
        timing.scoring_s += step
        timing.device_busy_s += launch_times
        timing.host_s += host_overhead_s(record, params)
        timing.n_launches += 1
        timing.n_conformations += record.n_conformations
        now = timing.total_s
    return timing


class MultiGpuExecutor:
    """Run a metaheuristic against a modelled heterogeneous node.

    Parameters
    ----------
    node:
        Machine model (e.g. :func:`repro.hardware.node.jupiter`).
    params:
        Performance-model calibration constants.
    config:
        Kernel launch configuration (block granularity etc.).
    seed:
        Seed for warm-up measurement noise (deterministic tables).
    """

    def __init__(
        self,
        node: NodeSpec,
        params: PerfModelParams = DEFAULT_PARAMS,
        config: KernelConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.node = node
        self.params = params
        self.config = config
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def run(
        self,
        spec: MetaheuristicSpec,
        spots: list[Spot],
        scorer: BoundScorer,
        mode: str,
        search_seed: int = 0,
        failures: dict[int, float] | None = None,
        host_workers: int = 0,
        host_parallel_mode: str = "static",
    ) -> ExecutionReport:
        """Execute ``spec`` over ``spots`` and time it under ``mode``.

        The host math runs once (mode-independent, by design); the timing
        is then computed for the requested mode. Identical ``search_seed``
        values therefore give *identical scientific results* across modes —
        the executor-equivalence property the tests pin down.

        ``host_workers > 0`` runs the host math on a real process pool
        (:class:`repro.engine.host_runtime.ParallelSpotEvaluator`) instead
        of in-process. The parallel evaluator is bitwise-equivalent to the
        serial one, so this changes wall-clock only — never results, never
        the recorded launch trace.
        """
        if host_workers > 0:
            evaluator = ParallelSpotEvaluator(
                scorer, n_workers=host_workers, mode=host_parallel_mode
            )
        else:
            evaluator = SerialEvaluator(scorer)
        ctx = SearchContext(
            spots=spots,
            evaluator=evaluator,
            rng=SpotRngPool(search_seed, [s.index for s in spots]),
        )
        try:
            result = run_metaheuristic(spec, ctx)
        finally:
            if isinstance(evaluator, ParallelSpotEvaluator):
                evaluator.close()
        timing, scheduler_name = self.replay(
            evaluator.stats.launches, mode, failures=failures
        )
        return ExecutionReport(
            mode=mode,
            node_name=self.node.name,
            scheduler_name=scheduler_name,
            timing=timing,
            result=result,
        )

    # ------------------------------------------------------------------
    def replay(
        self,
        records: list[LaunchRecord],
        mode: str,
        failures: dict[int, float] | None = None,
    ) -> tuple[TimingBreakdown, str]:
        """Time an existing launch trace under ``mode`` (no host math)."""
        if mode not in EXECUTION_MODES:
            raise SchedulingError(
                f"unknown mode {mode!r}; choose from {EXECUTION_MODES}"
            )
        if not records:
            raise SchedulingError("cannot replay an empty trace")
        if mode == "openmp":
            return simulate_cpu_trace(records, self.node, self.params), "-"

        if mode == "gpu-homogeneous":
            scheduler: Scheduler = StaticEqualScheduler()
            warmup: WarmupResult | None = None
        elif mode == "gpu-heterogeneous":
            warmup = self.warmup(records[0].flops_per_pose)
            scheduler = StaticProportionalScheduler(warmup.weights)
        else:  # gpu-dynamic
            scheduler = DynamicSpotQueueScheduler(self.params, self.config)
            warmup = None

        timing = simulate_gpu_trace(
            records, self.node, scheduler, self.params, self.config, failures
        )
        if warmup is not None:
            timing.warmup_s = warmup.elapsed_s
        return timing, scheduler.name

    def warmup(self, flops_per_pose: float) -> WarmupResult:
        """Run the Eq. 1 warm-up phase for this node's GPUs."""
        rng = np.random.default_rng(self.seed)
        return run_warmup(
            self.node.gpus,
            flops_per_pose,
            params=self.params,
            config=self.config,
            rng=rng,
        )
