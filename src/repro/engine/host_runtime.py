"""Process-parallel host runtime: real cores, same answers.

Everything else in :mod:`repro.engine` *models* parallel hardware; this
module actually uses the machine. A :class:`ParallelSpotEvaluator` shards a
launch's poses across a persistent :class:`~concurrent.futures.ProcessPoolExecutor`,
mirroring the paper's device strategy at the host level:

* **Staging** — receptor coordinates and the precomputed σ²/4ε pair tables
  are written once into :mod:`multiprocessing.shared_memory` segments and
  attached zero-copy by every worker (the Python analogue of staging
  per-complex constants on each GPU before launching scoring kernels; see
  the bind/BoundScorer split in :mod:`repro.scoring.base`).
* **Warm-up (Eq. 1)** — at pool start each worker times a few scoring
  launches; shares are assigned ∝ 1/Percent, exactly the paper's
  ``Percent = t_worker / t_slowest`` heterogeneous split, but with wall
  clocks instead of the simulated performance model.
* **Scheduling** — ``static`` mode LPT-packs per-spot jobs onto workers
  weighted by measured throughput (one task per worker per launch);
  ``dynamic`` mode submits jobs individually in LPT order
  (largest-first, the ordering :mod:`repro.engine.device_worker` uses) so
  whichever worker frees up first pulls the next job — a work-stealing
  queue with no warm-up required.

Determinism contract: for any scorer, ``ParallelSpotEvaluator`` returns
*bitwise* the same energies as :class:`~repro.metaheuristics.evaluation.SerialEvaluator`
with the same seed, for any worker count and either mode. Work is split only
along boundaries the serial path already has — whole chunks of the serial
chunk grid for plain scorers, whole per-spot groups for spot-aware scorers —
and workers rebuild the scorer from the staged arrays, so every chunk's
arithmetic is identical to its serial counterpart.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from secrets import token_hex

import numpy as np
from scipy.spatial import cKDTree

from repro import observability as obs
from repro.constants import DEFAULT_SEED, FLOAT_DTYPE
from repro.errors import ScoringError
from repro.metaheuristics.evaluation import EvaluationStats, LaunchRecord
from repro.molecules.transforms import normalize_quaternion
from repro.scoring.base import BoundScorer
from repro.scoring.cutoff import BoundCutoffLennardJones
from repro.scoring.lennard_jones import BoundLennardJones
from repro.scoring.pruned import BoundSpotPruned

__all__ = [
    "ArrayHandle",
    "SharedArrayStage",
    "HostWarmupResult",
    "ParallelSpotEvaluator",
    "stage_scorer",
    "rebuild_scorer",
    "DEFAULT_WARMUP_POSES",
    "DEFAULT_WARMUP_REPEATS",
]

#: Poses per warm-up timing launch ("a few candidate solutions", §3.3).
DEFAULT_WARMUP_POSES: int = 64

#: Timed launches per worker; the mean is the Eq. 1 measurement.
DEFAULT_WARMUP_REPEATS: int = 3

#: Give slow machines this long to spawn+warm every worker before falling
#: back to equal shares.
_WARMUP_TIMEOUT_S: float = 120.0


# ----------------------------------------------------------------------
# shared-memory staging
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayHandle:
    """Pickle-friendly reference to one staged array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArrayStage:
    """Owner of a set of named shared-memory segments.

    The parent process stages arrays once; workers attach read-only views.
    The stage owns the segments' lifetime: :meth:`close` unlinks everything,
    and is safe to call repeatedly (worker crashes, double shutdown).
    """

    def __init__(self) -> None:
        self._prefix = f"repro{os.getpid():x}{token_hex(4)}"
        self._segments: list[shared_memory.SharedMemory] = []

    def stage(self, array: np.ndarray) -> ArrayHandle:
        """Copy ``array`` into a new shared segment; return its handle."""
        array = np.ascontiguousarray(array)
        name = f"{self._prefix}n{len(self._segments)}"
        shm = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1), name=name
        )
        self._segments.append(shm)
        if array.size:
            np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[...] = array
        return ArrayHandle(name=name, shape=tuple(array.shape), dtype=str(array.dtype))

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Names of every staged segment (tests probe these for leaks)."""
        return tuple(shm.name for shm in self._segments)

    def close(self) -> None:
        """Close and unlink every segment. Idempotent."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
            except OSError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _attach(handle: ArrayHandle) -> np.ndarray:
    """Attach a read-only view of a staged array (worker side)."""
    try:
        shm = shared_memory.SharedMemory(name=handle.name, track=False)
    except TypeError:  # Python < 3.13 has no track= parameter
        # The parent owns the segments. On forked workers the resource
        # tracker process is shared, so registering here (and unregistering
        # later) would clobber the parent's own registration — suppress the
        # attach-time registration instead.
        original_register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = original_register
    _WORKER.setdefault("segments", []).append(shm)  # keep the mmap alive
    view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view


# ----------------------------------------------------------------------
# scorer staging / rebuilding
# ----------------------------------------------------------------------
def stage_scorer(scorer: BoundScorer, stage: SharedArrayStage) -> dict:
    """Describe ``scorer`` as a pickle-small spec with shared-memory handles.

    The heavy per-complex arrays (receptor coordinates, σ²/4ε tables,
    per-spot subsets) go through ``stage``; workers rebuild an equivalent
    scorer with :func:`rebuild_scorer`. Scorer types without a dedicated
    stager fall back to pickling the whole object (correct, just not
    zero-copy).
    """
    if isinstance(scorer, BoundSpotPruned):
        subset_offsets = np.zeros(len(scorer.spot_indices) + 1, dtype=np.int64)
        ordered = [scorer.subsets[int(s)] for s in scorer.spot_indices]
        np.cumsum([idx.size for idx in ordered], out=subset_offsets[1:])
        subset_data = (
            np.concatenate(ordered) if ordered else np.empty(0, dtype=np.int64)
        )
        return {
            "kind": "pruned",
            "inner": stage_scorer(scorer.inner, stage),
            "mode": scorer.mode,
            "prune_cutoff": scorer.prune_cutoff,
            "lig_extent": scorer.lig_extent,
            "margin": scorer.margin,
            "spot_indices": stage.stage(scorer.spot_indices),
            "spot_centers": stage.stage(scorer.spot_centers),
            "spot_radii": stage.stage(scorer.spot_radii),
            "subset_data": stage.stage(subset_data),
            "subset_offsets": stage.stage(subset_offsets),
        }
    if isinstance(scorer, BoundCutoffLennardJones):
        return {
            "kind": "cutoff",
            "n_receptor": scorer.receptor.n_atoms,
            "n_ligand": scorer.ligand.n_atoms,
            "cutoff": scorer.cutoff,
            "chunk_size": scorer.chunk_size,
            "dtype": str(scorer.dtype),
            "receptor_coords": stage.stage(scorer.receptor_coords),
            "tree_coords": stage.stage(scorer._tree_coords),
            "sigma2": stage.stage(scorer._sigma2),
            "epsilon4": stage.stage(scorer._epsilon4),
            "ligand_coords": stage.stage(scorer.ligand_coords),
        }
    if isinstance(scorer, BoundLennardJones):
        return {
            "kind": "dense",
            "n_receptor": scorer.receptor.n_atoms,
            "n_ligand": scorer.ligand.n_atoms,
            "chunk_size": scorer.chunk_size,
            "receptor_coords": stage.stage(scorer.receptor_coords),
            "rec_sq": stage.stage(scorer._rec_sq),
            "sigma2": stage.stage(scorer._sigma2),
            "epsilon4": stage.stage(scorer._epsilon4),
            "ligand_coords": stage.stage(scorer.ligand_coords),
        }
    return {"kind": "pickle", "blob": pickle.dumps(scorer)}


class _StagedMolecule:
    """Stand-in for a Receptor/Ligand in workers.

    After binding, scoring needs the molecules only for atom counts
    (``flops_per_pose``, launch records); the coordinate payload lives in
    the staged arrays.
    """

    def __init__(self, n_atoms: int) -> None:
        self.n_atoms = int(n_atoms)


def rebuild_scorer(spec: dict) -> BoundScorer:
    """Reconstruct a bound scorer from a :func:`stage_scorer` spec."""
    kind = spec["kind"]
    if kind == "pickle":
        return pickle.loads(spec["blob"])
    if kind == "pruned":
        inner = rebuild_scorer(spec["inner"])
        spot_indices = _attach(spec["spot_indices"])
        subset_data = _attach(spec["subset_data"])
        subset_offsets = _attach(spec["subset_offsets"])
        subsets = {
            int(s): subset_data[subset_offsets[i] : subset_offsets[i + 1]]
            for i, s in enumerate(spot_indices)
        }
        return BoundSpotPruned._from_parts(
            inner,
            mode=spec["mode"],
            prune_cutoff=spec["prune_cutoff"],
            lig_extent=spec["lig_extent"],
            margin=spec["margin"],
            subsets=subsets,
            spot_indices=spot_indices,
            spot_centers=_attach(spec["spot_centers"]),
            spot_radii=_attach(spec["spot_radii"]),
        )
    if kind == "cutoff":
        scorer = BoundCutoffLennardJones.__new__(BoundCutoffLennardJones)
        scorer.receptor = _StagedMolecule(spec["n_receptor"])
        scorer.ligand = _StagedMolecule(spec["n_ligand"])
        scorer.cutoff = float(spec["cutoff"])
        scorer.chunk_size = int(spec["chunk_size"])
        scorer.dtype = np.dtype(spec["dtype"])
        scorer.ligand_coords = _attach(spec["ligand_coords"])
        scorer.receptor_coords = _attach(spec["receptor_coords"])
        scorer._tree_coords = _attach(spec["tree_coords"])
        scorer._sigma2 = _attach(spec["sigma2"])
        scorer._epsilon4 = _attach(spec["epsilon4"])
        # Same float64 input data as the parent's tree ⇒ identical gathers.
        scorer._tree = cKDTree(scorer._tree_coords)
        return scorer
    if kind == "dense":
        scorer = BoundLennardJones.__new__(BoundLennardJones)
        scorer.receptor = _StagedMolecule(spec["n_receptor"])
        scorer.ligand = _StagedMolecule(spec["n_ligand"])
        scorer.chunk_size = int(spec["chunk_size"])
        scorer.ligand_coords = _attach(spec["ligand_coords"])
        scorer.receptor_coords = _attach(spec["receptor_coords"])
        scorer._rec_sq = _attach(spec["rec_sq"])
        scorer._sigma2 = _attach(spec["sigma2"])
        scorer._epsilon4 = _attach(spec["epsilon4"])
        scorer.sigma = None  # full tables stay in the parent
        scorer.epsilon = None
        return scorer
    raise ScoringError(f"unknown staged scorer kind {kind!r}")


# ----------------------------------------------------------------------
# worker process side
# ----------------------------------------------------------------------
#: Per-process state: scorer, worker index, shared counters, attached shm.
_WORKER: dict = {}


def _worker_init(spec, claim, ready, slots, warm) -> None:
    """Pool initializer: attach staged arrays, rebuild the scorer, warm up.

    ``claim`` hands out worker indices; ``ready`` counts workers that have
    finished warming up (the parent's barrier waits on it); ``slots[i]``
    receives worker ``i``'s mean warm-up launch time.
    """
    with claim.get_lock():
        index = int(claim.value)
        claim.value += 1
    scorer = rebuild_scorer(spec)
    _WORKER.update(
        index=index, scorer=scorer, ready=ready, n_workers=len(slots) if slots else 0
    )
    if warm is not None:
        translations, quaternions, repeats = warm
        scorer.score(translations, quaternions)  # page in tables, warm BLAS
        measured = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            scorer.score(translations, quaternions)
            measured.append(time.perf_counter() - t0)
        slots[index] = float(np.mean(measured))
    if ready is not None:
        with ready.get_lock():
            ready.value += 1


def _barrier_task(timeout_s: float) -> int:
    """Block until every worker has initialised (or timeout).

    Submitted once per worker at pool start: each blocked barrier keeps its
    worker busy, which forces :class:`ProcessPoolExecutor` (on-demand
    spawning since 3.9) to actually start all ``n`` processes.
    """
    ready = _WORKER["ready"]
    n = _WORKER["n_workers"]
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        with ready.get_lock():
            if int(ready.value) >= n:
                break
        time.sleep(0.002)
    return _WORKER["index"]


#: Pose-count histogram edges (powers of four up to 256k poses; fixed for
#: snapshot determinism).
_POSE_COUNT_EDGES: tuple[float, ...] = tuple(float(4**k) for k in range(10))


def _run_tasks(
    tasks: list[tuple[str, int, np.ndarray, np.ndarray]],
) -> tuple[list[np.ndarray], dict | None]:
    """Score this worker's share of a launch: a list of (mode, spot, t, q).

    Returns ``(score_arrays, stats)``. ``stats`` is the worker's telemetry
    for this task — a local snapshot document plus the task's monotonic
    start time (the parent turns submit→start into the queue-wait metric)
    — or ``None`` when telemetry was disabled at fork time. Collection
    never touches the scoring arithmetic: energies are bitwise identical
    with or without it.
    """
    started_s = time.monotonic()
    scorer = _WORKER["scorer"]
    index = _WORKER["index"]
    local = obs.Telemetry() if obs.enabled() else None
    out = []
    n_poses = 0
    busy_s = 0.0
    # The batch span rides back in the worker's snapshot and is offset-merged
    # into the parent tracer at harvest — it is the worker-lane block the
    # Chrome trace exporter draws. perf_counter shares CLOCK_MONOTONIC with
    # the parent on Linux, so the timestamps line up across the process seam.
    batch_span = (
        local.span("host.worker.batch", worker=index)
        if local is not None
        else contextlib.nullcontext({})
    )
    with batch_span as batch_tags:
        for mode, spot, translations, quaternions in tasks:
            t0 = time.perf_counter()
            if mode == "spot":
                ids = np.full(translations.shape[0], spot, dtype=np.int64)
                out.append(scorer.score_spots(ids, translations, quaternions))
            else:
                out.append(scorer.score(translations, quaternions))
            if local is not None:
                n_poses += translations.shape[0]
                task_s = time.perf_counter() - t0
                busy_s += task_s
                local.histogram("host.worker.task_seconds", worker=index).observe(task_s)
        batch_tags["tasks"] = len(tasks)
        batch_tags["poses"] = n_poses
    if local is None:
        return out, None
    local.counter("host.worker.poses", worker=index).inc(n_poses)
    local.counter("host.worker.tasks", worker=index).inc(len(tasks))
    return out, {
        "telemetry": local.snapshot(),
        "worker": index,
        "poses": n_poses,
        "busy_s": busy_s,
        "started_s": started_s,
    }


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HostWarmupResult:
    """Eq. 1 over real worker processes.

    ``percent[i] = measured_s[i] / measured_s.max()`` (1.0 for the slowest
    worker); ``weights ∝ 1/percent`` and sum to 1.
    """

    measured_s: np.ndarray
    percent: np.ndarray
    weights: np.ndarray
    elapsed_s: float


@dataclass(frozen=True)
class _Job:
    """One indivisible unit of a launch: a contiguous slice or a spot group."""

    mode: str  # "plain" (grid-aligned range) or "spot" (whole spot group)
    spot: int
    rows: np.ndarray  # positions in the launch's pose batch


class ParallelSpotEvaluator:
    """Evaluator that scores launches across a persistent process pool.

    Implements the :class:`~repro.metaheuristics.evaluation.Evaluator`
    protocol, so it drops into :class:`~repro.metaheuristics.context.SearchContext`
    wherever a :class:`~repro.metaheuristics.evaluation.SerialEvaluator`
    does — recording identical launch traces and returning bitwise identical
    energies (see module docstring).

    Parameters
    ----------
    scorer:
        The bound scorer to parallelise. Staged into shared memory when it
        is one of the known types; pickled otherwise.
    n_workers:
        Worker processes (≥ 1).
    mode:
        ``"static"`` (warm-up-weighted LPT packing, one task per worker per
        launch) or ``"dynamic"`` (work-stealing job queue in LPT order).
    warmup:
        Set False to skip the timing phase (weights become equal). The pool
        is still fully spawned up front.
    warmup_poses, warmup_repeats:
        Size of the Eq. 1 measurement.

    Use as a context manager, or call :meth:`close`; shared segments are
    unlinked on close and on worker-pool failure.
    """

    def __init__(
        self,
        scorer: BoundScorer,
        n_workers: int,
        mode: str = "static",
        warmup: bool = True,
        warmup_poses: int = DEFAULT_WARMUP_POSES,
        warmup_repeats: int = DEFAULT_WARMUP_REPEATS,
    ) -> None:
        if n_workers < 1:
            raise ScoringError(f"n_workers must be >= 1, got {n_workers}")
        if mode not in ("static", "dynamic"):
            raise ScoringError(f"mode must be 'static' or 'dynamic', got {mode!r}")
        if "fork" not in mp.get_all_start_methods():  # pragma: no cover
            raise ScoringError(
                "the parallel host runtime requires the 'fork' start method "
                "(shared counters are inherited, not pickled)"
            )
        self.scorer = scorer
        self.n_workers = int(n_workers)
        self.mode = mode
        self.stats = EvaluationStats()
        self._stage = SharedArrayStage()
        self._pool: ProcessPoolExecutor | None = None
        try:
            spec = stage_scorer(scorer, self._stage)
            ctx = mp.get_context("fork")
            claim = ctx.Value("q", 0)
            ready = ctx.Value("q", 0)
            slots = ctx.Array("d", self.n_workers)
            warm = self._warmup_batch(warmup_poses, warmup_repeats) if warmup else None
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(spec, claim, ready, slots, warm),
            )
            self.warmup_result = self._spawn_and_warm(slots, timed=warmup)
            self.weights = self.warmup_result.weights
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _warmup_batch(
        self, n_poses: int, repeats: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Deterministic measurement poses spread over the receptor box."""
        coords = self.scorer.receptor.coords
        rng = np.random.default_rng(DEFAULT_SEED)
        translations = rng.uniform(
            coords.min(axis=0), coords.max(axis=0), size=(n_poses, 3)
        ).astype(FLOAT_DTYPE)
        quaternions = normalize_quaternion(rng.normal(size=(n_poses, 4)))
        return translations, quaternions, int(repeats)

    def _spawn_and_warm(self, slots, timed: bool) -> HostWarmupResult:
        """Force-spawn all workers via blocking barriers; reduce Eq. 1."""
        with obs.span(
            "host.warmup", workers=self.n_workers, mode=self.mode, timed=timed
        ):
            t0 = time.perf_counter()
            barriers = [
                self._pool.submit(_barrier_task, _WARMUP_TIMEOUT_S)
                for _ in range(self.n_workers)
            ]
            try:
                for future in barriers:
                    future.result(timeout=_WARMUP_TIMEOUT_S)
            except BrokenProcessPool as exc:
                raise ScoringError(
                    f"host worker pool died during warm-up: {exc}"
                ) from exc
            elapsed = time.perf_counter() - t0
        measured = np.array(slots[:], dtype=np.float64)
        if not timed or not np.all(measured > 0.0):
            # untimed pool (or a straggler hit the barrier timeout): fall
            # back to the homogeneous assumption
            measured = np.ones(self.n_workers)
        percent = measured / measured.max()
        weights = 1.0 / percent
        weights /= weights.sum()
        # The Eq. 1 share decision, with its inputs, on the record: what the
        # warm-up measured, the Percent reduction, and the share each worker
        # was assigned as a consequence.
        obs.counter("host.warmups").inc()
        obs.gauge("host.warmup.elapsed_s").set(elapsed)
        for i in range(self.n_workers):
            obs.gauge("host.warmup.measured_s", worker=i).set(float(measured[i]))
            obs.gauge("host.warmup.percent", worker=i).set(float(percent[i]))
            obs.gauge("host.warmup.weight", worker=i).set(float(weights[i]))
        return HostWarmupResult(
            measured_s=measured, percent=percent, weights=weights, elapsed_s=elapsed
        )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _plan(self, spot_ids: np.ndarray) -> list[_Job]:
        """Split one launch along serial-equivalent boundaries.

        Spot-aware scorers group by spot serially, so the job unit is the
        whole per-spot group. Plain scorers chunk the flat batch, so jobs
        are runs of *whole* chunks from the serial chunk grid (ranges stay
        grid-aligned: a worker rechunking its range reproduces exactly the
        chunks the serial loop would have computed).
        """
        n = spot_ids.shape[0]
        if self.scorer.supports_spot_scoring:
            order = np.argsort(spot_ids, kind="stable")
            sorted_ids = spot_ids[order]
            jobs = []
            start = 0
            while start < n:
                end = int(
                    np.searchsorted(sorted_ids, sorted_ids[start], side="right")
                )
                jobs.append(
                    _Job(mode="spot", spot=int(sorted_ids[start]), rows=order[start:end])
                )
                start = end
            return jobs
        chunk = self.scorer.chunk_size
        jobs = []
        run_lo = 0
        run_spot = int(spot_ids[0])
        for lo in range(chunk, n, chunk):
            spot = int(spot_ids[lo])
            if spot != run_spot:
                jobs.append(
                    _Job(mode="plain", spot=run_spot, rows=np.arange(run_lo, lo))
                )
                run_lo, run_spot = lo, spot
        jobs.append(_Job(mode="plain", spot=run_spot, rows=np.arange(run_lo, n)))
        return jobs

    def _assign(self, jobs: list[_Job]) -> list[list[_Job]]:
        """LPT-pack jobs onto workers weighted by measured throughput."""
        order = sorted(range(len(jobs)), key=lambda i: (-jobs[i].rows.size, jobs[i].spot))
        loads = np.zeros(self.n_workers)
        buckets: list[list[_Job]] = [[] for _ in range(self.n_workers)]
        for i in order:
            finish = (loads + jobs[i].rows.size) / self.weights
            worker = int(np.argmin(finish))
            buckets[worker].append(jobs[i])
            loads[worker] += jobs[i].rows.size
        return buckets

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        kind: str = "population",
    ) -> np.ndarray:
        """Score one launch across the pool; record it like the serial path."""
        if self._pool is None:
            raise ScoringError("parallel evaluator is closed")
        spot_ids = np.asarray(spot_ids)
        translations = np.asarray(translations, dtype=FLOAT_DTYPE)
        quaternions = np.asarray(quaternions, dtype=FLOAT_DTYPE)
        if spot_ids.shape[0] != translations.shape[0]:
            raise ScoringError(
                f"{spot_ids.shape[0]} spot ids for {translations.shape[0]} poses"
            )
        unique, counts = np.unique(spot_ids, return_counts=True)
        self.stats.record(
            LaunchRecord(
                n_conformations=int(translations.shape[0]),
                flops_per_pose=self.scorer.flops_per_pose,
                spot_counts={int(s): int(c) for s, c in zip(unique, counts)},
                kind=kind,
                n_receptor_atoms=self.scorer.receptor.n_atoms,
            )
        )
        n = translations.shape[0]
        if n == 0:
            return np.empty(0, dtype=FLOAT_DTYPE)
        jobs = self._plan(spot_ids)
        out = np.empty(n, dtype=FLOAT_DTYPE)
        obs.counter("host.launches", mode=self.mode).inc()
        obs.counter("host.poses", mode=self.mode).inc(n)
        for job in jobs:
            obs.histogram("host.job.poses", edges=_POSE_COUNT_EDGES).observe(
                job.rows.size
            )
        stats: list[dict] = []
        try:
            with obs.span(
                "host.launch", mode=self.mode, kind=kind, poses=n
            ) as launch_tags:
                if self.mode == "static":
                    buckets = self._assign(jobs)
                    futures = []
                    for bucket in buckets:
                        if not bucket:
                            continue
                        tasks = [
                            (job.mode, job.spot, translations[job.rows], quaternions[job.rows])
                            for job in bucket
                        ]
                        submit_s = time.monotonic()
                        futures.append(
                            (bucket, submit_s, self._pool.submit(_run_tasks, tasks))
                        )
                    for bucket, submit_s, future in futures:
                        scores_list, stat = future.result()
                        for job, scores in zip(bucket, scores_list):
                            out[job.rows] = scores
                        if stat is not None:
                            stat["submit_s"] = submit_s
                            stats.append(stat)
                else:  # dynamic: one task per job, largest first, stolen freely
                    order = sorted(
                        range(len(jobs)), key=lambda i: (-jobs[i].rows.size, jobs[i].spot)
                    )
                    futures = []
                    for i in order:
                        submit_s = time.monotonic()
                        futures.append(
                            (
                                jobs[i],
                                submit_s,
                                self._pool.submit(
                                    _run_tasks,
                                    [
                                        (
                                            jobs[i].mode,
                                            jobs[i].spot,
                                            translations[jobs[i].rows],
                                            quaternions[jobs[i].rows],
                                        )
                                    ],
                                ),
                            )
                        )
                    for job, submit_s, future in futures:
                        scores_list, stat = future.result()
                        out[job.rows] = scores_list[0]
                        if stat is not None:
                            stat["submit_s"] = submit_s
                            stats.append(stat)
                # Harvest inside the launch span so the steal count lands as
                # a late annotation on its tags (the trace exporter turns it
                # into an instant event at the launch's end).
                steals = self._harvest(stats, len(jobs))
                if steals:
                    launch_tags["steals"] = steals
        except BrokenProcessPool as exc:
            self.close()
            raise ScoringError(
                f"host worker pool crashed mid-launch ({exc}); shared-memory "
                "segments have been released"
            ) from exc
        # Worker-session telemetry just folded in — let any live sampler
        # record the merge (rate-limited; a cheap registry check otherwise).
        obs.mark("host.harvest")
        return out

    def _harvest(self, stats: list[dict], n_jobs: int) -> int:
        """Merge per-worker telemetry into this process's session.

        The explicit merge-at-join step of the multiprocessing contract:
        each worker returned a local snapshot; here they fold into the
        parent registry, plus the parent-only derived metrics — queue wait
        (task start minus submit, both on the shared monotonic clock),
        per-worker throughput for this launch, and in dynamic mode the
        steal count (tasks a worker pulled beyond the even per-worker
        share, i.e. work it took from a slower sibling). Returns the
        launch's steal count (0 outside dynamic mode).
        """
        if not stats or not obs.enabled():
            return 0
        tasks_by_worker: dict[int, int] = {}
        for stat in stats:
            obs.merge(stat["telemetry"])
            obs.histogram("host.queue_wait_seconds").observe(
                max(0.0, stat["started_s"] - stat["submit_s"])
            )
            worker = int(stat["worker"])
            tasks_by_worker[worker] = tasks_by_worker.get(worker, 0) + 1
            if stat["busy_s"] > 0:
                obs.gauge("host.worker.poses_per_s", worker=worker).set(
                    stat["poses"] / stat["busy_s"]
                )
        if self.mode == "dynamic" and self.n_workers > 1:
            even_share = -(-n_jobs // self.n_workers)  # ceil
            steals = sum(
                max(0, count - even_share) for count in tasks_by_worker.values()
            )
            obs.counter("host.steals").inc(steals)
            return steals
        return 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink every shared segment. Idempotent."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        self._stage.close()

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Shared-memory segment names owned by this evaluator."""
        return self._stage.segment_names

    def __enter__(self) -> "ParallelSpotEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
