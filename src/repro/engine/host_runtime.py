"""Process-parallel host runtime: real cores, same answers.

Everything else in :mod:`repro.engine` *models* parallel hardware; this
module actually uses the machine. A :class:`ParallelSpotEvaluator` shards a
launch's poses across a persistent :class:`~concurrent.futures.ProcessPoolExecutor`,
mirroring the paper's device strategy at the host level:

* **Staging** — receptor coordinates and the precomputed σ²/4ε pair tables
  are written once into :mod:`multiprocessing.shared_memory` segments and
  attached zero-copy by every worker (the Python analogue of staging
  per-complex constants on each GPU before launching scoring kernels; see
  the bind/BoundScorer split in :mod:`repro.scoring.base`).
* **Warm-up (Eq. 1)** — at pool start each worker times a few scoring
  launches; shares are assigned ∝ 1/Percent, exactly the paper's
  ``Percent = t_worker / t_slowest`` heterogeneous split, but with wall
  clocks instead of the simulated performance model.
* **Scheduling** — ``static`` mode LPT-packs per-spot jobs onto workers
  weighted by measured throughput (one task per worker per launch);
  ``dynamic`` mode submits jobs individually in LPT order
  (largest-first, the ordering :mod:`repro.engine.device_worker` uses) so
  whichever worker frees up first pulls the next job — a work-stealing
  queue with no warm-up required.

Determinism contract: for any scorer, ``ParallelSpotEvaluator`` returns
*bitwise* the same energies as :class:`~repro.metaheuristics.evaluation.SerialEvaluator`
with the same seed, for any worker count and either mode. Work is split only
along boundaries the serial path already has — whole chunks of the serial
chunk grid for plain scorers, whole per-spot groups for spot-aware scorers —
and workers rebuild the scorer from the staged arrays, so every chunk's
arithmetic is identical to its serial counterpart.

**Persistence** — the paper runs warm-up once and reuses the shares for the
whole screening; a campaign should likewise pay for pool spawn, receptor
staging and warm-up once, not per ligand. With ``persistent=True`` the
evaluator keeps the receptor-side arrays in the long-lived
:class:`SharedArrayStage` and routes the ligand-varying arrays through
``slot_banks`` :class:`LigandSlotStage` banks (two by default — the classic
double buffer: ligand *i+1* staged while *i* docks). Each bind bumps a
version and every task carries the versioned rebind message, so workers
swap scorers lazily in place — no process churn, no receptor restage, and
the Eq. 1 weights survive until an explicit re-measure.

**Docking pipeline** — with more than two banks, several ligands can be
*resident at once*: :meth:`ParallelSpotEvaluator.stage_ligand` /
:meth:`~ParallelSpotEvaluator.bind_ligand` hand out independent
:class:`_LigandBinding` versions, and :meth:`~ParallelSpotEvaluator.submit`
/ :meth:`~ParallelSpotEvaluator.harvest` split the old synchronous
``evaluate()`` barrier into a ticketed pair, so one ligand's poses fill the
queue while another ligand's metaheuristic does host-side bookkeeping.
Workers key a small scorer cache by version and evict entries the rebind
message no longer lists as live. :class:`PersistentHostRuntime` packages
all of it into the campaign-facing lifecycle
(``acquire``/``lease``/``hint_next``/``evaluator_factory``).
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import pickle
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from secrets import token_hex

import numpy as np
from scipy.spatial import cKDTree

from repro import observability as obs
from repro.constants import DEFAULT_SEED, FLOAT_DTYPE
from repro.errors import ScoringError
from repro.observability.flight import flight_event
from repro.metaheuristics.evaluation import EvaluationStats, LaunchRecord
from repro.molecules.transforms import normalize_quaternion
from repro.scoring.base import BoundScorer
from repro.scoring.batched import BoundBatchedLJ
from repro.scoring.cutoff import BoundCutoffLennardJones, CutoffLennardJonesScoring
from repro.scoring.lennard_jones import BoundLennardJones
from repro.scoring.pruned import BoundSpotPruned, prune_bound

__all__ = [
    "ArrayHandle",
    "SharedArrayStage",
    "LigandSlotStage",
    "HostWarmupResult",
    "LaunchTicket",
    "LigandLease",
    "ParallelSpotEvaluator",
    "PersistentHostRuntime",
    "stage_scorer",
    "rebuild_scorer",
    "DEFAULT_WARMUP_POSES",
    "DEFAULT_WARMUP_REPEATS",
    "DEFAULT_REMEASURE_INTERVAL",
    "DEFAULT_DRIFT_THRESHOLD",
]

#: Poses per warm-up timing launch ("a few candidate solutions", §3.3).
DEFAULT_WARMUP_POSES: int = 64

#: Timed launches per worker; the mean is the Eq. 1 measurement.
DEFAULT_WARMUP_REPEATS: int = 3

#: Give slow machines this long to spawn+warm every worker before falling
#: back to equal shares.
_WARMUP_TIMEOUT_S: float = 120.0

#: Persistent runtime: re-run the Eq. 1 warm-up after this many rebinds.
DEFAULT_REMEASURE_INTERVAL: int = 64

#: Persistent runtime: re-measure early when any worker's observed pose
#: share drifts this far (absolute) from its Eq. 1 weight.
DEFAULT_DRIFT_THRESHOLD: float = 0.25

#: Headroom factor when sizing a reusable ligand slot, so ligands a little
#: larger than the last one reuse the segment instead of retiring it.
_SLOT_GROWTH: float = 1.5

#: Longest a blocking slot-bank reservation waits for a binding release
#: before concluding the pipeline is wedged (leaked leases, usually).
_BANK_WAIT_S: float = 120.0


# ----------------------------------------------------------------------
# shared-memory staging
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayHandle:
    """Pickle-friendly reference to one staged array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArrayStage:
    """Owner of a set of named shared-memory segments.

    The parent process stages arrays once; workers attach read-only views.
    The stage owns the segments' lifetime: :meth:`close` unlinks everything,
    and is safe to call repeatedly (worker crashes, double shutdown).
    """

    def __init__(self) -> None:
        self._prefix = f"repro{os.getpid():x}{token_hex(4)}"
        self._segments: list[shared_memory.SharedMemory] = []

    def stage(self, array: np.ndarray) -> ArrayHandle:
        """Copy ``array`` into a new shared segment; return its handle."""
        array = np.ascontiguousarray(array)
        name = f"{self._prefix}n{len(self._segments)}"
        shm = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1), name=name
        )
        self._segments.append(shm)
        if array.size:
            np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[...] = array
        return ArrayHandle(name=name, shape=tuple(array.shape), dtype=str(array.dtype))

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Names of every staged segment (tests probe these for leaks)."""
        return tuple(shm.name for shm in self._segments)

    def close(self) -> None:
        """Close and unlink every segment. Idempotent."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
            except OSError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class LigandSlotStage:
    """Reusable named shared-memory slots for the ligand-varying arrays.

    Unlike :class:`SharedArrayStage` (stage once, unlink at close), a slot
    stage exists to be *restaged*: each named role keeps one segment that is
    rewritten in place on every ligand rebind. A slot only gets a new
    segment when an incoming array outgrows its capacity (sized with
    ``_SLOT_GROWTH`` headroom); the outgrown segment's name is remembered in
    :attr:`retired` so workers can drop their cached attachments — the
    rebind message carries the cumulative retired list, which keeps workers
    that skipped versions (or were recycled in fresh) consistent.
    """

    def __init__(self, label: str = "a") -> None:
        self._prefix = f"repro{os.getpid():x}{token_hex(4)}{label}"
        self._slots: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        self.retired: list[str] = []

    def restage(self, role: str, array: np.ndarray) -> ArrayHandle:
        """Write ``array`` into the slot for ``role``, growing if needed."""
        array = np.ascontiguousarray(array)
        entry = self._slots.get(role)
        if entry is not None and entry[0].size >= array.nbytes:
            shm, _ = entry
        else:
            generation = 0
            if entry is not None:
                old, generation = entry
                self.retired.append(old.name)
                try:
                    old.close()
                except (OSError, BufferError):
                    pass
                try:
                    old.unlink()
                except FileNotFoundError:
                    pass
                generation += 1
            shm = shared_memory.SharedMemory(
                create=True,
                size=max(int(array.nbytes * _SLOT_GROWTH), 1),
                name=f"{self._prefix}{role}g{generation}",
            )
            self._slots[role] = (shm, generation)
        if array.size:
            np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[...] = array
        return ArrayHandle(name=shm.name, shape=tuple(array.shape), dtype=str(array.dtype))

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Names of every live slot segment."""
        return tuple(shm.name for shm, _ in self._slots.values())

    def close(self) -> None:
        """Close and unlink every slot segment. Idempotent."""
        slots, self._slots = self._slots, {}
        for shm, _ in slots.values():
            try:
                shm.close()
            except (OSError, BufferError):
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _attach(handle: ArrayHandle) -> np.ndarray:
    """Attach a read-only view of a staged array (worker side).

    Attachments are cached by segment name: under the persistent runtime a
    rebind re-views the same slot segment with the new ligand's shape (same
    mmap, freshly written by the parent — no reopen), and only segments the
    rebind message lists as retired are ever dropped from the cache.
    """
    cache = _WORKER.setdefault("segments", {})
    shm = cache.get(handle.name)
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=handle.name, track=False)
        except TypeError:  # Python < 3.13 has no track= parameter
            # The parent owns the segments. On forked workers the resource
            # tracker process is shared, so registering here (and
            # unregistering later) would clobber the parent's own
            # registration — suppress the attach-time registration instead.
            original_register = resource_tracker.register
            resource_tracker.register = lambda name, rtype: None
            try:
                shm = shared_memory.SharedMemory(name=handle.name)
            finally:
                resource_tracker.register = original_register
        cache[handle.name] = shm  # keep the mmap alive
    view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view


# ----------------------------------------------------------------------
# scorer staging / rebuilding
# ----------------------------------------------------------------------
def stage_scorer(
    scorer: BoundScorer,
    stage: SharedArrayStage,
    ligand_stage: LigandSlotStage | None = None,
    receptor_cache: dict[str, ArrayHandle] | None = None,
    _role: str = "",
) -> dict:
    """Describe ``scorer`` as a pickle-small spec with shared-memory handles.

    The heavy per-complex arrays (receptor coordinates, σ²/4ε tables,
    per-spot subsets) go through ``stage``; workers rebuild an equivalent
    scorer with :func:`rebuild_scorer`. Scorer types without a dedicated
    stager fall back to pickling the whole object (correct, just not
    zero-copy).

    ``ligand_stage``/``receptor_cache`` enable the persistent split: arrays
    that change per ligand (ligand coordinates, the ligand×receptor σ²/4ε
    pair tables, pruned subsets) are rewritten into reusable slots, while
    receptor-side arrays (coordinates, KD-tree input, spot geometry) are
    staged once and their handles cached for every later rebind. The
    receptor, spots and scoring must stay fixed for the cache's lifetime —
    the caller's contract, checked here only by shape/dtype.
    """

    def fixed(role: str, array: np.ndarray) -> ArrayHandle:
        role = _role + role
        if receptor_cache is None:
            return stage.stage(array)
        handle = receptor_cache.get(role)
        if handle is not None:
            if handle.shape != tuple(array.shape) or handle.dtype != str(array.dtype):
                raise ScoringError(
                    f"persistent rebind changed a receptor-side array ({role}: "
                    f"{handle.shape}/{handle.dtype} -> {tuple(array.shape)}/"
                    f"{array.dtype}); receptor, spots and scoring must stay "
                    "fixed for the lifetime of the runtime"
                )
            return handle
        handle = stage.stage(array)
        receptor_cache[role] = handle
        return handle

    def varying(role: str, array: np.ndarray) -> ArrayHandle:
        if ligand_stage is None:
            return stage.stage(array)
        return ligand_stage.restage(_role + role, array)

    if isinstance(scorer, BoundSpotPruned):
        subset_offsets = np.zeros(len(scorer.spot_indices) + 1, dtype=np.int64)
        ordered = [scorer.subsets[int(s)] for s in scorer.spot_indices]
        np.cumsum([idx.size for idx in ordered], out=subset_offsets[1:])
        subset_data = (
            np.concatenate(ordered) if ordered else np.empty(0, dtype=np.int64)
        )
        # Spot geometry and the spot index set are receptor+spots facts; the
        # subsets are not — their margin includes the ligand's extent.
        return {
            "kind": "pruned",
            "inner": stage_scorer(
                scorer.inner, stage, ligand_stage, receptor_cache, _role + "i."
            ),
            "mode": scorer.mode,
            "prune_cutoff": scorer.prune_cutoff,
            "lig_extent": scorer.lig_extent,
            "margin": scorer.margin,
            "spot_indices": fixed("spot_indices", scorer.spot_indices),
            "spot_centers": fixed("spot_centers", scorer.spot_centers),
            "spot_radii": fixed("spot_radii", scorer.spot_radii),
            "subset_data": varying("subset_data", subset_data),
            "subset_offsets": varying("subset_offsets", subset_offsets),
        }
    if isinstance(scorer, BoundCutoffLennardJones):
        return {
            "kind": "cutoff",
            "n_receptor": scorer.receptor.n_atoms,
            "n_ligand": scorer.ligand.n_atoms,
            "cutoff": scorer.cutoff,
            "chunk_size": scorer.chunk_size,
            "dtype": str(scorer.dtype),
            "receptor_coords": fixed("receptor_coords", scorer.receptor_coords),
            "tree_coords": fixed("tree_coords", scorer._tree_coords),
            "sigma2": varying("sigma2", scorer._sigma2),
            "epsilon4": varying("epsilon4", scorer._epsilon4),
            "ligand_coords": varying("ligand_coords", scorer.ligand_coords),
        }
    if isinstance(scorer, BoundBatchedLJ):
        # The tuned chunk_size rides in the spec, so persistent-pool rebind
        # messages carry the autotuner's (variant, chunk_size) decision and
        # workers rebuild exactly the kernel the parent selected.
        return {
            "kind": "batched",
            "n_receptor": scorer.receptor.n_atoms,
            "n_ligand": scorer.ligand.n_atoms,
            "chunk_size": scorer.chunk_size,
            "rec_aug": fixed("rec_aug", scorer._rec_aug),
            "sigma2": varying("sigma2", scorer._sigma2),
            "epsilon4": varying("epsilon4", scorer._epsilon4),
            "ligand_coords": varying("ligand_coords", scorer.ligand_coords),
        }
    if isinstance(scorer, BoundLennardJones):
        return {
            "kind": "dense",
            "n_receptor": scorer.receptor.n_atoms,
            "n_ligand": scorer.ligand.n_atoms,
            "chunk_size": scorer.chunk_size,
            "receptor_coords": fixed("receptor_coords", scorer.receptor_coords),
            "rec_sq": fixed("rec_sq", scorer._rec_sq),
            "sigma2": varying("sigma2", scorer._sigma2),
            "epsilon4": varying("epsilon4", scorer._epsilon4),
            "ligand_coords": varying("ligand_coords", scorer.ligand_coords),
        }
    return {"kind": "pickle", "blob": pickle.dumps(scorer)}


class _StagedMolecule:
    """Stand-in for a Receptor/Ligand in workers.

    After binding, scoring needs the molecules only for atom counts
    (``flops_per_pose``, launch records); the coordinate payload lives in
    the staged arrays.
    """

    def __init__(self, n_atoms: int) -> None:
        self.n_atoms = int(n_atoms)


def rebuild_scorer(spec: dict) -> BoundScorer:
    """Reconstruct a bound scorer from a :func:`stage_scorer` spec."""
    kind = spec["kind"]
    if kind == "pickle":
        return pickle.loads(spec["blob"])
    if kind == "pruned":
        inner = rebuild_scorer(spec["inner"])
        spot_indices = _attach(spec["spot_indices"])
        subset_data = _attach(spec["subset_data"])
        subset_offsets = _attach(spec["subset_offsets"])
        subsets = {
            int(s): subset_data[subset_offsets[i] : subset_offsets[i + 1]]
            for i, s in enumerate(spot_indices)
        }
        return BoundSpotPruned._from_parts(
            inner,
            mode=spec["mode"],
            prune_cutoff=spec["prune_cutoff"],
            lig_extent=spec["lig_extent"],
            margin=spec["margin"],
            subsets=subsets,
            spot_indices=spot_indices,
            spot_centers=_attach(spec["spot_centers"]),
            spot_radii=_attach(spec["spot_radii"]),
        )
    if kind == "cutoff":
        scorer = BoundCutoffLennardJones.__new__(BoundCutoffLennardJones)
        scorer.receptor = _StagedMolecule(spec["n_receptor"])
        scorer.ligand = _StagedMolecule(spec["n_ligand"])
        scorer.cutoff = float(spec["cutoff"])
        scorer.chunk_size = int(spec["chunk_size"])
        scorer.dtype = np.dtype(spec["dtype"])
        scorer.ligand_coords = _attach(spec["ligand_coords"])
        scorer.receptor_coords = _attach(spec["receptor_coords"])
        scorer._tree_coords = _attach(spec["tree_coords"])
        scorer._sigma2 = _attach(spec["sigma2"])
        scorer._epsilon4 = _attach(spec["epsilon4"])
        # Same float64 input data as the parent's tree ⇒ identical gathers.
        # Cached by segment name: the persistent runtime stages the tree
        # coordinates once per campaign, so each worker builds this exactly
        # once and every ligand rebind reuses it.
        trees = _WORKER.setdefault("trees", {})
        tree = trees.get(spec["tree_coords"].name)
        if tree is None:
            tree = cKDTree(scorer._tree_coords)
            trees[spec["tree_coords"].name] = tree
        scorer._tree = tree
        return scorer
    if kind == "batched":
        scorer = BoundBatchedLJ.__new__(BoundBatchedLJ)
        scorer.receptor = _StagedMolecule(spec["n_receptor"])
        scorer.ligand = _StagedMolecule(spec["n_ligand"])
        scorer.chunk_size = int(spec["chunk_size"])
        scorer.ligand_coords = _attach(spec["ligand_coords"])
        scorer._rec_aug = _attach(spec["rec_aug"])
        scorer._sigma2 = _attach(spec["sigma2"])
        scorer._epsilon4 = _attach(spec["epsilon4"])
        scorer.sigma = None  # full tables stay in the parent
        scorer.epsilon = None
        scorer._scratch = None  # rebuilt lazily on first score
        return scorer
    if kind == "dense":
        scorer = BoundLennardJones.__new__(BoundLennardJones)
        scorer.receptor = _StagedMolecule(spec["n_receptor"])
        scorer.ligand = _StagedMolecule(spec["n_ligand"])
        scorer.chunk_size = int(spec["chunk_size"])
        scorer.ligand_coords = _attach(spec["ligand_coords"])
        scorer.receptor_coords = _attach(spec["receptor_coords"])
        scorer._rec_sq = _attach(spec["rec_sq"])
        scorer._sigma2 = _attach(spec["sigma2"])
        scorer._epsilon4 = _attach(spec["epsilon4"])
        scorer.sigma = None  # full tables stay in the parent
        scorer.epsilon = None
        return scorer
    raise ScoringError(f"unknown staged scorer kind {kind!r}")


# ----------------------------------------------------------------------
# worker process side
# ----------------------------------------------------------------------
#: Per-process state: scorer, worker index, shared counters, attached shm.
_WORKER: dict = {}


def _worker_init(spec, claim, ready, slots, warm) -> None:
    """Pool initializer: attach staged arrays, rebuild the scorer, warm up.

    ``claim`` hands out worker indices; ``ready`` counts workers that have
    finished warming up (the parent's barrier waits on it); ``slots[i]``
    receives worker ``i``'s mean warm-up launch time.

    ``spec=None`` is the recycle path: a replacement worker comes up with no
    scorer and no warm-up — the first task it runs carries a versioned
    rebind message it rebuilds from (the staged receptor never went away).
    """
    with claim.get_lock():
        index = int(claim.value)
        claim.value += 1
    _WORKER.update(
        index=index,
        scorer=None,
        version=None,
        ready=ready,
        slots=slots,
        n_workers=len(slots) if slots else 0,
    )
    scorer = None
    if spec is not None:
        scorer = rebuild_scorer(spec)
        _WORKER.update(scorer=scorer, version=0, scorers={0: scorer})
    if warm is not None and scorer is not None:
        translations, quaternions, repeats = warm
        scorer.score(translations, quaternions)  # page in tables, warm BLAS
        measured = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            scorer.score(translations, quaternions)
            measured.append(time.perf_counter() - t0)
        slots[index] = float(np.mean(measured))
    if ready is not None:
        with ready.get_lock():
            ready.value += 1


def _worker_rebind(
    version: int,
    spec: dict,
    retired: tuple[str, ...],
    live: tuple[int, ...] | None = None,
) -> None:
    """Swap a ligand's scorer in place (worker side).

    Scorers are cached by slot version: under the docking pipeline several
    ligands are live at once and consecutive tasks ping-pong between their
    versions, so a switch back to a version this worker already built is a
    dict lookup, not a rebuild. A first-seen version rebuilds from the spec
    — receptor-side handles hit the attachment cache, so only the small
    ligand views are re-made. ``live`` (when present) names every version
    still bound in the parent; cached scorers outside it are evicted, and
    attachments for retired (outgrown) slot segments are dropped. The
    cumulative retired list makes this correct for workers that skipped
    intermediate versions or were recycled in with no scorer at all.
    """
    scorers = _WORKER.setdefault("scorers", {})
    scorer = scorers.get(version)
    if scorer is None:
        scorer = rebuild_scorer(spec)
        scorers[version] = scorer
    _WORKER.update(scorer=scorer, version=version)
    if live is not None:
        for stale in [v for v in scorers if v != version and v not in live]:
            del scorers[stale]
    cache = _WORKER.setdefault("segments", {})
    for name in retired:
        shm = cache.pop(name, None)
        if shm is not None:
            try:
                shm.close()
            except (OSError, BufferError):
                pass


def _measure_task(rebind, warm, timeout_s: float) -> int:
    """Re-run the Eq. 1 measurement on a live worker (persistent runtime).

    Submitted once per worker, like :func:`_barrier_task`: after timing,
    each worker blocks until every sibling has reported, which pins exactly
    one measurement to each process. The parent reset ``ready`` to zero
    before the round (no tasks are in flight between launches).
    """
    if _WORKER.get("version") != rebind[0]:
        _worker_rebind(*rebind)
    scorer = _WORKER["scorer"]
    index = _WORKER["index"]
    translations, quaternions, repeats = warm
    scorer.score(translations, quaternions)
    measured = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        scorer.score(translations, quaternions)
        measured.append(time.perf_counter() - t0)
    _WORKER["slots"][index] = float(np.mean(measured))
    ready = _WORKER["ready"]
    with ready.get_lock():
        ready.value += 1
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        with ready.get_lock():
            if int(ready.value) >= _WORKER["n_workers"]:
                break
        time.sleep(0.002)
    return index


def _barrier_task(timeout_s: float) -> int:
    """Block until every worker has initialised (or timeout).

    Submitted once per worker at pool start: each blocked barrier keeps its
    worker busy, which forces :class:`ProcessPoolExecutor` (on-demand
    spawning since 3.9) to actually start all ``n`` processes.
    """
    ready = _WORKER["ready"]
    n = _WORKER["n_workers"]
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        with ready.get_lock():
            if int(ready.value) >= n:
                break
        time.sleep(0.002)
    return _WORKER["index"]


#: Pose-count histogram edges (powers of four up to 256k poses; fixed for
#: snapshot determinism).
_POSE_COUNT_EDGES: tuple[float, ...] = tuple(float(4**k) for k in range(10))


def _run_tasks(
    tasks: list[tuple[str, int, np.ndarray, np.ndarray]],
    rebind: tuple[int, dict, tuple[str, ...], tuple[int, ...]] | None = None,
) -> tuple[list[np.ndarray], dict | None]:
    """Score this worker's share of a launch: a list of (mode, spot, t, q).

    ``rebind`` is the persistent runtime's versioned rebind message
    ``(version, spec, retired_segment_names, live_versions)``; a worker
    whose current scorer is a different version switches (or rebuilds) in
    place before scoring — see :func:`_worker_rebind`. Rebuilding is pure
    attachment bookkeeping — the staged bytes are what they are — so the
    energies stay bitwise identical to a fresh pool's.

    Returns ``(score_arrays, stats)``. ``stats`` is the worker's telemetry
    for this task — a local snapshot document plus the task's monotonic
    start time (the parent turns submit→start into the queue-wait metric)
    — or ``None`` when telemetry was disabled at fork time. Collection
    never touches the scoring arithmetic: energies are bitwise identical
    with or without it.
    """
    started_s = time.monotonic()
    if rebind is not None and _WORKER.get("version") != rebind[0]:
        _worker_rebind(*rebind)
    scorer = _WORKER["scorer"]
    index = _WORKER["index"]
    local = obs.Telemetry() if obs.enabled() else None
    out = []
    n_poses = 0
    busy_s = 0.0
    # The batch span rides back in the worker's snapshot and is offset-merged
    # into the parent tracer at harvest — it is the worker-lane block the
    # Chrome trace exporter draws. perf_counter shares CLOCK_MONOTONIC with
    # the parent on Linux, so the timestamps line up across the process seam.
    batch_span = (
        local.span("host.worker.batch", worker=index)
        if local is not None
        else contextlib.nullcontext({})
    )
    with batch_span as batch_tags:
        for mode, spot, translations, quaternions in tasks:
            t0 = time.perf_counter()
            if mode == "spot":
                ids = np.full(translations.shape[0], spot, dtype=np.int64)
                out.append(scorer.score_spots(ids, translations, quaternions))
            else:
                out.append(scorer.score(translations, quaternions))
            if local is not None:
                n_poses += translations.shape[0]
                task_s = time.perf_counter() - t0
                busy_s += task_s
                local.histogram("host.worker.task_seconds", worker=index).observe(task_s)
        batch_tags["tasks"] = len(tasks)
        batch_tags["poses"] = n_poses
    if local is None:
        return out, None
    local.counter("host.worker.poses", worker=index).inc(n_poses)
    local.counter("host.worker.tasks", worker=index).inc(len(tasks))
    return out, {
        "telemetry": local.snapshot(),
        "worker": index,
        "poses": n_poses,
        "busy_s": busy_s,
        "started_s": started_s,
    }


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HostWarmupResult:
    """Eq. 1 over real worker processes.

    ``percent[i] = measured_s[i] / measured_s.max()`` (1.0 for the slowest
    worker); ``weights ∝ 1/percent`` and sum to 1.
    """

    measured_s: np.ndarray
    percent: np.ndarray
    weights: np.ndarray
    elapsed_s: float


@dataclass(frozen=True)
class _Job:
    """One indivisible unit of a launch: a contiguous slice or a spot group."""

    mode: str  # "plain" (grid-aligned range) or "spot" (whole spot group)
    spot: int
    rows: np.ndarray  # positions in the launch's pose batch


@dataclass(frozen=True, eq=False)
class _LigandBinding:
    """One ligand resident in a slot bank, addressable by version.

    The pipeline's unit of residency: :meth:`ParallelSpotEvaluator.bind_ligand`
    mints one per staged ligand, every :meth:`~ParallelSpotEvaluator.submit`
    names one, and :meth:`~ParallelSpotEvaluator.release_binding` frees its
    bank for the next ligand. ``spec`` is ``None`` only for the
    non-persistent evaluator's synthetic binding (no banks, no rebind).
    """

    version: int
    bank: int
    spec: dict | None
    scorer: BoundScorer


class LaunchTicket:
    """One in-flight launch: the handle between ``submit`` and ``harvest``.

    Holds the jobs' futures, the preallocated output array, and the launch
    span (opened at submit, closed at harvest, so the traced duration spans
    queue wait + scoring). Submit and harvest a ticket from the *same*
    thread — the span nests on the submitting thread's stack.
    """

    __slots__ = (
        "binding", "n", "kind", "epoch", "out", "pending", "n_jobs",
        "span", "span_tags", "done", "registered",
    )

    def __init__(self, binding: _LigandBinding, n: int, kind: str, epoch: int) -> None:
        self.binding = binding
        self.n = n
        self.kind = kind
        self.epoch = epoch
        self.out: np.ndarray | None = None
        self.pending: list = []  # (jobs_bucket, submit_s, Future) triples
        self.n_jobs = 0
        self.span = None
        self.span_tags: dict | None = None
        self.done = False
        self.registered = False  # counted in the evaluator's in-flight map


class ParallelSpotEvaluator:
    """Evaluator that scores launches across a persistent process pool.

    Implements the :class:`~repro.metaheuristics.evaluation.Evaluator`
    protocol, so it drops into :class:`~repro.metaheuristics.context.SearchContext`
    wherever a :class:`~repro.metaheuristics.evaluation.SerialEvaluator`
    does — recording identical launch traces and returning bitwise identical
    energies (see module docstring).

    Parameters
    ----------
    scorer:
        The bound scorer to parallelise. Staged into shared memory when it
        is one of the known types; pickled otherwise.
    n_workers:
        Worker processes (≥ 1).
    mode:
        ``"static"`` (warm-up-weighted LPT packing, one task per worker per
        launch) or ``"dynamic"`` (work-stealing job queue in LPT order).
    warmup:
        Set False to skip the timing phase (weights become equal). The pool
        is still fully spawned up front.
    warmup_poses, warmup_repeats:
        Size of the Eq. 1 measurement.
    persistent:
        Keep the pool ligand-swappable: ligand-varying arrays go through
        reusable :class:`LigandSlotStage` banks and :meth:`rebind` (or the
        pipeline's :meth:`bind_ligand`) swaps a new ligand in without
        touching the pool, the staged receptor, or the warm-up weights. A
        crashed pool is then :meth:`recycle`-d instead of closed.
    slot_banks:
        Number of ligand slot banks (persistent only, ≥ 2). Two is the
        classic double buffer; a depth-``D`` docking pipeline wants
        ``D + 1`` so D ligands are resident while the next one stages.

    Use as a context manager, or call :meth:`close`; shared segments are
    unlinked on close and on worker-pool failure.
    """

    def __init__(
        self,
        scorer: BoundScorer,
        n_workers: int,
        mode: str = "static",
        warmup: bool = True,
        warmup_poses: int = DEFAULT_WARMUP_POSES,
        warmup_repeats: int = DEFAULT_WARMUP_REPEATS,
        persistent: bool = False,
        slot_banks: int = 2,
    ) -> None:
        if n_workers < 1:
            raise ScoringError(f"n_workers must be >= 1, got {n_workers}")
        if mode not in ("static", "dynamic"):
            raise ScoringError(f"mode must be 'static' or 'dynamic', got {mode!r}")
        if persistent and slot_banks < 2:
            raise ScoringError(f"slot_banks must be >= 2, got {slot_banks}")
        if "fork" not in mp.get_all_start_methods():  # pragma: no cover
            raise ScoringError(
                "the parallel host runtime requires the 'fork' start method "
                "(shared counters are inherited, not pickled)"
            )
        self.scorer = scorer
        self.n_workers = int(n_workers)
        self.mode = mode
        self.persistent = bool(persistent)
        self.stats = EvaluationStats()
        self._stage = SharedArrayStage()
        self._banks: list[LigandSlotStage] | None = (
            [LigandSlotStage(f"b{i}x") for i in range(int(slot_banks))]
            if self.persistent
            else None
        )
        self._receptor_cache: dict[str, ArrayHandle] | None = (
            {} if self.persistent else None
        )
        self._version = 0
        # Bank/binding bookkeeping and the in-flight launch map share one
        # condition: bank release notifies blocked reservations.
        self._lock = threading.Condition()
        self._bank_free: list[bool] = [False] + [True] * (int(slot_banks) - 1)
        self._bindings: dict[int, _LigandBinding] = {}
        self._active: _LigandBinding | None = None
        self._inflight: dict[int, int] = {}  # binding version -> live tickets
        self._idle_mark: float | None = None
        self._pool_epoch = 0
        self._recycle_lock = threading.Lock()
        self._obs_lock = threading.Lock()  # serializes telemetry merges
        self._drift_poses = np.zeros(self.n_workers)
        self._pool: ProcessPoolExecutor | None = None
        try:
            spec = stage_scorer(
                scorer,
                self._stage,
                ligand_stage=self._banks[0] if self.persistent else None,
                receptor_cache=self._receptor_cache,
            )
            self._active = _LigandBinding(
                version=0,
                bank=0 if self.persistent else -1,
                spec=spec if self.persistent else None,
                scorer=scorer,
            )
            if self.persistent:
                self._bindings[0] = self._active
            ctx = mp.get_context("fork")
            self._ctx = ctx
            self._claim = ctx.Value("q", 0)
            self._ready = ctx.Value("q", 0)
            self._slots = ctx.Array("d", self.n_workers)
            self._warm = (
                self._warmup_batch(warmup_poses, warmup_repeats) if warmup else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(spec, self._claim, self._ready, self._slots, self._warm),
            )
            self.warmup_result = self._spawn_and_warm(self._slots, timed=warmup)
            self.weights = self.warmup_result.weights
            self._idle_mark = time.monotonic()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _warmup_batch(
        self, n_poses: int, repeats: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Deterministic measurement poses spread over the receptor box."""
        coords = self.scorer.receptor.coords
        rng = np.random.default_rng(DEFAULT_SEED)
        translations = rng.uniform(
            coords.min(axis=0), coords.max(axis=0), size=(n_poses, 3)
        ).astype(FLOAT_DTYPE)
        quaternions = normalize_quaternion(rng.normal(size=(n_poses, 4)))
        return translations, quaternions, int(repeats)

    def _spawn_and_warm(self, slots, timed: bool) -> HostWarmupResult:
        """Force-spawn all workers via blocking barriers; reduce Eq. 1."""
        with obs.span(
            "host.warmup", workers=self.n_workers, mode=self.mode, timed=timed
        ):
            t0 = time.perf_counter()
            barriers = [
                self._pool.submit(_barrier_task, _WARMUP_TIMEOUT_S)
                for _ in range(self.n_workers)
            ]
            try:
                for future in barriers:
                    future.result(timeout=_WARMUP_TIMEOUT_S)
            except BrokenProcessPool as exc:
                raise ScoringError(
                    f"host worker pool died during warm-up: {exc}"
                ) from exc
            elapsed = time.perf_counter() - t0
        obs.counter("host.warmups").inc()
        return self._reduce_warmup(np.array(slots[:], dtype=np.float64), elapsed, timed)

    def _reduce_warmup(
        self, measured: np.ndarray, elapsed: float, timed: bool
    ) -> HostWarmupResult:
        """Turn per-worker timings into Eq. 1 shares; publish the decision."""
        if not timed or not np.all(measured > 0.0):
            # untimed pool (or a straggler hit the barrier timeout): fall
            # back to the homogeneous assumption
            measured = np.ones(self.n_workers)
        percent = measured / measured.max()
        weights = 1.0 / percent
        weights /= weights.sum()
        # The Eq. 1 share decision, with its inputs, on the record: what the
        # warm-up measured, the Percent reduction, and the share each worker
        # was assigned as a consequence.
        obs.gauge("host.warmup.elapsed_s").set(elapsed)
        for i in range(self.n_workers):
            obs.gauge("host.warmup.measured_s", worker=i).set(float(measured[i]))
            obs.gauge("host.warmup.percent", worker=i).set(float(percent[i]))
            obs.gauge("host.warmup.weight", worker=i).set(float(weights[i]))
        return HostWarmupResult(
            measured_s=measured, percent=percent, weights=weights, elapsed_s=elapsed
        )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _plan(self, spot_ids: np.ndarray, scorer: BoundScorer) -> list[_Job]:
        """Split one launch along serial-equivalent boundaries.

        Spot-aware scorers group by spot serially, so the job unit is the
        whole per-spot group. Plain scorers chunk the flat batch, so jobs
        are runs of *whole* chunks from the serial chunk grid (ranges stay
        grid-aligned: a worker rechunking its range reproduces exactly the
        chunks the serial loop would have computed).
        """
        n = spot_ids.shape[0]
        if scorer.supports_spot_scoring:
            order = np.argsort(spot_ids, kind="stable")
            sorted_ids = spot_ids[order]
            jobs = []
            start = 0
            while start < n:
                end = int(
                    np.searchsorted(sorted_ids, sorted_ids[start], side="right")
                )
                jobs.append(
                    _Job(mode="spot", spot=int(sorted_ids[start]), rows=order[start:end])
                )
                start = end
            return jobs
        chunk = scorer.chunk_size
        jobs = []
        run_lo = 0
        run_spot = int(spot_ids[0])
        for lo in range(chunk, n, chunk):
            spot = int(spot_ids[lo])
            if spot != run_spot:
                jobs.append(
                    _Job(mode="plain", spot=run_spot, rows=np.arange(run_lo, lo))
                )
                run_lo, run_spot = lo, spot
        jobs.append(_Job(mode="plain", spot=run_spot, rows=np.arange(run_lo, n)))
        return jobs

    def _assign(self, jobs: list[_Job]) -> list[list[_Job]]:
        """LPT-pack jobs onto workers weighted by measured throughput."""
        order = sorted(range(len(jobs)), key=lambda i: (-jobs[i].rows.size, jobs[i].spot))
        loads = np.zeros(self.n_workers)
        buckets: list[list[_Job]] = [[] for _ in range(self.n_workers)]
        for i in order:
            finish = (loads + jobs[i].rows.size) / self.weights
            worker = int(np.argmin(finish))
            buckets[worker].append(jobs[i])
            loads[worker] += jobs[i].rows.size
        return buckets

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        kind: str = "population",
    ) -> np.ndarray:
        """Score one launch across the pool; record it like the serial path.

        The synchronous barrier form: ``harvest(submit(...))`` against the
        active binding. The docking pipeline keeps the two halves apart so
        another ligand's poses can fill the gap.
        """
        return self.harvest(self.submit(spot_ids, translations, quaternions, kind))

    def submit(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        kind: str = "population",
        *,
        binding: _LigandBinding | None = None,
        stats: EvaluationStats | None = None,
    ) -> LaunchTicket:
        """Queue one launch without blocking; returns its :class:`LaunchTicket`.

        ``binding`` selects which resident ligand the poses belong to
        (default: the active one); ``stats`` the launch trace to record
        into (default: the evaluator's own — per-ligand pipelines pass
        their own so traces stay bitwise identical to a serial run's).
        """
        if self._pool is None:
            raise ScoringError("parallel evaluator is closed")
        if binding is None:
            binding = self._active
        if binding is None:
            raise ScoringError("no active ligand binding (was it released?)")
        if self.persistent and self._bindings.get(binding.version) is not binding:
            raise ScoringError(
                f"launch submitted against released ligand binding v{binding.version}"
            )
        if stats is None:
            stats = self.stats
        spot_ids = np.asarray(spot_ids)
        translations = np.asarray(translations, dtype=FLOAT_DTYPE)
        quaternions = np.asarray(quaternions, dtype=FLOAT_DTYPE)
        if spot_ids.shape[0] != translations.shape[0]:
            raise ScoringError(
                f"{spot_ids.shape[0]} spot ids for {translations.shape[0]} poses"
            )
        unique, counts = np.unique(spot_ids, return_counts=True)
        stats.record(
            LaunchRecord(
                n_conformations=int(translations.shape[0]),
                flops_per_pose=binding.scorer.flops_per_pose,
                spot_counts={int(s): int(c) for s, c in zip(unique, counts)},
                kind=kind,
                n_receptor_atoms=binding.scorer.receptor.n_atoms,
            )
        )
        n = int(translations.shape[0])
        ticket = LaunchTicket(binding=binding, n=n, kind=kind, epoch=self._pool_epoch)
        if n == 0:
            ticket.out = np.empty(0, dtype=FLOAT_DTYPE)
            ticket.done = True
            return ticket
        jobs = self._plan(spot_ids, binding.scorer)
        ticket.out = np.empty(n, dtype=FLOAT_DTYPE)
        ticket.n_jobs = len(jobs)
        obs.counter("host.launches", mode=self.mode).inc()
        obs.counter("host.poses", mode=self.mode).inc(n)
        for job in jobs:
            obs.histogram("host.job.poses", edges=_POSE_COUNT_EDGES).observe(
                job.rows.size
            )
        rebind = self._binding_message(binding) if self.persistent else None
        span = obs.span("host.launch", mode=self.mode, kind=kind, poses=n)
        ticket.span = span
        ticket.span_tags = span.__enter__()
        try:
            if self.mode == "static":
                for bucket in self._assign(jobs):
                    if not bucket:
                        continue
                    tasks = [
                        (job.mode, job.spot, translations[job.rows], quaternions[job.rows])
                        for job in bucket
                    ]
                    submit_s = time.monotonic()
                    ticket.pending.append(
                        (bucket, submit_s, self._pool.submit(_run_tasks, tasks, rebind))
                    )
            else:  # dynamic: one task per job, largest first, stolen freely
                order = sorted(
                    range(len(jobs)), key=lambda i: (-jobs[i].rows.size, jobs[i].spot)
                )
                for i in order:
                    job = jobs[i]
                    task = (job.mode, job.spot, translations[job.rows], quaternions[job.rows])
                    submit_s = time.monotonic()
                    ticket.pending.append(
                        ([job], submit_s, self._pool.submit(_run_tasks, [task], rebind))
                    )
        except (BrokenProcessPool, RuntimeError) as exc:
            # RuntimeError: pool shut down under us (a sibling ticket's
            # recycle); both resolve the same way.
            self._finish_ticket(ticket)
            self._pool_failure(ticket.epoch, exc)
        except BaseException:
            self._finish_ticket(ticket)
            raise
        with self._lock:
            now = time.monotonic()
            if not self._inflight and self._idle_mark is not None:
                # the pool sat idle between the last harvest and this submit
                obs.counter("host.pool.idle.seconds").inc(max(0.0, now - self._idle_mark))
            if any(version != binding.version for version in self._inflight):
                # poses overlapping another resident ligand's in-flight work:
                # the pipeline is actually filling barrier gaps
                obs.counter("host.pipeline.fill.poses").inc(n)
            self._inflight[binding.version] = self._inflight.get(binding.version, 0) + 1
            ticket.registered = True
        return ticket

    def poll(self, ticket: LaunchTicket) -> bool:
        """True once ``ticket``'s futures are all settled (harvest won't block)."""
        return ticket.done or all(future.done() for _, _, future in ticket.pending)

    def harvest(self, ticket: LaunchTicket) -> np.ndarray:
        """Block on a submitted launch and return its energies.

        Folds the workers' telemetry snapshots into this process's session
        and closes the ticket's launch span. Harvest from the thread that
        submitted. Idempotent on success; a pool crash recycles the workers
        (persistent) and raises a retryable :class:`ScoringError`.
        """
        if ticket.done:
            if ticket.out is None:
                raise ScoringError("launch ticket already failed")
            return ticket.out
        stats: list[dict] = []
        try:
            for bucket, submit_s, future in ticket.pending:
                scores_list, stat = future.result()
                for job, scores in zip(bucket, scores_list):
                    ticket.out[job.rows] = scores
                if stat is not None:
                    stat["submit_s"] = submit_s
                    stats.append(stat)
            # Harvest inside the launch span so the steal count lands as
            # a late annotation on its tags (the trace exporter turns it
            # into an instant event at the launch's end).
            steals = self._harvest(stats, ticket.n_jobs)
            if steals and ticket.span_tags is not None:
                ticket.span_tags["steals"] = steals
        except (BrokenProcessPool, CancelledError) as exc:
            ticket.out = None
            self._finish_ticket(ticket)
            self._pool_failure(ticket.epoch, exc)
        except BaseException:
            ticket.out = None
            self._finish_ticket(ticket)
            raise
        self._finish_ticket(ticket)
        # Worker-session telemetry just folded in — let any live sampler
        # record the merge (rate-limited; a cheap registry check otherwise).
        obs.mark("host.harvest")
        return ticket.out

    def _finish_ticket(self, ticket: LaunchTicket) -> None:
        """Close out a ticket: in-flight accounting, idle clock, launch span."""
        if ticket.done:
            return
        ticket.done = True
        if ticket.registered:
            with self._lock:
                left = self._inflight.get(ticket.binding.version, 0) - 1
                if left > 0:
                    self._inflight[ticket.binding.version] = left
                else:
                    self._inflight.pop(ticket.binding.version, None)
                if not self._inflight:
                    self._idle_mark = time.monotonic()
        if ticket.span is not None:
            span, ticket.span = ticket.span, None
            span.__exit__(None, None, None)

    def _pool_failure(self, epoch: int, exc: BaseException) -> None:
        """Shared crash path: recycle (persistent) or close, raise retryable.

        ``epoch`` is the pool generation the failed ticket was submitted
        against; with several tickets in flight only the first to notice
        recycles — the rest see the bumped epoch and just re-raise.
        """
        if not self.persistent:
            self.close()
            raise ScoringError(
                f"host worker pool crashed mid-launch ({exc}); shared-memory "
                "segments have been released"
            ) from exc
        with self._recycle_lock:
            if self._pool_epoch == epoch and self._pool is not None:
                self.recycle()
        raise ScoringError(
            f"host worker pool crashed mid-launch ({exc}); workers "
            "recycled — the staged receptor and Eq. 1 weights survive, "
            "retry the launch"
        ) from exc

    def _harvest(self, stats: list[dict], n_jobs: int) -> int:
        """Merge per-worker telemetry into this process's session.

        The explicit merge-at-join step of the multiprocessing contract:
        each worker returned a local snapshot; here they fold into the
        parent registry, plus the parent-only derived metrics — queue wait
        (task start minus submit, both on the shared monotonic clock),
        per-worker throughput for this launch, and in dynamic mode the
        steal count (tasks a worker pulled beyond the even per-worker
        share, i.e. work it took from a slower sibling). Returns the
        launch's steal count (0 outside dynamic mode). Serialized under
        ``_obs_lock``: concurrent pipeline harvests must not interleave
        their merges or drift updates.
        """
        if not stats or not obs.enabled():
            return 0
        with self._obs_lock:
            tasks_by_worker: dict[int, int] = {}
            for stat in stats:
                obs.merge(stat["telemetry"])
                obs.histogram("host.queue_wait_seconds").observe(
                    max(0.0, stat["started_s"] - stat["submit_s"])
                )
                worker = int(stat["worker"])
                tasks_by_worker[worker] = tasks_by_worker.get(worker, 0) + 1
                if worker < self._drift_poses.size:
                    # feeds share_drift(): observed pose share vs the Eq. 1
                    # plan, the persistent runtime's re-measure trigger
                    self._drift_poses[worker] += stat["poses"]
                if stat["busy_s"] > 0:
                    obs.gauge("host.worker.poses_per_s", worker=worker).set(
                        stat["poses"] / stat["busy_s"]
                    )
            if self.mode == "dynamic" and self.n_workers > 1:
                even_share = -(-n_jobs // self.n_workers)  # ceil
                steals = sum(
                    max(0, count - even_share) for count in tasks_by_worker.values()
                )
                obs.counter("host.steals").inc(steals)
                return steals
            return 0

    # ------------------------------------------------------------------
    # persistent rebind protocol: versioned ligand bindings over slot banks
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Start a fresh launch trace (the persistent runtime calls this per dock)."""
        self.stats = EvaluationStats()

    @property
    def active_binding(self) -> _LigandBinding | None:
        """The binding :meth:`evaluate` scores against (legacy single-ligand path)."""
        return self._active

    @property
    def inflight_launches(self) -> int:
        """Live (submitted, unharvested) tickets across every binding."""
        with self._lock:
            return sum(self._inflight.values())

    def _reserve_bank(self, blocking: bool = True) -> int | None:
        """Claim a free slot bank; block for one (or return None) if all busy."""
        deadline = time.monotonic() + _BANK_WAIT_S
        with self._lock:
            while True:
                for i, free in enumerate(self._bank_free):
                    if free:
                        self._bank_free[i] = False
                        return i
                if not blocking:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._lock.wait(timeout=remaining):
                    raise ScoringError(
                        f"no ligand slot bank freed within {_BANK_WAIT_S:.0f}s: "
                        f"{len(self._bindings)} live bindings on "
                        f"{len(self._banks)} banks — release a binding or "
                        "raise pipeline_depth"
                    )

    def stage_ligand(self, scorer: BoundScorer, *, blocking: bool = True) -> dict | None:
        """Stage ``scorer``'s ligand arrays into a free slot bank.

        Safe to run concurrently with in-flight launches: workers only read
        banks whose bindings are live, and the receptor-side handle cache
        was fully populated at construction. Returns the staged spec (its
        bank rides in ``spec["_slot_bank"]``) for :meth:`bind_ligand`, or
        ``None`` when ``blocking=False`` and every bank is taken (the
        prefetch thread's case — a miss, not an error). An unwanted spec
        must go back through :meth:`discard_staged` or its bank leaks.
        """
        if not self.persistent:
            raise ScoringError("stage_ligand requires persistent=True")
        bank = self._reserve_bank(blocking=blocking)
        if bank is None:
            return None
        try:
            spec = stage_scorer(
                scorer,
                self._stage,
                ligand_stage=self._banks[bank],
                receptor_cache=self._receptor_cache,
            )
        except BaseException:
            with self._lock:
                self._bank_free[bank] = True
                self._lock.notify_all()
            raise
        spec["_slot_bank"] = bank
        return spec

    def discard_staged(self, spec: dict | None) -> None:
        """Return a staged-but-never-bound spec's bank to the free list."""
        bank = spec.get("_slot_bank") if spec else None
        if bank is None:
            return
        with self._lock:
            if not any(b.bank == bank for b in self._bindings.values()):
                self._bank_free[bank] = True
                self._lock.notify_all()

    def bind_ligand(self, scorer: BoundScorer, spec: dict) -> _LigandBinding:
        """Mint a live binding for a staged ligand (pipeline path).

        The binding is *additional*: nothing else is released, so up to
        ``slot_banks`` ligands can be resident at once. Pair every bind
        with a :meth:`release_binding` or the pipeline runs out of banks.
        """
        if not self.persistent:
            raise ScoringError("bind_ligand requires persistent=True")
        if self._pool is None:
            raise ScoringError("parallel evaluator is closed")
        bank = spec.get("_slot_bank")
        if bank is None:
            raise ScoringError("bind_ligand needs a spec from stage_ligand")
        with self._lock:
            self._version += 1
            binding = _LigandBinding(
                version=self._version, bank=int(bank), spec=spec, scorer=scorer
            )
            self._bindings[binding.version] = binding
        obs.counter("host.pool.reuses").inc()
        return binding

    def release_binding(self, binding: _LigandBinding) -> None:
        """Retire a binding and free its bank for the next ligand. Idempotent."""
        with self._lock:
            live = self._bindings.pop(binding.version, None)
            if live is not None and 0 <= binding.bank < len(self._bank_free):
                self._bank_free[binding.bank] = True
            if self._active is binding:
                self._active = None
            self._lock.notify_all()

    def _binding_message(self, binding: _LigandBinding) -> tuple:
        """The versioned rebind message every one of this binding's tasks carries.

        ``(version, spec, retired_segments, live_versions)`` — cumulative
        retired list across all banks (workers drop outgrown attachments no
        matter how many versions they skipped), live set so workers evict
        scorers for released ligands.
        """
        with self._lock:
            retired: tuple[str, ...] = ()
            for bank in self._banks:
                retired += tuple(bank.retired)
            live = tuple(sorted(self._bindings))
        return (binding.version, binding.spec, retired, live)

    # -- legacy double-buffer surface (depth-1 campaigns, existing tests) --
    def stage_inactive(self, scorer: BoundScorer) -> dict:
        """Stage ``scorer``'s ligand arrays into a free (inactive) slot bank.

        The double-buffer half the campaign's prefetch thread runs —
        ligand *i+1* staged while *i* docks; pair with :meth:`activate`,
        or call :meth:`rebind` to do both synchronously.
        """
        if not self.persistent:
            raise ScoringError("stage_inactive requires persistent=True")
        return self.stage_ligand(scorer)

    def activate(self, scorer: BoundScorer, spec: dict) -> None:
        """Swap the staged bank in as the single active ligand.

        Call only between launches. Workers learn about the swap lazily:
        every task carries the versioned rebind message, so a stale (or
        freshly recycled) worker rebuilds before scoring.
        """
        if not self.persistent:
            raise ScoringError("activate requires persistent=True")
        if self._pool is None:
            raise ScoringError("parallel evaluator is closed")
        old, self._active = self._active, self.bind_ligand(scorer, spec)
        if old is not None:
            self.release_binding(old)
        self.scorer = scorer
        self.reset_stats()

    def rebind(self, scorer: BoundScorer) -> None:
        """Swap a new ligand in without touching pool, receptor, or warm-up."""
        self.activate(scorer, self.stage_inactive(scorer))

    def share_drift(self) -> float:
        """Max |observed pose share − Eq. 1 weight| since the last measurement.

        Observable only while telemetry is enabled (worker pose counts ride
        in the harvest); returns 0.0 otherwise, so the drift re-measure
        trigger degrades gracefully to the interval trigger.
        """
        total = float(self._drift_poses.sum())
        if total <= 0.0:
            return 0.0
        return float(np.max(np.abs(self._drift_poses / total - self.weights)))

    def remeasure(self) -> HostWarmupResult:
        """Re-run the Eq. 1 warm-up on the live pool (persistent runtime).

        Uses the same deterministic receptor-box poses as the initial
        warm-up but the *current* ligand's scorer, so the refreshed weights
        reflect today's arithmetic, not ligand 0's. Call only between
        launches.
        """
        if not self.persistent:
            raise ScoringError("remeasure requires persistent=True")
        if self._pool is None:
            raise ScoringError("parallel evaluator is closed")
        if self._active is None:
            raise ScoringError("remeasure needs an active binding")
        with self._lock:
            if self._inflight:
                raise ScoringError(
                    "remeasure requires an idle pool (launches are in flight)"
                )
        rebind = self._binding_message(self._active)
        warm = self._warm if self._warm is not None else self._warmup_batch(
            DEFAULT_WARMUP_POSES, DEFAULT_WARMUP_REPEATS
        )
        with obs.span("host.remeasure", workers=self.n_workers):
            t0 = time.perf_counter()
            with self._ready.get_lock():
                self._ready.value = 0
            futures = [
                self._pool.submit(_measure_task, rebind, warm, _WARMUP_TIMEOUT_S)
                for _ in range(self.n_workers)
            ]
            try:
                for future in futures:
                    future.result(timeout=_WARMUP_TIMEOUT_S)
            except BrokenProcessPool as exc:
                self.recycle()
                raise ScoringError(
                    f"host worker pool died during re-measure ({exc}); workers "
                    "recycled, previous Eq. 1 weights kept"
                ) from exc
            elapsed = time.perf_counter() - t0
        self.warmup_result = self._reduce_warmup(
            np.array(self._slots[:], dtype=np.float64), elapsed, timed=True
        )
        self.weights = self.warmup_result.weights
        self._drift_poses[:] = 0.0
        obs.counter("host.warmup.remeasures").inc()
        return self.warmup_result

    def recycle(self) -> None:
        """Replace every worker process; keep the staged receptor and weights.

        The poisoned-ligand crash path: the broken pool is torn down, the
        shared counters reset, and fresh workers are spawned *uninitialised*
        (``spec=None`` — no restage, no warm-up). Each new worker rebuilds
        its scorer lazily from the first rebind message it sees; the Eq. 1
        weights survive unchanged (the hardware didn't change, the ligand
        did).
        """
        if not self.persistent:
            raise ScoringError("recycle requires persistent=True")
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        with self._claim.get_lock():
            self._claim.value = 0
        with self._ready.get_lock():
            self._ready.value = 0
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=self._ctx,
            initializer=_worker_init,
            initargs=(None, self._claim, self._ready, self._slots, None),
        )
        barriers = [
            self._pool.submit(_barrier_task, _WARMUP_TIMEOUT_S)
            for _ in range(self.n_workers)
        ]
        try:
            for future in barriers:
                future.result(timeout=_WARMUP_TIMEOUT_S)
        except BrokenProcessPool as exc:
            self.close()
            raise ScoringError(
                f"host worker pool could not be recycled: {exc}"
            ) from exc
        with self._lock:
            self._pool_epoch += 1
            self._idle_mark = time.monotonic()
        obs.counter("host.pool.recycles").inc()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink every shared segment. Idempotent."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        self._stage.close()
        if self._banks is not None:
            for bank in self._banks:
                bank.close()

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Shared-memory segment names owned by this evaluator."""
        names = self._stage.segment_names
        if self._banks is not None:
            for bank in self._banks:
                names += bank.segment_names
        return names

    def __enter__(self) -> "ParallelSpotEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class _BindingEvaluator:
    """Per-ligand Evaluator view over one shared :class:`ParallelSpotEvaluator`.

    What a :class:`LigandLease` hands to ``dock()``: implements the
    Evaluator protocol (``evaluate`` + ``stats``) by routing every launch
    through the shared pool with this ligand's binding and its *own*
    launch-trace stats — so the per-ligand trace is bitwise identical to a
    run that had the pool to itself. Never closed by dock (the runtime owns
    the pool); a fresh view per dock attempt gives retries a fresh trace.
    """

    def __init__(self, evaluator: ParallelSpotEvaluator, binding: _LigandBinding) -> None:
        self._evaluator = evaluator
        self._binding = binding
        self.stats = EvaluationStats()

    def evaluate(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        kind: str = "population",
    ) -> np.ndarray:
        evaluator = self._evaluator
        return evaluator.harvest(
            evaluator.submit(
                spot_ids,
                translations,
                quaternions,
                kind,
                binding=self._binding,
                stats=self.stats,
            )
        )


class LigandLease:
    """One ligand's residency in the docking pipeline (see ``lease()``).

    Holds the ligand's :class:`_LigandBinding` between :meth:`PersistentHostRuntime.lease`
    and :meth:`release`; :meth:`evaluator_factory` is the ``dock()`` seam for
    this ligand only.
    """

    def __init__(self, runtime: "PersistentHostRuntime", ligand, binding) -> None:
        self.runtime = runtime
        self.ligand = ligand
        self.binding = binding
        self._released = False

    def evaluator_factory(self, receptor, ligand, spots) -> _BindingEvaluator:
        """Per-lease ``dock(evaluator_factory=...)``: validates, fresh stats per call."""
        if self._released:
            raise ScoringError("ligand lease was already released")
        self.runtime._validate_complex(receptor, spots)
        if ligand is not self.ligand:
            raise ScoringError(
                "ligand lease was taken for a different ligand "
                "(one lease per pipelined dock)"
            )
        return _BindingEvaluator(self.runtime.evaluator, self.binding)

    def release(self) -> None:
        """Free this ligand's slot bank for the next one. Idempotent."""
        if self._released:
            return
        self._released = True
        self.runtime._release_lease(self)


# ----------------------------------------------------------------------
# campaign-owned persistent runtime
# ----------------------------------------------------------------------
class PersistentHostRuntime:
    """One pool, one receptor, many ligands: the campaign's host runtime.

    Owns a ``persistent`` :class:`ParallelSpotEvaluator` for the lifetime of
    a screening campaign and exposes the pieces the screening layers need:

    * :meth:`acquire` — rebind the pool to a ligand (lazily creating pool +
      receptor staging + Eq. 1 warm-up on the first call) and hand back the
      evaluator with a fresh launch trace.
    * :meth:`lease` — the docking pipeline's concurrent sibling of
      ``acquire``: bind a ligand as one of up to ``pipeline_depth``
      simultaneous residents and get a :class:`LigandLease` whose
      ``evaluator_factory`` scores only that ligand. Leases from different
      threads share the pool; their launches interleave freely.
    * :meth:`hint_next` — name ligand *i+1* before docking *i*; a
      single-thread stager binds it and stages it into a free slot
      bank while the pool scores, so the next :meth:`acquire`/:meth:`lease`
      is a swap.
    * :meth:`evaluator_factory` — the ``dock(evaluator_factory=...)`` seam:
      validates receptor/spots and delegates to :meth:`acquire`.

    Warm-up reuse policy: the Eq. 1 measurement from pool start is reused
    for every ligand (``host.warmup.reuses``); it is re-run after
    ``remeasure_interval`` rebinds, or early when the observed per-worker
    pose share drifts more than ``drift_threshold`` from the plan
    (``host.warmup.remeasures``). A poisoned ligand that kills a worker
    recycles the pool (``host.pool.recycles``) without restaging the
    receptor or dropping the weights; the raised :class:`ScoringError`
    flows into the campaign's existing retry machinery.
    """

    def __init__(
        self,
        receptor,
        spots,
        *,
        n_workers: int,
        mode: str = "static",
        scoring=None,
        prune_spots: bool = False,
        warmup: bool = True,
        remeasure_interval: int = DEFAULT_REMEASURE_INTERVAL,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        prefetch: bool = True,
        autotune=None,
        pipeline_depth: int = 1,
    ) -> None:
        if n_workers < 1:
            raise ScoringError(f"n_workers must be >= 1, got {n_workers}")
        if mode not in ("static", "dynamic"):
            raise ScoringError(f"mode must be 'static' or 'dynamic', got {mode!r}")
        if remeasure_interval < 1:
            raise ScoringError(
                f"remeasure_interval must be >= 1, got {remeasure_interval}"
            )
        if pipeline_depth < 1:
            raise ScoringError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        self.receptor = receptor
        self.spots = list(spots)
        self.n_workers = int(n_workers)
        self.mode = mode
        self.scoring = (
            scoring
            if scoring is not None
            else CutoffLennardJonesScoring(dtype=np.float32)
        )
        self.prune_spots = bool(prune_spots)
        #: Optional :class:`repro.scoring.autotune.AutotuneController`; when
        #: set, every ligand bind resolves (variant, chunk_size) through it,
        #: and the tuned scorer flows through staging/rebind to the workers
        #: (so the Eq. 1 warm-up measures the tuned kernel too).
        self.autotune = autotune
        self.warmup = bool(warmup)
        self.remeasure_interval = int(remeasure_interval)
        self.drift_threshold = float(drift_threshold)
        #: How many ligands may be resident at once (slot banks = depth + 1,
        #: so one more can stage while ``depth`` dock). Depth 1 is the
        #: legacy serial campaign: one active ligand, double-buffered.
        self.pipeline_depth = int(pipeline_depth)
        self.ligands_bound = 0
        self._evaluator: ParallelSpotEvaluator | None = None
        self._active_ligand = None
        self._next_hint = None
        self._pending = None  # (hinted ligand, Future[(scorer, spec)])
        self._since_measure = 0
        self._closed = False
        self._live_leases = 0
        # Serializes lease/acquire bookkeeping; the stager thread and dock
        # threads contend on it only for pointer-sized state, never scoring.
        self._lease_lock = threading.RLock()
        self._stager = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="ligand-stage")
            if prefetch
            else None
        )
        obs.gauge("host.pipeline.depth").set(self.pipeline_depth)

    # ------------------------------------------------------------------
    @property
    def evaluator(self) -> ParallelSpotEvaluator | None:
        """The owned evaluator, or ``None`` before the first acquire."""
        return self._evaluator

    def _bind(self, ligand) -> BoundScorer:
        scoring = self.scoring
        if self.autotune is not None:
            scoring = self.autotune.resolve(
                scoring, self.receptor.n_atoms, ligand.n_atoms, self.n_workers
            )
        scorer = scoring.bind(self.receptor, ligand)
        if self.prune_spots:
            scorer = prune_bound(scorer, self.spots)
        return scorer

    def _make_evaluator(self, scorer: BoundScorer) -> ParallelSpotEvaluator:
        """First bind: spawn the pool (banks sized for the pipeline depth)."""
        return ParallelSpotEvaluator(
            scorer,
            n_workers=self.n_workers,
            mode=self.mode,
            warmup=self.warmup,
            persistent=True,
            slot_banks=self.pipeline_depth + 1,
        )

    def _bind_and_stage(self, ligand):
        """Stager-thread job: bind + stage into a free slot bank.

        The reservation is non-blocking — with every bank held by live
        bindings the prefetch simply skips staging (``spec=None``) rather
        than deadlock the stager behind a dock thread's release.
        """
        scorer = self._bind(ligand)
        return scorer, self._evaluator.stage_ligand(scorer, blocking=False)

    def _take_prefetched(self, ligand):
        """Resolve any pending prefetch; return its (scorer, spec) on a hit.

        Always waits the pending future out — the stager thread must be
        done writing its slot bank before anyone restages it. A wrong-ligand
        hit hands the staged bank straight back (``discard_staged``).
        """
        pending, self._pending = self._pending, None
        if pending is None:
            return None
        hinted, future = pending
        try:
            staged = future.result()
        except Exception:
            # e.g. a ligand poisoned at bind time: surface the error on the
            # synchronous bind below, in its own dock's context
            obs.counter("host.prefetch.misses").inc()
            return None
        if hinted is not ligand:
            obs.counter("host.prefetch.misses").inc()
            if self._evaluator is not None:
                self._evaluator.discard_staged(staged[1])
            return None
        obs.counter("host.prefetch.hits").inc()
        return staged

    def _kick_prefetch(self, current) -> None:
        hint, self._next_hint = self._next_hint, None
        if (
            self._stager is None
            or self._evaluator is None
            or hint is None
            or hint is current
            or self._pending is not None
        ):
            return
        self._pending = (hint, self._stager.submit(self._bind_and_stage, hint))

    # ------------------------------------------------------------------
    def hint_next(self, ligand) -> None:
        """Name the ligand expected after the current one.

        The prefetch itself starts at the end of the next :meth:`acquire`
        (never before: the inactive bank belongs to the in-flight acquire
        until it swaps banks).
        """
        self._next_hint = ligand

    def acquire(self, ligand) -> ParallelSpotEvaluator:
        """Rebind the pool to ``ligand`` and return the evaluator.

        First call pays the full cost (pool spawn, receptor staging, Eq. 1
        warm-up); every later call restages only the ligand-varying slots —
        or just swaps banks when the prefetch already staged this ligand.
        Re-acquiring the active ligand (a campaign retry) restages nothing.
        """
        if self._closed:
            raise ScoringError("persistent host runtime is closed")
        if self._live_leases:
            raise ScoringError(
                "acquire() cannot run while pipeline leases are live "
                "(use lease() for every concurrent ligand)"
            )
        if self._evaluator is not None and self._active_ligand is ligand:
            self._evaluator.reset_stats()
            obs.counter("host.pool.reuses").inc()
            self._kick_prefetch(ligand)
            return self._evaluator
        prefetched = self._take_prefetched(ligand)
        if self._evaluator is None:
            scorer = prefetched[0] if prefetched is not None else self._bind(ligand)
            self._evaluator = self._make_evaluator(scorer)
            self._active_ligand = ligand
            self.ligands_bound = 1
            self._since_measure = 0
            self._kick_prefetch(ligand)
            return self._evaluator
        t0 = time.perf_counter()
        if prefetched is not None:
            scorer, spec = prefetched
            if spec is None:  # prefetch bound the ligand but found no free bank
                spec = self._evaluator.stage_ligand(scorer)
            self._evaluator.activate(scorer, spec)
        else:
            self._evaluator.rebind(self._bind(ligand))
        rebind_s = time.perf_counter() - t0
        obs.histogram("host.rebind.seconds").observe(rebind_s)
        flight_event(
            "pool.rebind",
            prefetched=prefetched is not None,
            seconds=round(rebind_s, 6),
        )
        self._active_ligand = ligand
        self.ligands_bound += 1
        self._since_measure += 1
        if self.warmup and (
            self._since_measure >= self.remeasure_interval
            or self._evaluator.share_drift() > self.drift_threshold
        ):
            self._evaluator.remeasure()
            self._since_measure = 0
        else:
            obs.counter("host.warmup.reuses").inc()
        self._kick_prefetch(ligand)
        return self._evaluator

    def lease(self, ligand) -> "LigandLease":
        """Bind ``ligand`` as one of the pipeline's concurrent residents.

        The pipelined sibling of :meth:`acquire`: up to ``pipeline_depth``
        leases are live at once, each scoring through its own
        :class:`_LigandBinding`, so one ligand's launches fill another's
        host-side gaps. Take leases from the owning (main) thread — the
        first one forks the worker pool — then dock each lease on its own
        thread and :meth:`LigandLease.release` it when the ligand commits.
        The Eq. 1 re-measure triggers (interval / drift) run at the first
        lease after the pipeline drains, when the pool is briefly idle.
        """
        if self._closed:
            raise ScoringError("persistent host runtime is closed")
        with self._lease_lock:
            if self._evaluator is None:
                scorer = self._bind(ligand)
                self._evaluator = self._make_evaluator(scorer)
                binding = self._evaluator.active_binding
                self._active_ligand = ligand
                self.ligands_bound = 1
                self._since_measure = 0
            else:
                self._active_ligand = None  # leases supersede the acquire pointer
                staged = self._take_prefetched(ligand)
                t0 = time.perf_counter()
                if staged is not None:
                    scorer, spec = staged
                    if spec is None:  # bound by the prefetch, banks were full
                        spec = self._evaluator.stage_ligand(scorer)
                else:
                    scorer = self._bind(ligand)
                    spec = self._evaluator.stage_ligand(scorer)
                binding = self._evaluator.bind_ligand(scorer, spec)
                self._evaluator._active = binding  # re-measure target
                rebind_s = time.perf_counter() - t0
                obs.histogram("host.rebind.seconds").observe(rebind_s)
                flight_event(
                    "pool.rebind",
                    prefetched=staged is not None,
                    seconds=round(rebind_s, 6),
                )
                self.ligands_bound += 1
                self._since_measure += 1
                if (
                    self.warmup
                    and self._live_leases == 0
                    and self._evaluator.inflight_launches == 0
                    and (
                        self._since_measure >= self.remeasure_interval
                        or self._evaluator.share_drift() > self.drift_threshold
                    )
                ):
                    self._evaluator.remeasure()
                    self._since_measure = 0
                else:
                    obs.counter("host.warmup.reuses").inc()
            self._live_leases += 1
            lease = LigandLease(self, ligand, binding)
            self._kick_prefetch(ligand)
            return lease

    def _release_lease(self, lease: "LigandLease") -> None:
        with self._lease_lock:
            self._live_leases -= 1
        evaluator = self._evaluator
        if evaluator is not None:
            evaluator.release_binding(lease.binding)

    def _validate_complex(self, receptor, spots) -> None:
        """Check dock() was called for the receptor/spots this runtime staged."""
        if receptor is not self.receptor and not np.array_equal(
            receptor.coords, self.receptor.coords
        ):
            raise ScoringError(
                "persistent host runtime was staged for a different receptor"
            )
        mine = [s.index for s in self.spots]
        theirs = [s.index for s in spots]
        if mine != theirs:
            raise ScoringError(
                f"persistent host runtime was staged for spots {mine}, "
                f"dock() was called with {theirs}"
            )

    def evaluator_factory(self, receptor, ligand, spots) -> ParallelSpotEvaluator:
        """The ``dock(evaluator_factory=...)`` seam.

        Validates that dock was called for the receptor/spots this runtime
        staged, then rebinds the pool to ``ligand``. The evaluator stays
        owned by the runtime — ``dock()`` must not close it.
        """
        self._validate_complex(receptor, spots)
        return self.acquire(ligand)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the stager thread and the pool; unlink everything. Idempotent."""
        self._closed = True
        stager, self._stager = self._stager, None
        if stager is not None:
            stager.shutdown(wait=True, cancel_futures=True)
        self._pending = None
        self._next_hint = None
        self._active_ligand = None
        evaluator, self._evaluator = self._evaluator, None
        if evaluator is not None:
            evaluator.close()

    def __enter__(self) -> "PersistentHostRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
