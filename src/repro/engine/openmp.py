"""Real multicore execution path (the OpenMP analogue that actually runs).

The simulated timings come from :mod:`repro.engine.executor`; this module is
the *genuinely parallel* host backend: a thread pool splits every scoring
batch across workers, the way the paper's OpenMP baseline splits candidate
solutions across cores. NumPy's scoring kernels release the GIL inside BLAS
and elementwise loops, so the pool provides real concurrency on multicore
hosts (on single-core CI boxes it degrades gracefully to serial speed, with
identical results).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.engine.partition import equal_partition
from repro.errors import SchedulingError
from repro.metaheuristics.evaluation import EvaluationStats, LaunchRecord
from repro.scoring.base import BoundScorer

__all__ = ["ThreadedCpuEvaluator"]


class ThreadedCpuEvaluator:
    """Evaluator that scores batches on a host thread pool.

    Each pose's score is independent, so results match
    :class:`~repro.metaheuristics.evaluation.SerialEvaluator` up to
    floating-point reduction order (chunk boundaries shift when a batch is
    split across workers, which can reorder the receptor-subset gather of
    the cutoff scorer).

    Parameters
    ----------
    scorer:
        Bound scoring function (each worker calls it on a disjoint slice).
    n_workers:
        Thread count ("OpenMP threads").
    """

    def __init__(self, scorer: BoundScorer, n_workers: int) -> None:
        if n_workers < 1:
            raise SchedulingError(f"n_workers must be >= 1, got {n_workers}")
        self.scorer = scorer
        self.n_workers = int(n_workers)
        self.stats = EvaluationStats()
        self._pool: ThreadPoolExecutor | None = None

    def __enter__(self) -> "ThreadedCpuEvaluator":
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-omp"
        )
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def evaluate(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        kind: str = "population",
    ) -> np.ndarray:
        """Score a flat batch, splitting it across the worker threads."""
        n = translations.shape[0]
        unique, counts = np.unique(np.asarray(spot_ids), return_counts=True)
        self.stats.record(
            LaunchRecord(
                n_conformations=int(n),
                flops_per_pose=self.scorer.flops_per_pose,
                spot_counts={int(s): int(c) for s, c in zip(unique, counts)},
                kind=kind,
                n_receptor_atoms=self.scorer.receptor.n_atoms,
            )
        )
        if self._pool is None or n < 2 * self.n_workers:
            return self.scorer.score(translations, quaternions)

        shares = equal_partition(n, self.n_workers)
        bounds = np.concatenate([[0], np.cumsum(shares)])
        futures = [
            self._pool.submit(
                self.scorer.score,
                translations[bounds[i] : bounds[i + 1]],
                quaternions[bounds[i] : bounds[i + 1]],
            )
            for i in range(self.n_workers)
            if shares[i] > 0
        ]
        return np.concatenate([f.result() for f in futures])
