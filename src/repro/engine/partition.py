"""Work partitioners: how many conformations each device gets.

Algorithm 2 splits the candidate set equally; the heterogeneous algorithm
(§3.3) splits proportionally to the warm-up speeds. Both partitioners
guarantee exact conservation (shares sum to the total) via largest-remainder
rounding, and can optionally round shares to whole thread-blocks (the
granularity at which conformations are actually shipped to a device).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError

__all__ = ["equal_partition", "proportional_partition"]


def equal_partition(total: int, n_parts: int) -> np.ndarray:
    """Split ``total`` items into ``n_parts`` near-equal integer shares.

    The first ``total % n_parts`` parts receive one extra item. Shares sum
    to ``total`` exactly; some may be zero when ``total < n_parts``.
    """
    if total < 0:
        raise SchedulingError(f"total must be >= 0, got {total}")
    if n_parts < 1:
        raise SchedulingError(f"n_parts must be >= 1, got {n_parts}")
    base, extra = divmod(total, n_parts)
    shares = np.full(n_parts, base, dtype=np.int64)
    shares[:extra] += 1
    return shares


def proportional_partition(
    total: int, weights: np.ndarray, granularity: int = 1
) -> np.ndarray:
    """Split ``total`` items proportionally to ``weights``.

    Largest-remainder (Hamilton) apportionment: each part gets
    ``floor(total · w_i / Σw)`` items, and the leftover items go to the
    parts with the largest fractional remainders. Deterministic ties break
    toward lower indices.

    Parameters
    ----------
    granularity:
        Shares are built in units of ``granularity`` items (e.g. a thread
        block's worth of conformations); the remainder (< granularity ×
        n_parts) is then distributed one item at a time by remainder rank.

    Raises
    ------
    SchedulingError
        On non-positive weight sums, negative weights, or bad arguments.
    """
    if total < 0:
        raise SchedulingError(f"total must be >= 0, got {total}")
    if granularity < 1:
        raise SchedulingError(f"granularity must be >= 1, got {granularity}")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise SchedulingError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise SchedulingError("weights must be finite and non-negative")
    wsum = weights.sum()
    if wsum <= 0:
        raise SchedulingError("at least one weight must be positive")

    units = total // granularity
    exact = units * (weights / wsum)
    shares_units = np.floor(exact).astype(np.int64)
    leftover_units = units - int(shares_units.sum())
    if leftover_units > 0:
        remainders = exact - shares_units
        # argsort is ascending; take the largest remainders, stable ties.
        order = np.argsort(-remainders, kind="stable")
        shares_units[order[:leftover_units]] += 1
    shares = shares_units * granularity

    # Distribute the sub-granularity tail one item at a time, by weight rank.
    tail = total - int(shares.sum())
    if tail > 0:
        order = np.argsort(-weights, kind="stable")
        for i in range(tail):
            shares[order[i % len(order)]] += 1
    return shares
