"""Run records: simulated timing breakdowns and execution reports."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metaheuristics.template import MetaheuristicResult

__all__ = ["TimingBreakdown", "ExecutionReport"]


@dataclass
class TimingBreakdown:
    """Where the simulated seconds went.

    Attributes
    ----------
    scoring_s:
        Device time on scoring launches (per launch: the slowest device's
        share, since Algorithm 2 synchronises after each launch).
    host_s:
        Serial host time (template bookkeeping + per-launch marshalling).
    warmup_s:
        Warm-up phase cost (heterogeneous algorithm only).
    n_launches, n_conformations:
        Workload totals.
    device_busy_s:
        Per-device accumulated busy time (load-balance diagnostics).
    """

    scoring_s: float = 0.0
    host_s: float = 0.0
    warmup_s: float = 0.0
    n_launches: int = 0
    n_conformations: int = 0
    device_busy_s: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def total_s(self) -> float:
        """End-to-end simulated wall time."""
        return self.scoring_s + self.host_s + self.warmup_s

    @property
    def balance(self) -> float:
        """Mean device busy time over max (1.0 = perfectly balanced)."""
        if self.device_busy_s.size == 0 or self.device_busy_s.max() <= 0:
            return 1.0
        return float(self.device_busy_s.mean() / self.device_busy_s.max())


@dataclass
class ExecutionReport:
    """One executed configuration: timing plus (optionally) the search result.

    Attributes
    ----------
    mode:
        ``"openmp"``, ``"gpu-homogeneous"``, ``"gpu-heterogeneous"`` or
        ``"gpu-dynamic"``.
    node_name:
        Which machine was modelled.
    scheduler_name:
        Scheduler used for GPU modes ("-" for the CPU baseline).
    timing:
        Simulated wall-clock breakdown.
    result:
        The metaheuristic outcome when the run executed real host math
        (None for trace-replay runs).
    """

    mode: str
    node_name: str
    scheduler_name: str
    timing: TimingBreakdown
    result: MetaheuristicResult | None = None

    @property
    def simulated_seconds(self) -> float:
        """Convenience accessor for the table harness."""
        return self.timing.total_s
