"""Job schedulers: how conformations are assigned to devices.

Three strategies, matching the paper's narrative arc:

* :class:`StaticEqualScheduler` — Algorithm 2's homogeneous computation:
  every device gets the same share, so "the slowest GPU will determine the
  overall execution time".
* :class:`StaticProportionalScheduler` — the heterogeneous computation:
  shares ∝ warm-up speed (Eq. 1 weights).
* :class:`DynamicSpotQueueScheduler` — the abstract's "dynamic assignment
  of jobs to heterogeneous resources": independent per-spot jobs are pulled
  from a cooperative queue by whichever device frees up first (simulated
  with the event loop). Needs no warm-up and tolerates device dropout.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import observability as obs
from repro.engine.partition import equal_partition, proportional_partition
from repro.errors import SchedulingError
from repro.hardware.cuda import KernelConfig
from repro.hardware.perf_model import DEFAULT_PARAMS, PerfModelParams, gpu_launch_time
from repro.hardware.specs import GpuSpec
from repro.metaheuristics.evaluation import LaunchRecord

__all__ = [
    "Scheduler",
    "StaticEqualScheduler",
    "StaticProportionalScheduler",
    "DynamicSpotQueueScheduler",
]


class Scheduler(ABC):
    """Maps one scoring launch onto device shares.

    ``plan`` returns integer conformation counts per device (zeros allowed),
    summing to the launch's total. ``alive`` masks out failed devices.
    """

    name: str = "scheduler"

    @abstractmethod
    def plan(
        self,
        record: LaunchRecord,
        gpus: tuple[GpuSpec, ...],
        alive: np.ndarray,
    ) -> np.ndarray:
        """Return ``(n_devices,)`` conformation shares for this launch."""

    @staticmethod
    def _check_alive(alive: np.ndarray) -> np.ndarray:
        alive = np.asarray(alive, dtype=bool)
        if not alive.any():
            raise SchedulingError("no devices alive")
        return alive

    def _observe(self, record: LaunchRecord, shares: np.ndarray) -> np.ndarray:
        """Record the plan decision; returns ``shares`` unchanged.

        Per-scheduler launch/conformation counters plus the plan's balance
        (largest nonzero share over the ideal equal share — 1.0 is a
        perfectly even split; the number the paper's Eq. 1 exists to drive
        down on heterogeneous nodes).
        """
        obs.counter("engine.scheduler.plans", scheduler=self.name).inc()
        obs.counter("engine.scheduler.conformations", scheduler=self.name).inc(
            record.n_conformations
        )
        active = int(np.count_nonzero(shares)) or 1
        ideal = record.n_conformations / active
        if ideal > 0:
            obs.gauge("engine.scheduler.plan_imbalance", scheduler=self.name).set(
                float(shares.max()) / ideal
            )
        return shares


class StaticEqualScheduler(Scheduler):
    """Equal split over alive devices (the homogeneous computation)."""

    name = "static-equal"

    def plan(
        self,
        record: LaunchRecord,
        gpus: tuple[GpuSpec, ...],
        alive: np.ndarray,
    ) -> np.ndarray:
        alive = self._check_alive(alive)
        idx = np.flatnonzero(alive)
        shares = np.zeros(len(gpus), dtype=np.int64)
        shares[idx] = equal_partition(record.n_conformations, idx.size)
        return self._observe(record, shares)


class StaticProportionalScheduler(Scheduler):
    """Warm-up-weighted split (the heterogeneous computation, §3.3).

    Parameters
    ----------
    weights:
        Per-device shares from :func:`repro.engine.warmup.run_warmup`
        (``∝ 1/Percent``).
    granularity:
        Conformations are handed out in blocks of this size (warp/block
        granularity); remainder items follow weight order.
    """

    name = "static-proportional"

    def __init__(self, weights: np.ndarray, granularity: int = 1) -> None:
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.ndim != 1 or self.weights.size == 0:
            raise SchedulingError("weights must be a non-empty 1-D array")
        self.granularity = int(granularity)

    def plan(
        self,
        record: LaunchRecord,
        gpus: tuple[GpuSpec, ...],
        alive: np.ndarray,
    ) -> np.ndarray:
        alive = self._check_alive(alive)
        if self.weights.size != len(gpus):
            raise SchedulingError(
                f"{self.weights.size} weights for {len(gpus)} devices"
            )
        idx = np.flatnonzero(alive)
        shares = np.zeros(len(gpus), dtype=np.int64)
        shares[idx] = proportional_partition(
            record.n_conformations, self.weights[idx], granularity=self.granularity
        )
        return self._observe(record, shares)


class DynamicSpotQueueScheduler(Scheduler):
    """Cooperative job queue over per-spot work units.

    The launch's conformations are grouped by spot (spots are independent,
    §3.1). Jobs are ordered largest-first (LPT list scheduling) and pulled
    by the device with the earliest finish time, computed from the
    performance model via the event loop. This is the "cooperative
    scheduling of jobs [that] optimizes […] the overall performance" from
    the abstract: no warm-up phase, automatic adaptation to heterogeneity,
    graceful behaviour when a device disappears mid-run.
    """

    name = "dynamic-spot-queue"

    def __init__(
        self,
        params: PerfModelParams = DEFAULT_PARAMS,
        config: KernelConfig | None = None,
    ) -> None:
        self.params = params
        self.config = config

    def plan(
        self,
        record: LaunchRecord,
        gpus: tuple[GpuSpec, ...],
        alive: np.ndarray,
    ) -> np.ndarray:
        alive = self._check_alive(alive)
        jobs = sorted(record.spot_counts.values(), reverse=True)
        if not jobs:
            jobs = [record.n_conformations]
        shares = np.zeros(len(gpus), dtype=np.int64)
        finish = np.full(len(gpus), np.inf)
        finish[alive] = 0.0

        def job_time(device: int, count: int) -> float:
            return gpu_launch_time(
                gpus[device], count, record.flops_per_pose, self.params, self.config
            ).total_s

        # LPT list scheduling: hand each job (largest first) to the device
        # that would finish it earliest. With deterministic job times this
        # is exactly what the event-driven pull queue in
        # repro.engine.device_worker converges to; the closed form avoids
        # simulating every pull.
        for count in jobs:
            candidate_finish = np.array(
                [
                    finish[d] + job_time(d, count) if alive[d] else np.inf
                    for d in range(len(gpus))
                ]
            )
            device = int(np.argmin(candidate_finish))
            shares[device] += count
            finish[device] = candidate_finish[device]
        return self._observe(record, shares)
