"""Screening-level cooperative scheduling.

The abstract promises "dynamic assignment of jobs to heterogeneous
resources which perform **independent metaheuristic executions under
different molecular interactions**" — i.e. in a library screen, the unit of
work is a whole (ligand, spot-set) docking run, and different ligands cost
different amounts (``flops_per_pose ∝ n_ligand_atoms``). This module
schedules those coarse jobs:

* :func:`static_screening_makespan` — ligands dealt round-robin to devices
  up front (what a naive MPI screen does);
* :func:`dynamic_screening_makespan` — devices pull the next ligand when
  free (the cooperative queue), which absorbs both device heterogeneity
  *and* ligand-size heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.device_worker import Job, SimulatedDevice, run_job_queue
from repro.errors import SchedulingError
from repro.hardware.cuda import KernelConfig
from repro.hardware.perf_model import DEFAULT_PARAMS, PerfModelParams, gpu_launch_time
from repro.hardware.node import NodeSpec
from repro.metaheuristics.evaluation import LaunchRecord

__all__ = [
    "LigandWorkload",
    "ScreeningSchedule",
    "static_screening_makespan",
    "dynamic_screening_makespan",
]


@dataclass(frozen=True)
class LigandWorkload:
    """One ligand's docking run, summarised for scheduling.

    Attributes
    ----------
    ligand_id:
        Stable identifier.
    trace:
        The run's launch records (from
        :func:`repro.experiments.trace.analytic_trace` or a recorded run).
    """

    ligand_id: int
    trace: list[LaunchRecord]

    def device_seconds(
        self,
        device_index: int,
        node: NodeSpec,
        params: PerfModelParams,
        config: KernelConfig | None,
    ) -> float:
        """Time for one device to run this whole ligand's trace alone."""
        total = 0.0
        gpu = node.gpus[device_index]
        for record in self.trace:
            total += gpu_launch_time(
                gpu, record.n_conformations, record.flops_per_pose, params, config
            ).total_s
        return total


@dataclass
class ScreeningSchedule:
    """Outcome of scheduling a screening batch.

    Attributes
    ----------
    makespan_s:
        Time the last ligand finishes.
    assignments:
        ``ligand_id -> device index``.
    device_busy_s:
        Per-device busy time.
    """

    makespan_s: float
    assignments: dict[int, int]
    device_busy_s: np.ndarray

    @property
    def balance(self) -> float:
        """Mean/max busy time."""
        if self.device_busy_s.max() <= 0:
            return 1.0
        return float(self.device_busy_s.mean() / self.device_busy_s.max())


def _check(workloads: list[LigandWorkload], node: NodeSpec) -> None:
    if not workloads:
        raise SchedulingError("screening schedule needs at least one ligand")
    if node.n_gpus == 0:
        raise SchedulingError(f"node {node.name!r} has no GPUs")


def static_screening_makespan(
    workloads: list[LigandWorkload],
    node: NodeSpec,
    params: PerfModelParams = DEFAULT_PARAMS,
    config: KernelConfig | None = None,
) -> ScreeningSchedule:
    """Round-robin pre-assignment of ligands to devices (no adaptation)."""
    _check(workloads, node)
    busy = np.zeros(node.n_gpus)
    assignments: dict[int, int] = {}
    for i, work in enumerate(workloads):
        device = i % node.n_gpus
        busy[device] += work.device_seconds(device, node, params, config)
        assignments[work.ligand_id] = device
    return ScreeningSchedule(
        makespan_s=float(busy.max()), assignments=assignments, device_busy_s=busy
    )


def dynamic_screening_makespan(
    workloads: list[LigandWorkload],
    node: NodeSpec,
    params: PerfModelParams = DEFAULT_PARAMS,
    config: KernelConfig | None = None,
    failures: dict[int, float] | None = None,
) -> ScreeningSchedule:
    """Cooperative pull queue over whole-ligand jobs (event-driven).

    Each ligand becomes one :class:`~repro.engine.device_worker.Job` whose
    cost is its full trace; the pull queue in
    :mod:`repro.engine.device_worker` does the rest, including optional
    device failures.
    """
    _check(workloads, node)
    # Each ligand job carries its full launch list so small launches pay
    # their wave floors exactly as in a standalone run (job time on a
    # device == LigandWorkload.device_seconds; verified in tests).
    jobs = []
    for work in workloads:
        launches = tuple(
            (r.n_conformations, r.flops_per_pose) for r in work.trace
        )
        jobs.append(
            Job(
                spot=work.ligand_id,
                count=sum(r.n_conformations for r in work.trace),
                flops_per_pose=work.trace[0].flops_per_pose,
                launches=launches,
            )
        )
    devices = [
        SimulatedDevice(index=i, gpu=g, fail_at=(failures or {}).get(i))
        for i, g in enumerate(node.gpus)
    ]
    result = run_job_queue(jobs, devices, params, config)
    return ScreeningSchedule(
        makespan_s=result.makespan_s,
        assignments=dict(result.assignments),
        device_busy_s=result.busy_s,
    )
