"""Launch-trace serialization.

A launch trace fully determines a run's modelled cost, so saving traces
makes timing studies repeatable without re-running host math: record once
on any machine, replay against any node model later. Format: one JSON
document with a version tag and a list of launch records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.errors import SimulationError
from repro.metaheuristics.evaluation import LaunchRecord

__all__ = ["dump_trace", "load_trace", "dumps_trace", "loads_trace", "TRACE_FORMAT_VERSION"]

#: Bumped on any incompatible schema change.
TRACE_FORMAT_VERSION: int = 1


def _record_to_dict(record: LaunchRecord) -> dict:
    return {
        "n_conformations": record.n_conformations,
        "flops_per_pose": record.flops_per_pose,
        "spot_counts": {str(k): v for k, v in record.spot_counts.items()},
        "kind": record.kind,
        "n_receptor_atoms": record.n_receptor_atoms,
    }


def _record_from_dict(data: dict, index: int) -> LaunchRecord:
    try:
        return LaunchRecord(
            n_conformations=int(data["n_conformations"]),
            flops_per_pose=float(data["flops_per_pose"]),
            spot_counts={int(k): int(v) for k, v in data["spot_counts"].items()},
            kind=str(data.get("kind", "population")),
            n_receptor_atoms=int(data.get("n_receptor_atoms", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed launch record #{index}: {exc}") from exc


def dumps_trace(trace: list[LaunchRecord], metadata: dict | None = None) -> str:
    """Serialise a trace (plus free-form metadata) to a JSON string."""
    return json.dumps(
        {
            "format_version": TRACE_FORMAT_VERSION,
            "metadata": metadata or {},
            "launches": [_record_to_dict(r) for r in trace],
        },
        indent=1,
    )


def loads_trace(text: str) -> tuple[list[LaunchRecord], dict]:
    """Parse a trace document; returns ``(launches, metadata)``."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"invalid trace JSON: {exc}") from exc
    version = doc.get("format_version")
    if version != TRACE_FORMAT_VERSION:
        raise SimulationError(
            f"unsupported trace format version {version!r} "
            f"(this library reads {TRACE_FORMAT_VERSION})"
        )
    launches = [
        _record_from_dict(d, i) for i, d in enumerate(doc.get("launches", []))
    ]
    return launches, doc.get("metadata", {})


def dump_trace(
    trace: list[LaunchRecord],
    destination: str | Path | TextIO,
    metadata: dict | None = None,
) -> None:
    """Write a trace document to a path or open handle."""
    text = dumps_trace(trace, metadata)
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(text, encoding="utf-8")
    else:
        destination.write(text)


def load_trace(source: str | Path | TextIO) -> tuple[list[LaunchRecord], dict]:
    """Read a trace document from a path or open handle."""
    if isinstance(source, (str, Path)):
        return loads_trace(Path(source).read_text(encoding="utf-8"))
    return loads_trace(source.read())
