"""The heterogeneous algorithm's warm-up phase (§3.3, Eq. 1).

"a warm-up phase is performed to establish performance differences among all
targeted GPUs, running the scoring function for a few candidate solutions.
This phase measures, at run-time, the execution time of a small number of
iterations of the metaheuristic (five to ten) […] The execution times in
this warm-up phase on all GPUs are reduced to obtain the maximum value"

::

    Percent = Ex.time_actualGPU / Ex.time_slowestGPU            (Eq. 1)

The slowest GPU gets ``Percent = 1``; a GPU twice as fast gets 0.5. Devices
then receive conformation counts proportional to ``1 / Percent``.

In the simulation the per-iteration measurement is the performance model's
launch time perturbed by multiplicative noise (real warm-ups measure a noisy
quantity — clocks boost, the driver JITs, the bus warms). That noise is what
spreads the paper's heterogeneous-vs-homogeneous gains across metaheuristics
(1.31–1.56× on Hertz instead of a single deterministic ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.errors import SchedulingError
from repro.hardware.cuda import KernelConfig
from repro.hardware.perf_model import DEFAULT_PARAMS, PerfModelParams, gpu_launch_time
from repro.hardware.specs import GpuSpec

__all__ = ["WarmupResult", "run_warmup", "DEFAULT_WARMUP_ITERATIONS"]

#: "five to ten" iterations; we default to the middle.
DEFAULT_WARMUP_ITERATIONS: int = 8

#: Poses scored per device per warm-up iteration ("a few candidate
#: solutions" — one thread block's worth times a few SMs).
DEFAULT_WARMUP_POSES: int = 256

#: Relative standard deviation of a single warm-up time measurement.
DEFAULT_MEASUREMENT_NOISE: float = 0.04


@dataclass(frozen=True)
class WarmupResult:
    """Outcome of the warm-up phase.

    Attributes
    ----------
    measured_times:
        ``(n_devices,)`` mean measured per-iteration times (seconds).
    percent:
        Eq. 1 values — 1.0 for the slowest device.
    weights:
        Normalised conformation shares, ``∝ 1/percent``; sum to 1.
    elapsed_s:
        Simulated wall time the warm-up itself consumed (devices warm up in
        parallel; the omp reduction waits for the slowest).
    """

    measured_times: np.ndarray
    percent: np.ndarray
    weights: np.ndarray
    elapsed_s: float


def run_warmup(
    gpus: tuple[GpuSpec, ...] | list[GpuSpec],
    flops_per_pose: float,
    iterations: int = DEFAULT_WARMUP_ITERATIONS,
    poses_per_device: int = DEFAULT_WARMUP_POSES,
    noise: float = DEFAULT_MEASUREMENT_NOISE,
    params: PerfModelParams = DEFAULT_PARAMS,
    config: KernelConfig | None = None,
    rng: np.random.Generator | None = None,
) -> WarmupResult:
    """Simulate the warm-up phase and compute Eq. 1.

    Parameters
    ----------
    gpus:
        Devices to profile.
    flops_per_pose:
        Scoring cost per conformation (the warm-up runs the *real* kernel).
    iterations:
        Metaheuristic iterations measured (5–10 in the paper).
    poses_per_device:
        Candidate solutions scored per device per iteration.
    noise:
        Relative σ of each time measurement; 0 disables noise.
    rng:
        Source of measurement noise; required when ``noise > 0``.
    """
    if not gpus:
        raise SchedulingError("warm-up needs at least one device")
    if iterations < 1:
        raise SchedulingError(f"iterations must be >= 1, got {iterations}")
    if poses_per_device < 1:
        raise SchedulingError(f"poses_per_device must be >= 1, got {poses_per_device}")
    if noise < 0:
        raise SchedulingError(f"noise must be >= 0, got {noise}")
    if noise > 0 and rng is None:
        raise SchedulingError("a seeded rng is required when noise > 0")

    true_times = np.array(
        [
            gpu_launch_time(g, poses_per_device, flops_per_pose, params, config).total_s
            for g in gpus
        ]
    )
    samples = np.tile(true_times, (iterations, 1))
    if noise > 0:
        assert rng is not None
        factors = 1.0 + noise * rng.standard_normal(samples.shape)
        samples = samples * np.clip(factors, 0.5, 1.5)
    measured = samples.mean(axis=0)

    slowest = float(measured.max())
    percent = measured / slowest
    inv = 1.0 / percent
    weights = inv / inv.sum()
    # Devices run concurrently; each iteration ends at the slowest device
    # (the omp reduction in the paper), so elapsed = iterations × max.
    elapsed = float(samples.max(axis=1).sum())
    # Record the Eq. 1 decision with its inputs: what each device measured,
    # its Percent, and the share it was assigned as a consequence.
    obs.counter("engine.warmups").inc()
    obs.gauge("engine.warmup.simulated_elapsed_s").set(elapsed)
    for i, gpu in enumerate(gpus):
        obs.gauge("engine.warmup.measured_s", device=i, gpu=gpu.name).set(
            float(measured[i])
        )
        obs.gauge("engine.warmup.percent", device=i, gpu=gpu.name).set(
            float(percent[i])
        )
        obs.gauge("engine.warmup.weight", device=i, gpu=gpu.name).set(
            float(weights[i])
        )
    return WarmupResult(
        measured_times=measured,
        percent=percent,
        weights=weights,
        elapsed_s=elapsed,
    )
