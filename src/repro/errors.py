"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so downstream users can
catch a single base class. Subclasses map onto the major subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class MoleculeError(ReproError):
    """Invalid molecular structure or structure-construction failure."""


class PDBParseError(MoleculeError):
    """Malformed PDB input."""


class ForceFieldError(ReproError):
    """Missing or inconsistent force-field parameters."""


class ScoringError(ReproError):
    """Scoring-function evaluation failure."""


class MetaheuristicError(ReproError):
    """Invalid metaheuristic configuration or template misuse."""


class HardwareModelError(ReproError):
    """Invalid device/node specification or CUDA-model parameters."""


class SchedulingError(ReproError):
    """Work partitioning or job scheduling failure."""


class SimulationError(ReproError):
    """Discrete-event simulation inconsistency (e.g. time going backwards)."""


class DeviceFailure(SimulationError):
    """A simulated device dropped out mid-run (failure injection)."""


class ExperimentError(ReproError):
    """Experiment/benchmark harness misconfiguration."""


class CampaignError(ReproError):
    """Invalid campaign configuration, store corruption, or resume mismatch."""


class ObservabilityError(ReproError):
    """Invalid metric registration, snapshot schema, or span misuse."""


class ClusterError(ReproError):
    """Distributed-campaign failure: node loss, bad fleet config, or a
    coordinator/worker that cannot continue."""


class ProtocolError(ClusterError):
    """Malformed, oversized, or timed-out cluster protocol message."""


class ConnectionClosed(ProtocolError):
    """The peer closed its end of a cluster channel (EOF)."""
