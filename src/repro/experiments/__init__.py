"""Experiment harness: datasets, analytic traces, table runners."""

from repro.experiments.datasets import (
    DATASETS,
    BoundDataset,
    DatasetSpec,
    dataset_names,
    get_dataset,
    materialize_dataset,
    paper_spot_count,
)
from repro.experiments.runner import (
    CellResult,
    TableResult,
    TableRow,
    cell_seed,
    hertz_table,
    jupiter_table,
    run_cell,
)
from repro.experiments.tables import (
    PAPER_TABLES,
    format_hertz_table,
    format_jupiter_table,
    paper_reference,
)
from repro.experiments.trace import analytic_trace, trace_totals
from repro.experiments.validation import (
    PERTURBABLE_PARAMS,
    ShapeClaims,
    check_shape_claims,
    seed_stability,
    sensitivity_sweep,
)

__all__ = [
    "DATASETS",
    "PAPER_TABLES",
    "PERTURBABLE_PARAMS",
    "BoundDataset",
    "CellResult",
    "DatasetSpec",
    "TableResult",
    "TableRow",
    "ShapeClaims",
    "analytic_trace",
    "cell_seed",
    "check_shape_claims",
    "dataset_names",
    "format_hertz_table",
    "format_jupiter_table",
    "get_dataset",
    "hertz_table",
    "jupiter_table",
    "materialize_dataset",
    "paper_reference",
    "paper_spot_count",
    "run_cell",
    "seed_stability",
    "sensitivity_sweep",
    "trace_totals",
]
