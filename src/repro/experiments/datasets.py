"""The benchmark instances: 2BSM- and 2BXG-like complexes (Table 5).

The paper screens two HSA crystal structures from the RCSB PDB; this
environment has no network, so :mod:`repro.molecules.synthetic` builds
stand-ins with the exact Table 5 atom counts (see DESIGN.md §2 for why this
substitution preserves the evaluated behaviour).

The paper does not publish its spot count. BINDSURF-style screening covers
the *whole* protein surface, so we model the spot count as proportional to
surface area, ``n_spots = round(4.21 · n_atoms^(2/3))``, with the density
constant chosen so the modelled workloads land on the paper's absolute
OpenMP seconds (derivation in :mod:`repro.hardware.perf_model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ExperimentError
from repro.molecules.spots import Spot, find_spots
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.synthetic import generate_ligand, generate_receptor

__all__ = ["DatasetSpec", "DATASETS", "get_dataset", "dataset_names", "BoundDataset"]

#: Spots per unit of receptor surface area (atoms^(2/3)).
SPOT_DENSITY: float = 4.21


def paper_spot_count(n_receptor_atoms: int) -> int:
    """Surface-area-scaled spot count used by the full-scale experiments."""
    if n_receptor_atoms < 1:
        raise ExperimentError("receptor must have atoms")
    return round(SPOT_DENSITY * n_receptor_atoms ** (2.0 / 3.0))


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """One benchmark compound pair (a row of Table 5).

    Attributes
    ----------
    name:
        PDB code of the original structure (``"2BSM"``).
    receptor_atoms, ligand_atoms:
        Exact atom counts from Table 5.
    receptor_seed, ligand_seed:
        Deterministic generation seeds.
    """

    name: str
    receptor_atoms: int
    ligand_atoms: int
    receptor_seed: int
    ligand_seed: int

    @property
    def n_spots(self) -> int:
        """Full-scale spot count for this receptor."""
        return paper_spot_count(self.receptor_atoms)

    @property
    def pairs_per_pose(self) -> int:
        """Receptor×ligand interaction count per conformation."""
        return self.receptor_atoms * self.ligand_atoms


#: The paper's Table 5.
DATASETS: dict[str, DatasetSpec] = {
    "2BSM": DatasetSpec(
        name="2BSM",
        receptor_atoms=3264,
        ligand_atoms=45,
        receptor_seed=0x2B50,
        ligand_seed=0x2B51,
    ),
    "2BXG": DatasetSpec(
        name="2BXG",
        receptor_atoms=8609,
        ligand_atoms=32,
        receptor_seed=0x2B60,
        ligand_seed=0x2B61,
    ),
}


def dataset_names() -> tuple[str, ...]:
    """``("2BSM", "2BXG")``."""
    return tuple(DATASETS)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by PDB code."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None


@dataclass(frozen=True)
class BoundDataset:
    """Materialised structures plus spots for measured-mode runs."""

    spec: DatasetSpec
    receptor: Receptor
    ligand: Ligand
    spots: list[Spot]


@lru_cache(maxsize=8)
def _materialize(name: str, n_spots: int) -> BoundDataset:
    spec = get_dataset(name)
    receptor = generate_receptor(
        spec.receptor_atoms, seed=spec.receptor_seed, title=f"{spec.name}-like receptor"
    )
    ligand = generate_ligand(
        spec.ligand_atoms, seed=spec.ligand_seed, title=f"{spec.name}-like ligand"
    )
    spots = find_spots(receptor, n_spots)
    return BoundDataset(spec=spec, receptor=receptor, ligand=ligand, spots=spots)


def materialize_dataset(name: str, n_spots: int | None = None) -> BoundDataset:
    """Generate the synthetic structures and spots for a dataset.

    Parameters
    ----------
    n_spots:
        Spot count for measured-mode runs; defaults to the full paper-scale
        count (expensive — measured runs normally pass something small).
    """
    spec = get_dataset(name)
    return _materialize(name, spec.n_spots if n_spots is None else int(n_spots))
