"""Experiment runner: regenerates the cells of Tables 6–9.

Two modes:

* **analytic** (default for the benchmark harness): build the full-scale
  launch trace with :func:`repro.experiments.trace.analytic_trace` and
  replay it through the performance model. Fast (milliseconds per cell),
  exact for timing purposes, and scale-faithful to the paper's absolute
  seconds.
* **measured**: actually run the metaheuristic (scaled down) on the
  synthetic structures, then replay the *recorded* trace. Slower; returns
  docking quality too. Tests verify the two modes' traces agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import MultiGpuExecutor
from repro.engine.reporting import TimingBreakdown
from repro.errors import ExperimentError
from repro.experiments.datasets import DatasetSpec, get_dataset, materialize_dataset
from repro.experiments.trace import analytic_trace
from repro.hardware.cuda import KernelConfig
from repro.hardware.node import NodeSpec, hertz, jupiter
from repro.hardware.perf_model import DEFAULT_PARAMS, PerfModelParams
from repro.hardware.registry import get_gpu
from repro.metaheuristics.presets import make_preset, preset_names
from repro.scoring.cutoff import CutoffLennardJonesScoring

__all__ = [
    "CellResult",
    "TableRow",
    "TableResult",
    "run_cell",
    "jupiter_table",
    "hertz_table",
    "cell_seed",
]


def cell_seed(node_name: str, dataset_name: str, preset_name: str) -> int:
    """Deterministic warm-up noise seed per table cell.

    The paper's heterogeneous gains vary between metaheuristics because the
    warm-up measurement is noisy; seeding per cell reproduces that spread
    deterministically.
    """
    key = f"{node_name}/{dataset_name}/{preset_name}"
    h = 2166136261
    for ch in key.encode():
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return h


@dataclass(frozen=True)
class CellResult:
    """One (node, dataset, preset, mode) measurement."""

    mode: str
    seconds: float
    timing: TimingBreakdown


@dataclass
class TableRow:
    """One metaheuristic's row of a results table."""

    preset: str
    cells: dict[str, CellResult] = field(default_factory=dict)

    def seconds(self, mode_key: str) -> float:
        """Simulated seconds for one column."""
        return self.cells[mode_key].seconds


@dataclass
class TableResult:
    """One full table (Tables 6–9)."""

    node_name: str
    dataset_name: str
    workload_scale: float
    rows: list[TableRow] = field(default_factory=list)

    def row(self, preset: str) -> TableRow:
        """Fetch a row by preset name."""
        for r in self.rows:
            if r.preset == preset:
                return r
        raise ExperimentError(f"no row for preset {preset!r}")


def run_cell(
    node: NodeSpec,
    dataset: DatasetSpec,
    preset_name: str,
    mode: str,
    workload_scale: float = 1.0,
    params: PerfModelParams = DEFAULT_PARAMS,
    config: KernelConfig | None = None,
    measured: bool = False,
    measured_spots: int = 8,
    search_seed: int = 0,
) -> CellResult:
    """Produce one table cell.

    Parameters
    ----------
    mode:
        One of :data:`repro.engine.executor.EXECUTION_MODES`.
    measured:
        When True, runs the real (scaled) search on the synthetic complex
        with ``measured_spots`` spots instead of replaying the analytic
        full-scale trace.
    """
    executor = MultiGpuExecutor(
        node,
        params=params,
        config=config,
        seed=cell_seed(node.name, dataset.name, preset_name),
    )
    if measured:
        bound = materialize_dataset(dataset.name, n_spots=measured_spots)
        scorer = CutoffLennardJonesScoring(dtype="float32").bind(
            bound.receptor, bound.ligand
        )
        spec = make_preset(preset_name, workload_scale)
        report = executor.run(
            spec, bound.spots, scorer, mode, search_seed=search_seed
        )
        return CellResult(mode=mode, seconds=report.simulated_seconds, timing=report.timing)

    trace = analytic_trace(
        preset_name,
        dataset.n_spots,
        dataset.receptor_atoms,
        dataset.ligand_atoms,
        workload_scale,
    )
    timing, _ = executor.replay(trace, mode)
    return CellResult(mode=mode, seconds=timing.total_s, timing=timing)


def _build_table(
    node: NodeSpec,
    columns: dict[str, tuple[NodeSpec, str]],
    dataset_name: str,
    workload_scale: float,
    params: PerfModelParams,
    measured: bool,
) -> TableResult:
    dataset = get_dataset(dataset_name)
    table = TableResult(
        node_name=node.name, dataset_name=dataset_name, workload_scale=workload_scale
    )
    for preset in preset_names():
        row = TableRow(preset=preset)
        for key, (col_node, mode) in columns.items():
            row.cells[key] = run_cell(
                col_node,
                dataset,
                preset,
                mode,
                workload_scale=workload_scale,
                params=params,
                measured=measured,
            )
        table.rows.append(row)
    return table


def jupiter_table(
    dataset_name: str,
    workload_scale: float = 1.0,
    params: PerfModelParams = DEFAULT_PARAMS,
    measured: bool = False,
) -> TableResult:
    """Regenerate Table 6 (2BSM) or Table 7 (2BXG).

    Columns: OpenMP baseline; homogeneous system (4× GTX 590, equal split);
    heterogeneous system (6 GPUs) under the homogeneous and the
    heterogeneous computation.
    """
    node = jupiter()
    homogeneous_system = node.with_gpus([get_gpu("GeForce GTX 590")] * 4)
    columns = {
        "openmp": (node, "openmp"),
        "hom_system": (homogeneous_system, "gpu-homogeneous"),
        "het_system_hom_comp": (node, "gpu-homogeneous"),
        "het_system_het_comp": (node, "gpu-heterogeneous"),
    }
    return _build_table(node, columns, dataset_name, workload_scale, params, measured)


def hertz_table(
    dataset_name: str,
    workload_scale: float = 1.0,
    params: PerfModelParams = DEFAULT_PARAMS,
    measured: bool = False,
) -> TableResult:
    """Regenerate Table 8 (2BSM) or Table 9 (2BXG).

    Columns: OpenMP baseline; K40c + GTX 580 under the homogeneous and the
    heterogeneous computation.
    """
    node = hertz()
    columns = {
        "openmp": (node, "openmp"),
        "het_system_hom_comp": (node, "gpu-homogeneous"),
        "het_system_het_comp": (node, "gpu-heterogeneous"),
    }
    return _build_table(node, columns, dataset_name, workload_scale, params, measured)
