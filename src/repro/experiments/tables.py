"""Paper-style table formatting for the benchmark harness."""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.experiments.runner import TableResult

__all__ = [
    "format_jupiter_table",
    "format_hertz_table",
    "PAPER_TABLES",
    "paper_reference",
]

#: The paper's measured values (seconds), for side-by-side comparison.
#: Keys: (node, dataset) -> preset -> column -> seconds.
PAPER_TABLES: dict[tuple[str, str], dict[str, dict[str, float]]] = {
    ("jupiter", "2BSM"): {
        "M1": {"openmp": 269.45, "hom_system": 7.01, "het_system_hom_comp": 5.13, "het_system_het_comp": 4.98},
        "M2": {"openmp": 436.36, "hom_system": 10.68, "het_system_hom_comp": 7.92, "het_system_het_comp": 7.68},
        "M3": {"openmp": 136.71, "hom_system": 3.69, "het_system_hom_comp": 2.71, "het_system_het_comp": 2.54},
        "M4": {"openmp": 13557.29, "hom_system": 298.27, "het_system_hom_comp": 212.42, "het_system_het_comp": 211.07},
    },
    ("jupiter", "2BXG"): {
        "M1": {"openmp": 1402.63, "hom_system": 23.45, "het_system_hom_comp": 16.96, "het_system_het_comp": 16.77},
        "M2": {"openmp": 2272.71, "hom_system": 35.37, "het_system_hom_comp": 26.57, "het_system_het_comp": 25.43},
        "M3": {"openmp": 711.01, "hom_system": 11.81, "het_system_hom_comp": 8.72, "het_system_het_comp": 8.46},
        "M4": {"openmp": 70505.22, "hom_system": 1113.91, "het_system_hom_comp": 764.131, "het_system_het_comp": 757.32},
    },
    ("hertz", "2BSM"): {
        "M1": {"openmp": 580.23, "het_system_hom_comp": 10.57, "het_system_het_comp": 6.74},
        "M2": {"openmp": 937.45, "het_system_hom_comp": 16.47, "het_system_het_comp": 12.37},
        "M3": {"openmp": 294.21, "het_system_hom_comp": 5.41, "het_system_het_comp": 4.09},
        "M4": {"openmp": 29144.06, "het_system_hom_comp": 470.51, "het_system_het_comp": 334.41},
    },
    ("hertz", "2BXG"): {
        "M1": {"openmp": 2327.60, "het_system_hom_comp": 33.92, "het_system_het_comp": 22.82},
        "M2": {"openmp": 3908.46, "het_system_hom_comp": 55.56, "het_system_het_comp": 41.58},
        "M3": {"openmp": 1336.40, "het_system_hom_comp": 18.13, "het_system_het_comp": 13.64},
        "M4": {"openmp": 150958.75, "het_system_hom_comp": 1735.73, "het_system_het_comp": 1253.64},
    },
}


def paper_reference(node_name: str, dataset_name: str) -> dict[str, dict[str, float]]:
    """The paper's measured table for one (node, dataset)."""
    try:
        return PAPER_TABLES[(node_name, dataset_name)]
    except KeyError:
        raise ExperimentError(
            f"no paper reference for ({node_name!r}, {dataset_name!r})"
        ) from None


def _speedups(cells: dict[str, float]) -> tuple[float, float]:
    """(het-comp vs hom-comp, OpenMP vs het-comp) speed-up factors."""
    het = cells["het_system_het_comp"]
    return cells["het_system_hom_comp"] / het, cells["openmp"] / het


def format_jupiter_table(table: TableResult, compare_paper: bool = True) -> str:
    """Render a Jupiter table (Tables 6/7 layout) as fixed-width text."""
    ref = (
        paper_reference("jupiter", table.dataset_name) if compare_paper else None
    )
    lines = [
        f"PDB:{table.dataset_name} on Jupiter "
        f"(workload_scale={table.workload_scale:g}) — simulated seconds",
        f"{'MH':4s} {'OpenMP':>12s} {'Hom.System':>12s} {'Het/HomComp':>12s} "
        f"{'Het/HetComp':>12s} {'SU het/hom':>11s} {'SU omp/het':>11s}",
    ]
    for row in table.rows:
        cells = {k: c.seconds for k, c in row.cells.items()}
        su_bal, su_omp = _speedups(cells)
        lines.append(
            f"{row.preset:4s} {cells['openmp']:12.2f} {cells['hom_system']:12.2f} "
            f"{cells['het_system_hom_comp']:12.2f} {cells['het_system_het_comp']:12.2f} "
            f"{su_bal:11.2f} {su_omp:11.2f}"
        )
        if ref is not None:
            p = ref[row.preset]
            p_bal, p_omp = _speedups(p)
            lines.append(
                f"  ↳paper {p['openmp']:10.2f} {p['hom_system']:12.2f} "
                f"{p['het_system_hom_comp']:12.2f} {p['het_system_het_comp']:12.2f} "
                f"{p_bal:11.2f} {p_omp:11.2f}"
            )
    return "\n".join(lines)


def format_hertz_table(table: TableResult, compare_paper: bool = True) -> str:
    """Render a Hertz table (Tables 8/9 layout) as fixed-width text."""
    ref = paper_reference("hertz", table.dataset_name) if compare_paper else None
    lines = [
        f"PDB:{table.dataset_name} on Hertz "
        f"(workload_scale={table.workload_scale:g}) — simulated seconds",
        f"{'MH':4s} {'OpenMP':>12s} {'Het/HomComp':>12s} {'Het/HetComp':>12s} "
        f"{'SU het/hom':>11s} {'SU omp/het':>11s}",
    ]
    for row in table.rows:
        cells = {k: c.seconds for k, c in row.cells.items()}
        su_bal, su_omp = _speedups(cells)
        lines.append(
            f"{row.preset:4s} {cells['openmp']:12.2f} "
            f"{cells['het_system_hom_comp']:12.2f} {cells['het_system_het_comp']:12.2f} "
            f"{su_bal:11.2f} {su_omp:11.2f}"
        )
        if ref is not None:
            p = ref[row.preset]
            p_bal, p_omp = _speedups(p)
            lines.append(
                f"  ↳paper {p['openmp']:10.2f} "
                f"{p['het_system_hom_comp']:12.2f} {p['het_system_het_comp']:12.2f} "
                f"{p_bal:11.2f} {p_omp:11.2f}"
            )
    return "\n".join(lines)
