"""Analytic launch-trace construction.

A preset's scoring workload is fully determined by its structure: which
launches happen, in what order, with how many conformations each. This
module writes that trace down *without running the search* — which is how
the benchmark harness reproduces the paper's full-scale tables in seconds
instead of days of host math.

The tests in ``tests/experiments/test_trace.py`` pin the contract: for any
workload scale, the analytic trace is **identical** (launch by launch) to
the trace a real :func:`repro.metaheuristics.template.run_metaheuristic`
records through its evaluator.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.metaheuristics.combination import NoCombination
from repro.metaheuristics.evaluation import LaunchRecord
from repro.metaheuristics.improvement import HillClimb, NoImprovement
from repro.metaheuristics.presets import PRESET_TABLE, make_preset
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations
from repro.scoring.base import OPS_PER_LJ_PAIR

__all__ = ["analytic_trace", "trace_totals"]


def _uniform_spot_counts(n_spots: int, per_spot: int) -> dict[int, int]:
    return {s: per_spot for s in range(n_spots)}


def analytic_trace(
    preset_name: str,
    n_spots: int,
    n_receptor_atoms: int,
    n_ligand_atoms: int,
    workload_scale: float = 1.0,
) -> list[LaunchRecord]:
    """Construct the launch trace of one preset run, launch by launch.

    Parameters
    ----------
    preset_name:
        ``"M1"`` … ``"M4"``.
    n_spots:
        Spots the run covers (each carries its own sub-population).
    n_receptor_atoms, n_ligand_atoms:
        Complex size (fixes ``flops_per_pose``).
    workload_scale:
        Same semantics as :func:`repro.metaheuristics.presets.make_preset`.
    """
    if n_spots < 1:
        raise ExperimentError(f"n_spots must be >= 1, got {n_spots}")
    if preset_name not in PRESET_TABLE:
        raise ExperimentError(f"unknown preset {preset_name!r}")
    spec: MetaheuristicSpec = make_preset(preset_name, workload_scale)
    params = PRESET_TABLE[preset_name]
    flops_per_pose = float(n_receptor_atoms * n_ligand_atoms * OPS_PER_LJ_PAIR)

    def record(per_spot: int, kind: str) -> LaunchRecord:
        return LaunchRecord(
            n_conformations=per_spot * n_spots,
            flops_per_pose=flops_per_pose,
            spot_counts=_uniform_spot_counts(n_spots, per_spot),
            kind=kind,
            n_receptor_atoms=n_receptor_atoms,
        )

    trace: list[LaunchRecord] = [record(spec.population_size, "population")]

    if not isinstance(spec.end, MaxIterations):  # pragma: no cover
        raise ExperimentError("analytic traces require MaxIterations presets")
    iterations = spec.end.limit

    has_fresh_offspring = not isinstance(spec.combine, NoCombination)
    improve_launch_size = 0
    improve_steps = 0
    if isinstance(spec.improve, HillClimb):
        k = spec.offspring_size
        improve_launch_size = max(
            1, min(k, int(round(k * spec.improve.fraction)))
        )
        improve_steps = spec.improve.steps
    elif not isinstance(spec.improve, NoImprovement):  # pragma: no cover
        raise ExperimentError(
            f"analytic traces not defined for {type(spec.improve).__name__}"
        )

    for _ in range(iterations):
        if has_fresh_offspring:
            trace.append(record(spec.offspring_size, "population"))
        for _ in range(improve_steps):
            trace.append(record(improve_launch_size, "improve"))
    return trace


def trace_totals(trace: list[LaunchRecord]) -> dict[str, float]:
    """Aggregate workload statistics of a trace."""
    return {
        "n_launches": float(len(trace)),
        "n_conformations": float(sum(r.n_conformations for r in trace)),
        "total_flops": float(
            sum(r.n_conformations * r.flops_per_pose for r in trace)
        ),
    }
