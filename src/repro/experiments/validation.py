"""Reproduction-robustness validation.

A reproduction whose qualitative conclusions only hold at one magic
parameter setting has not reproduced anything. This module stress-tests the
*shape claims* of the paper's evaluation against (a) perturbations of the
performance-model calibration constants and (b) different warm-up noise
seeds, and reports where each claim starts to break.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.runner import TableResult, hertz_table, jupiter_table
from repro.hardware.perf_model import DEFAULT_PARAMS, PerfModelParams

__all__ = ["ShapeClaims", "check_shape_claims", "sensitivity_sweep", "PERTURBABLE_PARAMS"]

#: Calibration constants the sensitivity sweep perturbs.
PERTURBABLE_PARAMS: tuple[str, ...] = (
    "cpu_pairs_per_core_ghz",
    "cpu_cache_n0",
    "host_op_cost_s",
    "launch_host_overhead_s",
    "improve_host_factor",
    "partial_wave_floor",
)


@dataclass
class ShapeClaims:
    """The paper's qualitative findings, evaluated on one table pair.

    Attributes
    ----------
    gpu_speedup_large:
        Every OpenMP-vs-heterogeneous speed-up exceeds 20× (order of
        magnitude of the paper's weakest cell).
    speedup_grows_with_size:
        Every metaheuristic speeds up more on 2BXG than on 2BSM.
    hertz_gains_exceed_jupiter:
        Heterogeneous balancing gains are larger on Hertz than Jupiter for
        every metaheuristic.
    m4_highest_speedup:
        M4 posts the maximum speed-up in every table.
    m2_beats_m1:
        M2's speed-up exceeds M1's in every table.
    """

    gpu_speedup_large: bool = True
    speedup_grows_with_size: bool = True
    hertz_gains_exceed_jupiter: bool = True
    m4_highest_speedup: bool = True
    m2_beats_m1: bool = True

    def all_hold(self) -> bool:
        """True when every claim holds."""
        return all(
            (
                self.gpu_speedup_large,
                self.speedup_grows_with_size,
                self.hertz_gains_exceed_jupiter,
                self.m4_highest_speedup,
                self.m2_beats_m1,
            )
        )

    def failed(self) -> list[str]:
        """Names of broken claims."""
        return [
            name
            for name, value in vars(self).items()
            if isinstance(value, bool) and not value
        ]


def _speedup(row) -> float:
    return row.seconds("openmp") / row.seconds("het_system_het_comp")


def _gain(row) -> float:
    return row.seconds("het_system_hom_comp") / row.seconds("het_system_het_comp")


def check_shape_claims(
    jup_small: TableResult,
    jup_large: TableResult,
    her_small: TableResult,
    her_large: TableResult,
) -> ShapeClaims:
    """Evaluate the claims on a full set of four regenerated tables."""
    claims = ShapeClaims()
    tables = (jup_small, jup_large, her_small, her_large)
    presets = [row.preset for row in jup_small.rows]

    for table in tables:
        speedups = {row.preset: _speedup(row) for row in table.rows}
        if min(speedups.values()) <= 20.0:
            claims.gpu_speedup_large = False
        if max(speedups.values()) != speedups["M4"]:
            claims.m4_highest_speedup = False
        if speedups["M2"] <= speedups["M1"]:
            claims.m2_beats_m1 = False

    for small, large in ((jup_small, jup_large), (her_small, her_large)):
        for preset in presets:
            if _speedup(large.row(preset)) <= _speedup(small.row(preset)):
                claims.speedup_grows_with_size = False

    for jup, her in ((jup_small, her_small), (jup_large, her_large)):
        for preset in presets:
            if _gain(her.row(preset)) <= _gain(jup.row(preset)):
                claims.hertz_gains_exceed_jupiter = False
    return claims


@dataclass
class SensitivityRow:
    """Outcome for one perturbed parameter setting."""

    parameter: str
    factor: float
    claims: ShapeClaims = field(default_factory=ShapeClaims)


def _tables_for(params: PerfModelParams, workload_scale: float):
    return (
        jupiter_table("2BSM", workload_scale, params),
        jupiter_table("2BXG", workload_scale, params),
        hertz_table("2BSM", workload_scale, params),
        hertz_table("2BXG", workload_scale, params),
    )


def sensitivity_sweep(
    factors: tuple[float, ...] = (0.75, 1.25),
    parameters: tuple[str, ...] = PERTURBABLE_PARAMS,
    workload_scale: float = 1.0,
    base: PerfModelParams = DEFAULT_PARAMS,
) -> list[SensitivityRow]:
    """Re-derive all four tables under perturbed calibrations.

    Each listed parameter is scaled by each factor (one at a time); the
    shape claims are re-evaluated on the perturbed tables.
    """
    if not factors:
        raise ExperimentError("need at least one perturbation factor")
    rows: list[SensitivityRow] = []
    for name in parameters:
        if not hasattr(base, name):
            raise ExperimentError(f"unknown perf-model parameter {name!r}")
        for factor in factors:
            if factor <= 0:
                raise ExperimentError(f"factors must be positive, got {factor}")
            value = getattr(base, name) * factor
            params = base.with_overrides(**{name: value})
            claims = check_shape_claims(*_tables_for(params, workload_scale))
            rows.append(SensitivityRow(parameter=name, factor=factor, claims=claims))
    return rows


def seed_stability(
    n_seeds: int = 8, workload_scale: float = 1.0
) -> dict[str, tuple[float, float]]:
    """Spread of the Hertz M2 heterogeneous gain across warm-up seeds.

    Exercises the one stochastic element of the timing model (warm-up
    measurement noise). Returns ``{"hertz_m2_gain": (min, max), ...}``.
    """
    if n_seeds < 2:
        raise ExperimentError("need at least two seeds")
    from repro.engine.executor import MultiGpuExecutor
    from repro.experiments.datasets import get_dataset
    from repro.experiments.trace import analytic_trace
    from repro.hardware.node import hertz

    dataset = get_dataset("2BSM")
    trace = analytic_trace(
        "M2", dataset.n_spots, dataset.receptor_atoms, dataset.ligand_atoms,
        workload_scale,
    )
    gains = []
    for seed in range(n_seeds):
        executor = MultiGpuExecutor(hertz(), seed=seed)
        hom, _ = executor.replay(trace, "gpu-homogeneous")
        het, _ = executor.replay(trace, "gpu-heterogeneous")
        gains.append(hom.total_s / het.total_s)
    return {"hertz_m2_gain": (float(min(gains)), float(max(gains)))}
