"""Hardware substrate: device specs, CUDA execution model, performance model."""

from repro.hardware.cuda import (
    DEFAULT_WARPS_PER_BLOCK,
    KernelConfig,
    LaunchGeometry,
    launch_geometry,
    occupancy_blocks_per_sm,
)
from repro.hardware.node import NodeSpec, custom_node, hertz, jupiter
from repro.hardware.perf_model import (
    DEFAULT_PARAMS,
    LaunchTime,
    PerfModelParams,
    cpu_batch_time,
    cpu_pair_rate,
    gpu_launch_time,
    transfer_time,
)
from repro.hardware.registry import CPUS, GPUS, cpu_names, get_cpu, get_gpu, gpu_names
from repro.hardware.specs import (
    ARCH_PAIRS_PER_CORE_CYCLE,
    CUDA_GENERATIONS,
    WARP_SIZE,
    CpuSpec,
    GenerationSummary,
    GpuArchitecture,
    GpuSpec,
)

__all__ = [
    "ARCH_PAIRS_PER_CORE_CYCLE",
    "CPUS",
    "CUDA_GENERATIONS",
    "DEFAULT_PARAMS",
    "DEFAULT_WARPS_PER_BLOCK",
    "GPUS",
    "WARP_SIZE",
    "CpuSpec",
    "GenerationSummary",
    "GpuArchitecture",
    "GpuSpec",
    "KernelConfig",
    "LaunchGeometry",
    "LaunchTime",
    "NodeSpec",
    "PerfModelParams",
    "cpu_batch_time",
    "cpu_names",
    "cpu_pair_rate",
    "custom_node",
    "get_cpu",
    "get_gpu",
    "gpu_launch_time",
    "gpu_names",
    "hertz",
    "jupiter",
    "launch_geometry",
    "occupancy_blocks_per_sm",
    "transfer_time",
]
