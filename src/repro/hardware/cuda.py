"""CUDA execution-model arithmetic: warps, blocks, occupancy, waves.

§3.2: "we identify each candidate solution to a CUDA warp, and warps are
grouped into blocks depending on the CUDA thread block granularity." This
module turns a launch of ``C`` conformations into the grid geometry the
modelled GPU executes: blocks of ``warps_per_block`` warps, scheduled over
the SMs in *waves* bounded by the occupancy limits of the device's compute
capability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hardware.specs import WARP_SIZE, GpuSpec

__all__ = ["KernelConfig", "LaunchGeometry", "occupancy_blocks_per_sm", "launch_geometry"]

#: Default thread-block granularity: 8 warps = 256 threads per block — the
#: configuration that reaches 100 % occupancy on both Fermi (6 blocks × 256
#: = 1536 resident threads) and Kepler (8 × 256 = 2048) with a 20-register
#: scoring kernel.
DEFAULT_WARPS_PER_BLOCK: int = 8


@dataclass(frozen=True, slots=True)
class KernelConfig:
    """Tunable kernel launch parameters.

    Attributes
    ----------
    warps_per_block:
        Conformations (warps) per thread block.
    registers_per_thread:
        Register pressure of the scoring kernel (bounds occupancy together
        with the CCC limits; 20 matches a tight tiled LJ kernel of this
        era and sustains full occupancy on Fermi).
    shared_bytes_per_block:
        Shared memory consumed by the receptor tile staging.
    """

    warps_per_block: int = DEFAULT_WARPS_PER_BLOCK
    registers_per_thread: int = 20
    shared_bytes_per_block: int = 2560  # 128-atom tile × 5 floats

    def __post_init__(self) -> None:
        if self.warps_per_block < 1:
            raise HardwareModelError(
                f"warps_per_block must be >= 1, got {self.warps_per_block}"
            )
        if self.registers_per_thread < 1:
            raise HardwareModelError("registers_per_thread must be >= 1")
        if self.shared_bytes_per_block < 0:
            raise HardwareModelError("shared_bytes_per_block must be >= 0")

    @property
    def threads_per_block(self) -> int:
        """Threads in one block."""
        return self.warps_per_block * WARP_SIZE


@dataclass(frozen=True, slots=True)
class LaunchGeometry:
    """Resolved geometry of one kernel launch on one device.

    Attributes
    ----------
    n_conformations:
        Poses (warps) requested.
    blocks:
        Thread blocks in the grid.
    blocks_per_sm:
        Concurrently resident blocks per SM under occupancy limits.
    concurrent_warps:
        Device-wide concurrently executing warps.
    waves:
        Sequential scheduling rounds needed to drain the grid.
    occupancy:
        Fraction of the device's resident-thread capacity used by a full
        wave, in (0, 1].
    """

    n_conformations: int
    blocks: int
    blocks_per_sm: int
    concurrent_warps: int
    waves: int
    occupancy: float


def occupancy_blocks_per_sm(gpu: GpuSpec, config: KernelConfig) -> int:
    """Concurrent blocks per SM under thread / block-slot / register /
    shared-memory limits.

    Register file: ``registers_per_sm`` is 32768 for CCC 2.x and 65536 for
    3.x+ (Tables 2–3). Shared memory: 48 KB configurations.
    """
    if config.threads_per_block > gpu.max_threads_per_block:
        raise HardwareModelError(
            f"block of {config.threads_per_block} threads exceeds the "
            f"{gpu.max_threads_per_block}-thread limit of {gpu.name}"
        )
    by_threads = gpu.max_threads_per_sm // config.threads_per_block
    by_slots = gpu.max_blocks_per_sm
    registers_per_sm = 65536 if gpu.ccc_major >= 3 else 32768
    by_regs = registers_per_sm // (
        config.registers_per_thread * config.threads_per_block
    )
    shared_per_sm = 48 * 1024
    by_shared = (
        shared_per_sm // config.shared_bytes_per_block
        if config.shared_bytes_per_block > 0
        else by_slots
    )
    blocks = min(by_threads, by_slots, by_regs, by_shared)
    if blocks < 1:
        raise HardwareModelError(
            f"kernel config {config} cannot fit a single block on {gpu.name}"
        )
    return int(blocks)


def launch_geometry(
    gpu: GpuSpec, n_conformations: int, config: KernelConfig | None = None
) -> LaunchGeometry:
    """Resolve grid geometry for scoring ``n_conformations`` poses."""
    if n_conformations < 1:
        raise HardwareModelError(
            f"a launch needs at least one conformation, got {n_conformations}"
        )
    config = config if config is not None else KernelConfig()
    blocks = -(-n_conformations // config.warps_per_block)
    per_sm = occupancy_blocks_per_sm(gpu, config)
    concurrent_blocks = per_sm * gpu.multiprocessors
    waves = -(-blocks // concurrent_blocks)
    concurrent_warps = concurrent_blocks * config.warps_per_block
    occupancy = min(
        1.0,
        (per_sm * config.threads_per_block) / gpu.max_threads_per_sm,
    )
    return LaunchGeometry(
        n_conformations=n_conformations,
        blocks=blocks,
        blocks_per_sm=per_sm,
        concurrent_warps=concurrent_warps,
        waves=waves,
        occupancy=occupancy,
    )
