"""Energy-to-solution model.

§6: "Heterogeneity may limit acceleration and **waste energy** unless
programmers develop smarter applications", and Table 1 tracks
performance-per-watt doubling across GPU generations. This module prices a
simulated run in joules: each device contributes ``TDP × busy_time`` plus an
idle floor while the node waits for stragglers, and the host CPU burns its
package power for the whole run.

Board powers are the public TDP numbers for the paper's devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.reporting import TimingBreakdown
from repro.errors import HardwareModelError
from repro.hardware.node import NodeSpec

__all__ = ["DEVICE_TDP_W", "CPU_TDP_W", "EnergyReport", "energy_report"]

#: Board TDP in watts (vendor datasheets; GTX 590 is per-GPU: 365 W board /2).
DEVICE_TDP_W: dict[str, float] = {
    "GeForce GTX 590": 182.0,
    "Tesla C2075": 225.0,
    "GeForce GTX 580": 244.0,
    "Tesla K40c": 235.0,
    "Tesla K20": 225.0,
    "Tesla K20X": 235.0,
    "Tesla K40": 235.0,
    "Tesla K80 (half)": 150.0,
    "GeForce GTX 980": 165.0,
}

#: CPU package TDP in watts (per socket).
CPU_TDP_W: dict[str, float] = {
    "Xeon E5-2620": 95.0,
    "Xeon E3-1220": 80.0,
}

#: Idle power as a fraction of TDP (Fermi/Kepler-era boards idled high).
IDLE_FRACTION: float = 0.25


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one simulated run.

    Attributes
    ----------
    gpu_active_j:
        Joules burned by GPUs while scoring.
    gpu_idle_j:
        Joules burned by GPUs waiting for stragglers/host.
    cpu_j:
        Host CPU joules over the whole run.
    """

    gpu_active_j: float
    gpu_idle_j: float
    cpu_j: float

    @property
    def total_j(self) -> float:
        """Total energy to solution."""
        return self.gpu_active_j + self.gpu_idle_j + self.cpu_j

    @property
    def waste_fraction(self) -> float:
        """Fraction of total energy spent idling — the §6 'waste'."""
        if self.total_j <= 0:
            return 0.0
        return self.gpu_idle_j / self.total_j


def _gpu_tdp(name: str) -> float:
    try:
        return DEVICE_TDP_W[name]
    except KeyError:
        raise HardwareModelError(f"no TDP tabulated for GPU {name!r}") from None


def _cpu_tdp(name: str) -> float:
    try:
        return CPU_TDP_W[name]
    except KeyError:
        raise HardwareModelError(f"no TDP tabulated for CPU {name!r}") from None


def energy_report(node: NodeSpec, timing: TimingBreakdown, gpus_used: bool = True) -> EnergyReport:
    """Price a simulated run on ``node`` in joules.

    Parameters
    ----------
    timing:
        The run's timing breakdown (per-device busy times + total).
    gpus_used:
        False for the OpenMP baseline: GPUs idle for the whole run (they
        are plugged in either way — the paper's era had no deep sleep).
    """
    total_s = timing.total_s
    if total_s < 0:
        raise HardwareModelError("timing cannot be negative")
    cpu_j = _cpu_tdp(node.cpu.name) * node.cpu_sockets * total_s

    active_j = 0.0
    idle_j = 0.0
    busy = timing.device_busy_s if gpus_used else np.zeros(node.n_gpus)
    for i, gpu in enumerate(node.gpus):
        tdp = _gpu_tdp(gpu.name)
        busy_s = float(busy[i]) if i < len(busy) else 0.0
        busy_s = min(busy_s, total_s)
        active_j += tdp * busy_s
        idle_j += IDLE_FRACTION * tdp * (total_s - busy_s)
    return EnergyReport(gpu_active_j=active_j, gpu_idle_j=idle_j, cpu_j=cpu_j)
