"""Node specifications: the heterogeneous machines of Tables 2 and 3."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareModelError
from repro.hardware.registry import get_cpu, get_gpu
from repro.hardware.specs import CpuSpec, GpuSpec

__all__ = ["NodeSpec", "jupiter", "hertz", "custom_node"]


@dataclass(frozen=True)
class NodeSpec:
    """One multicore+multiGPU machine.

    Attributes
    ----------
    name:
        Machine name (``"jupiter"``, ``"hertz"``).
    cpu:
        CPU model (one socket).
    cpu_sockets:
        Number of sockets.
    gpus:
        GPU devices in slot order. Order matters: device *i* is OpenMP
        thread *i*'s GPU in Algorithm 2.
    """

    name: str
    cpu: CpuSpec
    cpu_sockets: int
    gpus: tuple[GpuSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.cpu_sockets < 1:
            raise HardwareModelError(f"cpu_sockets must be >= 1, got {self.cpu_sockets}")

    @property
    def total_cpu_cores(self) -> int:
        """Cores across all sockets."""
        return self.cpu.cores * self.cpu_sockets

    @property
    def n_gpus(self) -> int:
        """Number of GPU devices."""
        return len(self.gpus)

    @property
    def is_gpu_homogeneous(self) -> bool:
        """True when every GPU is the same model."""
        return len({g.name for g in self.gpus}) <= 1

    def with_gpus(self, gpus: tuple[GpuSpec, ...] | list[GpuSpec]) -> "NodeSpec":
        """Copy of this node with a different GPU set (used to carve the
        homogeneous 4×GTX 590 subsystem out of Jupiter)."""
        return NodeSpec(
            name=self.name, cpu=self.cpu, cpu_sockets=self.cpu_sockets, gpus=tuple(gpus)
        )

    def describe(self) -> str:
        """One-line summary."""
        gpu_part = ", ".join(g.name for g in self.gpus) if self.gpus else "no GPUs"
        return (
            f"{self.name}: {self.cpu_sockets}× {self.cpu.name} "
            f"({self.total_cpu_cores} cores) + [{gpu_part}]"
        )


def jupiter() -> NodeSpec:
    """The paper's Jupiter node: 2× Xeon E5-2620 (12 cores) +
    4× GeForce GTX 590 + 2× Tesla C2075 (Table 2)."""
    return NodeSpec(
        name="jupiter",
        cpu=get_cpu("Xeon E5-2620"),
        cpu_sockets=2,
        gpus=tuple(
            [get_gpu("GeForce GTX 590")] * 4 + [get_gpu("Tesla C2075")] * 2
        ),
    )


def hertz() -> NodeSpec:
    """The paper's Hertz node: Xeon E3-1220 (4 cores) +
    Tesla K40c + GeForce GTX 580 (Table 3)."""
    return NodeSpec(
        name="hertz",
        cpu=get_cpu("Xeon E3-1220"),
        cpu_sockets=1,
        gpus=(get_gpu("Tesla K40c"), get_gpu("GeForce GTX 580")),
    )


def custom_node(
    name: str,
    cpu_name: str,
    cpu_sockets: int,
    gpu_names: list[str] | tuple[str, ...],
) -> NodeSpec:
    """Build a node from registry names (used by the multi-node extension
    bench and by downstream users modelling their own machines)."""
    return NodeSpec(
        name=name,
        cpu=get_cpu(cpu_name),
        cpu_sockets=cpu_sockets,
        gpus=tuple(get_gpu(g) for g in gpu_names),
    )
