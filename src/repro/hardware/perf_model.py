"""Calibrated analytic performance model for scoring workloads.

No GPUs exist in this environment, so wall-clock fidelity comes from an
analytic model driven by the devices' public specs plus a small set of
constants calibrated against the paper's *own measurements*. Calibration
derivation (all from Tables 6–9; workload ``W`` in atom pairs):

1. **GPU sustained throughputs.** Hertz homogeneous-algorithm rows put the
   GTX 580 at ≈18.4 Gpairs/s; heterogeneous rows then give K40c ≈ 2.15 ×
   GTX 580 ≈ 39.5 Gpairs/s. Fermi core-clock scaling maps the GTX 580 to
   GTX 590 ≈ 14.5 Gpairs/s; Jupiter's ≤6 % heterogeneous gains place the
   C2075 just below it at ≈13.6 Gpairs/s. (Stored per card in
   :mod:`repro.hardware.registry`.)

2. **CPU throughput and its receptor-size dependence.** Solving the
   Jupiter M4 rows (where overheads are negligible) for the 12-core CPU
   rate gives 110.5 Mpairs/s/core on the 3264-atom receptor and 76.3 on the
   8609-atom one — the large receptor overflows cache. The two points fix
   the model ``rate = c₀ · clock_GHz / (1 + n_rec/n₀)`` at
   ``c₀ = 76.06 Mpairs/s per core per GHz`` and ``n₀ = 8667`` atoms.
   Cross-validation: the fit predicts Hertz M4 speed-ups of 84.5× (2BSM,
   paper: 87.2×) and 122.4× (2BXG, paper: 120.4×) with *no* Hertz data
   used in the fit.

3. **Host-side overheads.** The paper's per-metaheuristic speed-up spread
   (M1 52.5× < M2 55.1× < M4 63.8× on Jupiter/2BSM) implies serial host
   work per template iteration. Charging ~0.4 µs per individual for the
   Select/Combine/Include stages plus ~1.5 ms per kernel launch for
   marshalling/launch/sync reproduces that ordering and spread.

The model's outputs are *simulated seconds*; EXPERIMENTS.md reports them
against the paper's measured seconds table by table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import HardwareModelError
from repro.hardware.cuda import KernelConfig, launch_geometry
from repro.hardware.specs import CpuSpec, GpuSpec
from repro.scoring.base import OPS_PER_LJ_PAIR

__all__ = ["PerfModelParams", "LaunchTime", "gpu_launch_time", "cpu_batch_time", "transfer_time", "DEFAULT_PARAMS"]


@dataclass(frozen=True, slots=True)
class PerfModelParams:
    """Calibration constants (see module docstring for provenance).

    Attributes
    ----------
    launch_host_overhead_s:
        Serial host cost per kernel launch (marshalling + launch + sync).
    kernel_latency_s:
        Device-side launch latency.
    pcie_bandwidth_gbs:
        Effective host↔device bandwidth (GB/s).
    pcie_latency_s:
        Per-transfer latency.
    host_op_cost_s:
        Serial host cost per individual for one template stage
        (Select/Combine/Include bookkeeping).
    improve_host_factor:
        Relative host cost of a local-search step versus a full template
        stage (perturb+accept is cheaper than sort+crossover).
    cpu_pairs_per_core_ghz:
        CPU scoring throughput per core per GHz on a cache-resident
        receptor (atom pairs/s).
    cpu_cache_n0:
        Receptor size (atoms) at which CPU throughput halves.
    occupancy_floor:
        Lower bound of the smooth occupancy penalty: effective rate =
        rate × (floor + (1-floor)·occupancy).
    partial_wave_floor:
        Minimum cost of a trailing partial wave, as a fraction of a full
        wave (latency-hiding floor for under-filled devices).
    """

    launch_host_overhead_s: float = 1.5e-3
    kernel_latency_s: float = 1.0e-5
    pcie_bandwidth_gbs: float = 6.0
    pcie_latency_s: float = 1.0e-5
    host_op_cost_s: float = 0.4e-6
    improve_host_factor: float = 0.15
    cpu_pairs_per_core_ghz: float = 76.06e6
    cpu_cache_n0: float = 8667.0
    occupancy_floor: float = 0.5
    partial_wave_floor: float = 0.3

    def with_overrides(self, **kwargs) -> "PerfModelParams":
        """Copy with selected constants replaced."""
        return replace(self, **kwargs)


#: Shared default parameter set used across the experiment harness.
DEFAULT_PARAMS = PerfModelParams()


@dataclass(frozen=True, slots=True)
class LaunchTime:
    """Breakdown of one modelled kernel launch.

    ``total = max(compute, memory) + transfer + latency`` — the roofline
    applied at launch granularity, plus fixed costs.
    """

    compute_s: float
    memory_s: float
    transfer_s: float
    latency_s: float

    @property
    def total_s(self) -> float:
        """End-to-end device time for the launch."""
        return max(self.compute_s, self.memory_s) + self.transfer_s + self.latency_s


def transfer_time(n_poses: int, params: PerfModelParams) -> float:
    """PCIe time: poses in (7 floats), scores out (1 float), SP on the wire."""
    bytes_moved = n_poses * (7 + 1) * 4
    return 2 * params.pcie_latency_s + bytes_moved / (params.pcie_bandwidth_gbs * 1e9)


def gpu_launch_time(
    gpu: GpuSpec,
    n_poses: int,
    flops_per_pose: float,
    params: PerfModelParams = DEFAULT_PARAMS,
    config: KernelConfig | None = None,
    bytes_per_pose: float | None = None,
) -> LaunchTime:
    """Model one scoring launch of ``n_poses`` conformations on ``gpu``.

    Parameters
    ----------
    flops_per_pose:
        Modelled arithmetic per conformation (scorer-reported).
    bytes_per_pose:
        DRAM traffic per conformation for memory-bound kernels (e.g. the
        grid-map scorer). Defaults to the tiled-LJ estimate, which is
        compute-bound on every device of the paper.
    """
    if n_poses < 1:
        raise HardwareModelError(f"n_poses must be >= 1, got {n_poses}")
    if flops_per_pose <= 0:
        raise HardwareModelError(f"flops_per_pose must be positive, got {flops_per_pose}")
    config = config if config is not None else KernelConfig()
    geom = launch_geometry(gpu, n_poses, config)

    sustained_flops = gpu.pairs_per_sec * OPS_PER_LJ_PAIR
    occupancy_scale = params.occupancy_floor + (1.0 - params.occupancy_floor) * geom.occupancy
    effective_flops = sustained_flops * occupancy_scale

    # Wave quantization: full waves run at the sustained rate; a trailing
    # partial wave still pays a latency floor (a near-empty device cannot
    # hide memory latency), modelled as at least ``partial_wave_floor`` of
    # a full wave's time.
    concurrent_blocks = geom.concurrent_warps // max(1, config.warps_per_block)
    full_waves, rem_blocks = divmod(geom.blocks, max(1, concurrent_blocks))
    partial = 0.0
    if rem_blocks:
        partial = max(rem_blocks / concurrent_blocks, params.partial_wave_floor)
    wave_flops = geom.concurrent_warps * flops_per_pose
    compute_s = (full_waves + partial) * wave_flops / effective_flops

    if bytes_per_pose is None:
        # Tiled LJ: each *block* streams the receptor tiles once (the tile
        # staging is shared by the block's warps): ~20 B per receptor atom,
        # receptor atoms ≈ flops_per_pose / (OPS_PER_LJ_PAIR · n_lig); we
        # approximate traffic per pose as flops/OPS_PER_LJ_PAIR · 20 / 8
        # (8 ligand atoms amortised per tile row) — orders of magnitude
        # below the compute time on all modelled devices.
        bytes_per_pose = flops_per_pose / OPS_PER_LJ_PAIR * 20.0 / 8.0 / config.warps_per_block
    memory_s = n_poses * bytes_per_pose / (gpu.bandwidth_gbs * 1e9)

    return LaunchTime(
        compute_s=compute_s,
        memory_s=memory_s,
        transfer_s=transfer_time(n_poses, params),
        latency_s=params.kernel_latency_s,
    )


def cpu_pair_rate(
    cpu: CpuSpec,
    n_cores: int,
    n_receptor_atoms: int,
    params: PerfModelParams = DEFAULT_PARAMS,
) -> float:
    """Aggregate CPU scoring rate (atom pairs/s) for ``n_cores`` workers.

    The ``1/(1 + n_rec/n₀)`` factor models the cache-capacity degradation
    the paper observes: GPU-vs-CPU speed-ups grow with receptor size
    because the GPU's shared-memory tiling keeps its working set on chip
    while the CPU's does not.
    """
    if n_cores < 1:
        raise HardwareModelError(f"n_cores must be >= 1, got {n_cores}")
    if n_receptor_atoms < 1:
        raise HardwareModelError(
            f"n_receptor_atoms must be >= 1, got {n_receptor_atoms}"
        )
    clock_ghz = cpu.clock_mhz / 1000.0
    base = (
        cpu.pairs_per_core_ghz
        if getattr(cpu, "pairs_per_core_ghz", 0.0) > 0
        else params.cpu_pairs_per_core_ghz
    )
    per_core = base * clock_ghz
    per_core /= 1.0 + n_receptor_atoms / params.cpu_cache_n0
    return per_core * n_cores


def cpu_batch_time(
    cpu: CpuSpec,
    n_cores: int,
    n_poses: int,
    flops_per_pose: float,
    n_receptor_atoms: int,
    params: PerfModelParams = DEFAULT_PARAMS,
) -> float:
    """Time for the OpenMP-style CPU backend to score ``n_poses``."""
    if n_poses < 1:
        raise HardwareModelError(f"n_poses must be >= 1, got {n_poses}")
    pairs_per_pose = flops_per_pose / OPS_PER_LJ_PAIR
    rate = cpu_pair_rate(cpu, n_cores, n_receptor_atoms, params)
    return n_poses * pairs_per_pose / rate
