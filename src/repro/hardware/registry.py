"""The concrete devices of the paper's Tables 2 and 3 (plus Kepler family
extras mentioned in §3 for extension experiments).

Sustained throughputs are calibrated against the paper's own measured
relative speeds (derivation in :mod:`repro.hardware.perf_model`):

* GTX 580 ≈ 18.4 Gpairs/s (from Hertz homogeneous-algorithm rows),
* K40c ≈ 39.5 Gpairs/s (Hertz heterogeneous rows ⇒ K40c/GTX580 ≈ 2.15),
* GTX 590 ≈ 14.5 Gpairs/s (Fermi core-clock scaling from GTX 580),
* C2075 ≈ 13.6 Gpairs/s (Jupiter's ≤6 % heterogeneous gains ⇒ just below
  the GTX 590).
"""

from __future__ import annotations

from repro.errors import HardwareModelError
from repro.hardware.specs import CpuSpec, GpuArchitecture, GpuSpec

__all__ = ["GPUS", "CPUS", "get_gpu", "get_cpu", "gpu_names", "cpu_names"]


GPUS: dict[str, GpuSpec] = {
    spec.name: spec
    for spec in (
        GpuSpec(
            name="GeForce GTX 590",
            architecture=GpuArchitecture.FERMI,
            multiprocessors=16,
            cores_per_sm=32,
            clock_mhz=1215,
            memory_mb=1536,
            bandwidth_gbs=163.85,
            ccc="2.0",
            sustained_pairs_per_sec=14.5e9,
        ),
        GpuSpec(
            name="Tesla C2075",
            architecture=GpuArchitecture.FERMI,
            multiprocessors=14,
            cores_per_sm=32,
            clock_mhz=1147,
            memory_mb=5375,
            bandwidth_gbs=144.0,
            ccc="2.0",
            sustained_pairs_per_sec=13.6e9,
        ),
        GpuSpec(
            name="GeForce GTX 580",
            architecture=GpuArchitecture.FERMI,
            multiprocessors=16,
            cores_per_sm=32,
            clock_mhz=1544,
            memory_mb=1536,
            bandwidth_gbs=192.4,
            ccc="2.0",
            sustained_pairs_per_sec=18.4e9,
        ),
        GpuSpec(
            name="Tesla K40c",
            architecture=GpuArchitecture.KEPLER,
            multiprocessors=15,
            cores_per_sm=192,
            clock_mhz=745,
            memory_mb=11520,
            bandwidth_gbs=288.38,
            ccc="3.5",
            sustained_pairs_per_sec=39.5e9,
        ),
        # §3 name-drops the rest of the Kepler Tesla family; these use the
        # architecture constant (no per-card calibration data in the paper).
        GpuSpec(
            name="Tesla K20",
            architecture=GpuArchitecture.KEPLER,
            multiprocessors=13,
            cores_per_sm=192,
            clock_mhz=706,
            memory_mb=5120,
            bandwidth_gbs=208.0,
            ccc="3.5",
        ),
        GpuSpec(
            name="Tesla K20X",
            architecture=GpuArchitecture.KEPLER,
            multiprocessors=14,
            cores_per_sm=192,
            clock_mhz=732,
            memory_mb=6144,
            bandwidth_gbs=250.0,
            ccc="3.5",
        ),
        GpuSpec(
            name="Tesla K40",
            architecture=GpuArchitecture.KEPLER,
            multiprocessors=15,
            cores_per_sm=192,
            clock_mhz=745,
            memory_mb=12288,
            bandwidth_gbs=288.0,
            ccc="3.5",
        ),
        # One K80 chip (the paper: "the K80 model even reaches 30
        # multiprocessors split into two chips" — model one half).
        GpuSpec(
            name="Tesla K80 (half)",
            architecture=GpuArchitecture.KEPLER,
            multiprocessors=13,
            cores_per_sm=192,
            clock_mhz=562,
            memory_mb=12288,
            bandwidth_gbs=240.0,
            ccc="3.7",
        ),
        GpuSpec(
            name="GeForce GTX 980",
            architecture=GpuArchitecture.MAXWELL,
            multiprocessors=16,
            cores_per_sm=128,
            clock_mhz=1126,
            memory_mb=4096,
            bandwidth_gbs=224.0,
            ccc="5.2",
        ),
    )
}


CPUS: dict[str, CpuSpec] = {
    spec.name: spec
    for spec in (
        # Jupiter: "two hexa-cores (12 cores) Intel Xeon E5-2620 at 2 GHz".
        CpuSpec(
            name="Xeon E5-2620",
            cores=6,
            clock_mhz=2000,
            l2_kb=256,
            l3_mb=15,
            pairs_per_core_ghz=76.06e6,
        ),
        # Hertz: Table 3 reports 4 cores at 3100 MHz.
        CpuSpec(
            name="Xeon E3-1220",
            cores=4,
            clock_mhz=3100,
            l2_kb=256,
            l3_mb=8,
            pairs_per_core_ghz=68.5e6,
        ),
    )
}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU by exact marketing name."""
    try:
        return GPUS[name]
    except KeyError:
        raise HardwareModelError(
            f"unknown GPU {name!r}; known: {sorted(GPUS)}"
        ) from None


def get_cpu(name: str) -> CpuSpec:
    """Look up a CPU by exact model name."""
    try:
        return CPUS[name]
    except KeyError:
        raise HardwareModelError(
            f"unknown CPU {name!r}; known: {sorted(CPUS)}"
        ) from None


def gpu_names() -> tuple[str, ...]:
    """All registered GPU names."""
    return tuple(sorted(GPUS))


def cpu_names() -> tuple[str, ...]:
    """All registered CPU names."""
    return tuple(sorted(CPUS))
