"""Device specifications (CPUs and GPUs) and the Table 1 generation data.

These dataclasses carry the *public spec-sheet* numbers from the paper's
Tables 1–3, plus one calibrated quantity: the sustained application-level
scoring throughput (atom pairs per second). See
:mod:`repro.hardware.perf_model` for how calibration was derived from the
paper's own measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import HardwareModelError

__all__ = [
    "GpuArchitecture",
    "GpuSpec",
    "CpuSpec",
    "GenerationSummary",
    "CUDA_GENERATIONS",
]


class GpuArchitecture(str, Enum):
    """Nvidia hardware generations of the paper's Table 1."""

    TESLA = "tesla"
    FERMI = "fermi"
    KEPLER = "kepler"
    MAXWELL = "maxwell"


#: Architecture-level sustained scoring throughput in atom pairs per core
#: per clock cycle. Calibrated so that inter-card ratios reproduce the
#: paper's measured relative speeds (see perf_model docstring):
#: K40c/GTX580 ≈ 2.15, GTX580/GTX590 ≈ clock ratio. Tesla and Maxwell are
#: extrapolations used only by extension benches.
ARCH_PAIRS_PER_CORE_CYCLE: dict[GpuArchitecture, float] = {
    GpuArchitecture.TESLA: 0.0120,
    GpuArchitecture.FERMI: 0.02327,
    GpuArchitecture.KEPLER: 0.0184,
    GpuArchitecture.MAXWELL: 0.0260,
}

#: Hardware limits per CUDA Compute Capability major version.
_CCC_LIMITS: dict[int, dict[str, int]] = {
    1: {"max_threads_per_sm": 1024, "max_blocks_per_sm": 8, "max_threads_per_block": 512},
    2: {"max_threads_per_sm": 1536, "max_blocks_per_sm": 8, "max_threads_per_block": 1024},
    3: {"max_threads_per_sm": 2048, "max_blocks_per_sm": 16, "max_threads_per_block": 1024},
    5: {"max_threads_per_sm": 2048, "max_blocks_per_sm": 32, "max_threads_per_block": 1024},
}

#: Warp size, constant across all CUDA generations.
WARP_SIZE: int = 32


@dataclass(frozen=True, slots=True)
class GpuSpec:
    """One GPU model.

    Attributes
    ----------
    name:
        Marketing name (``"GeForce GTX 590"``).
    architecture:
        Hardware generation.
    multiprocessors:
        Streaming multiprocessors on the die.
    cores_per_sm:
        CUDA cores per SM.
    clock_mhz:
        Shader clock in MHz.
    memory_mb:
        Global memory in MB.
    bandwidth_gbs:
        Memory bandwidth in GB/s.
    ccc:
        CUDA Compute Capability (e.g. ``"2.0"``, ``"3.5"``).
    sustained_pairs_per_sec:
        Calibrated application-level scoring throughput at full occupancy
        (atom pairs/s). When 0, derived from the architecture constant:
        ``cores × clock × ARCH_PAIRS_PER_CORE_CYCLE[arch]``.
    """

    name: str
    architecture: GpuArchitecture
    multiprocessors: int
    cores_per_sm: int
    clock_mhz: float
    memory_mb: int
    bandwidth_gbs: float
    ccc: str
    sustained_pairs_per_sec: float = 0.0

    def __post_init__(self) -> None:
        if self.multiprocessors < 1 or self.cores_per_sm < 1:
            raise HardwareModelError(f"invalid SM configuration for {self.name}")
        if self.clock_mhz <= 0:
            raise HardwareModelError(f"invalid clock for {self.name}")

    @property
    def total_cores(self) -> int:
        """CUDA cores on the die."""
        return self.multiprocessors * self.cores_per_sm

    @property
    def ccc_major(self) -> int:
        """Major compute-capability version."""
        return int(self.ccc.split(".")[0])

    @property
    def max_threads_per_sm(self) -> int:
        """Resident-thread limit per SM for this CCC."""
        return self._limits()["max_threads_per_sm"]

    @property
    def max_blocks_per_sm(self) -> int:
        """Resident-block limit per SM for this CCC."""
        return self._limits()["max_blocks_per_sm"]

    @property
    def max_threads_per_block(self) -> int:
        """Per-block thread limit for this CCC."""
        return self._limits()["max_threads_per_block"]

    def _limits(self) -> dict[str, int]:
        try:
            return _CCC_LIMITS[self.ccc_major]
        except KeyError:
            raise HardwareModelError(
                f"no hardware limits tabulated for CCC {self.ccc!r}"
            ) from None

    @property
    def pairs_per_sec(self) -> float:
        """Sustained scoring throughput (calibrated or architecture-derived)."""
        if self.sustained_pairs_per_sec > 0:
            return self.sustained_pairs_per_sec
        k = ARCH_PAIRS_PER_CORE_CYCLE[self.architecture]
        return self.total_cores * self.clock_mhz * 1e6 * k


@dataclass(frozen=True, slots=True)
class CpuSpec:
    """One CPU model (one socket).

    Attributes
    ----------
    name:
        Model (``"Xeon E5-2620"``).
    cores:
        Physical cores per socket.
    clock_mhz:
        Base clock in MHz.
    l2_kb, l3_mb:
        Cache sizes (documentation; the perf model uses a fitted
        receptor-size degradation constant instead of explicit cache math).
    pairs_per_core_ghz:
        Calibrated scoring throughput per core per GHz on a cache-resident
        receptor (atom pairs/s). 0 selects the perf-model default.
    """

    name: str
    cores: int
    clock_mhz: float
    l2_kb: int = 256
    l3_mb: int = 15
    pairs_per_core_ghz: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise HardwareModelError(f"invalid core count for {self.name}")
        if self.clock_mhz <= 0:
            raise HardwareModelError(f"invalid clock for {self.name}")


@dataclass(frozen=True, slots=True)
class GenerationSummary:
    """One column of the paper's Table 1."""

    name: str
    year: int
    max_multiprocessors: int
    cores_per_sm: int
    max_cores: int
    shared_kb: int
    ccc: str
    peak_sp_gflops: int
    perf_per_watt: int


#: The paper's Table 1, verbatim.
CUDA_GENERATIONS: tuple[GenerationSummary, ...] = (
    GenerationSummary("Tesla", 2007, 30, 8, 240, 16, "1.x", 672, 1),
    GenerationSummary("Fermi", 2010, 16, 32, 512, 48, "2.x", 1178, 2),
    GenerationSummary("Kepler", 2012, 15, 192, 2880, 48, "3.x", 4290, 6),
    GenerationSummary("Maxwell", 2014, 16, 128, 2048, 64, "5.x", 4980, 12),
)
