"""Metaheuristic framework: Algorithm 1 template, operators, M1–M4 presets."""

from repro.metaheuristics.combination import (
    BlendCrossover,
    Combination,
    NoCombination,
    UniformCrossover,
)
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import (
    EvaluationStats,
    Evaluator,
    LaunchRecord,
    SerialEvaluator,
)
from repro.metaheuristics.improvement import HillClimb, Improvement, NoImprovement
from repro.metaheuristics.inclusion import (
    ElitistInclusion,
    GenerationalInclusion,
    Inclusion,
    SteadyStateInclusion,
)
from repro.metaheuristics.individual import POSE_DIM, Conformation, decode_pose, encode_pose
from repro.metaheuristics.initialization import (
    Initializer,
    ShellInitializer,
    UniformSpotInitializer,
)
from repro.metaheuristics.multistart import MultistartResult, run_multistart
from repro.metaheuristics.population import Population
from repro.metaheuristics.presets import (
    PRESET_TABLE,
    PresetParameters,
    expected_evaluations_per_spot,
    make_preset,
    preset_names,
)
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.selection import BestFraction, RouletteWheel, Selection, Tournament
from repro.metaheuristics.template import (
    MetaheuristicResult,
    MetaheuristicSpec,
    run_metaheuristic,
)
from repro.metaheuristics.termination import (
    AllOf,
    AnyOf,
    EndCondition,
    MaxIterations,
    Stagnation,
    TargetScore,
    TerminationState,
)

__all__ = [
    "POSE_DIM",
    "PRESET_TABLE",
    "AllOf",
    "AnyOf",
    "BestFraction",
    "BlendCrossover",
    "Combination",
    "Conformation",
    "ElitistInclusion",
    "EndCondition",
    "EvaluationStats",
    "Evaluator",
    "GenerationalInclusion",
    "HillClimb",
    "Improvement",
    "Inclusion",
    "Initializer",
    "LaunchRecord",
    "MaxIterations",
    "MetaheuristicResult",
    "MetaheuristicSpec",
    "MultistartResult",
    "NoCombination",
    "NoImprovement",
    "Population",
    "PresetParameters",
    "RouletteWheel",
    "SearchContext",
    "Selection",
    "SerialEvaluator",
    "ShellInitializer",
    "SpotRngPool",
    "Stagnation",
    "SteadyStateInclusion",
    "TargetScore",
    "TerminationState",
    "Tournament",
    "UniformCrossover",
    "UniformSpotInitializer",
    "decode_pose",
    "encode_pose",
    "expected_evaluations_per_spot",
    "make_preset",
    "preset_names",
    "run_metaheuristic",
    "run_multistart",
]
