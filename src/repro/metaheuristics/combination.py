"""``Combine(Ssel, Scom)`` strategies.

Combiners produce an *unevaluated* offspring population from the selected
parents. Translations recombine with blend (BLX-α) crossover; orientations
recombine with normalised linear interpolation (nlerp) between parent
quaternions, which stays on the sphere after re-normalisation. Gaussian
mutation keeps the stochastic pressure the paper's GA relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.population import Population

__all__ = ["Combination", "BlendCrossover", "UniformCrossover", "NoCombination"]


class Combination(ABC):
    """Generates ``Scom`` offspring from the selected parents."""

    @abstractmethod
    def combine(
        self, ctx: SearchContext, selected: Population, n_offspring: int
    ) -> Population:
        """Return ``n_offspring`` individuals per spot (scores unset unless
        the combiner passes parents through unchanged)."""


def _parent_pairs(
    ctx: SearchContext, k: int, n_offspring: int
) -> tuple[np.ndarray, np.ndarray]:
    """Two (n_spots, n_offspring) parent index arrays, pairwise distinct
    whenever the parent pool has more than one member."""
    p1 = ctx.rng.integers(0, k, (n_offspring,))
    p2 = ctx.rng.integers(0, k, (n_offspring,))
    if k > 1:
        clash = p1 == p2
        p2 = np.where(clash, (p2 + 1) % k, p2)
    return p1, p2


def _mutate(
    ctx: SearchContext,
    translations: np.ndarray,
    quaternions: np.ndarray,
    rate: float,
    translation_sigma: float,
    rotation_angle: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply per-individual mutation with probability ``rate``."""
    from repro.molecules.transforms import quaternion_multiply

    k = translations.shape[1]
    mask = ctx.rng.random((k,)) < rate  # (s, k)
    noise = ctx.rng.normal((k, 3), scale=translation_sigma)
    translations = translations + noise * mask[:, :, None]
    spins = ctx.rng.small_rotations(k, rotation_angle)
    spun = quaternion_multiply(spins, quaternions)
    quaternions = np.where(mask[:, :, None], spun, quaternions)
    return translations, quaternions


class BlendCrossover(Combination):
    """BLX-α on translations + nlerp on orientations, plus mutation.

    Parameters
    ----------
    alpha:
        Blend expansion: the child gene is uniform in the parents' interval
        expanded by ``alpha`` on both sides.
    mutation_rate:
        Per-child probability of a Gaussian kick.
    translation_sigma:
        Mutation kick width (Å).
    rotation_angle:
        Maximum mutation rotation (radians).
    """

    def __init__(
        self,
        alpha: float = 0.25,
        mutation_rate: float = 0.15,
        translation_sigma: float = 0.75,
        rotation_angle: float = 0.5,
    ) -> None:
        if alpha < 0:
            raise MetaheuristicError(f"alpha must be >= 0, got {alpha}")
        if not 0.0 <= mutation_rate <= 1.0:
            raise MetaheuristicError(
                f"mutation_rate must be in [0, 1], got {mutation_rate}"
            )
        self.alpha = float(alpha)
        self.mutation_rate = float(mutation_rate)
        self.translation_sigma = float(translation_sigma)
        self.rotation_angle = float(rotation_angle)

    def combine(
        self, ctx: SearchContext, selected: Population, n_offspring: int
    ) -> Population:
        if n_offspring < 1:
            raise MetaheuristicError(f"n_offspring must be >= 1, got {n_offspring}")
        k = selected.size_per_spot
        p1, p2 = _parent_pairs(ctx, k, n_offspring)
        rows = np.arange(selected.n_spots)[:, None]
        t1 = selected.translations[rows, p1]
        t2 = selected.translations[rows, p2]
        q1 = selected.quaternions[rows, p1]
        q2 = selected.quaternions[rows, p2]

        # BLX-α: uniform in [min - α·span, max + α·span] per coordinate.
        lo = np.minimum(t1, t2)
        hi = np.maximum(t1, t2)
        span = hi - lo
        u = ctx.rng.random((n_offspring, 3))
        translations = lo - self.alpha * span + u * (1.0 + 2.0 * self.alpha) * span

        # nlerp between parent orientations; align hemispheres first so the
        # interpolation takes the short arc.
        dots = np.einsum("skj,skj->sk", q1, q2)
        q2 = np.where(dots[:, :, None] < 0.0, -q2, q2)
        w = ctx.rng.random((n_offspring,))[:, :, None]
        quaternions = (1.0 - w) * q1 + w * q2  # Population normalises

        translations, quaternions = _mutate(
            ctx,
            translations,
            quaternions,
            self.mutation_rate,
            self.translation_sigma,
            self.rotation_angle,
        )
        translations = ctx.clip_to_bounds(translations)
        return Population(translations, quaternions)


class UniformCrossover(Combination):
    """Per-component uniform crossover: each translation axis and the whole
    quaternion come from either parent independently, plus mutation."""

    def __init__(
        self,
        mutation_rate: float = 0.15,
        translation_sigma: float = 0.75,
        rotation_angle: float = 0.5,
    ) -> None:
        if not 0.0 <= mutation_rate <= 1.0:
            raise MetaheuristicError(
                f"mutation_rate must be in [0, 1], got {mutation_rate}"
            )
        self.mutation_rate = float(mutation_rate)
        self.translation_sigma = float(translation_sigma)
        self.rotation_angle = float(rotation_angle)

    def combine(
        self, ctx: SearchContext, selected: Population, n_offspring: int
    ) -> Population:
        if n_offspring < 1:
            raise MetaheuristicError(f"n_offspring must be >= 1, got {n_offspring}")
        k = selected.size_per_spot
        p1, p2 = _parent_pairs(ctx, k, n_offspring)
        rows = np.arange(selected.n_spots)[:, None]
        t1 = selected.translations[rows, p1]
        t2 = selected.translations[rows, p2]
        pick_t = ctx.rng.random((n_offspring, 3)) < 0.5
        translations = np.where(pick_t, t1, t2)
        pick_q = (ctx.rng.random((n_offspring,)) < 0.5)[:, :, None]
        quaternions = np.where(
            pick_q, selected.quaternions[rows, p1], selected.quaternions[rows, p2]
        )
        translations, quaternions = _mutate(
            ctx,
            translations,
            quaternions,
            self.mutation_rate,
            self.translation_sigma,
            self.rotation_angle,
        )
        translations = ctx.clip_to_bounds(translations)
        return Population(translations, quaternions)


class NoCombination(Combination):
    """Pass-through for neighbourhood metaheuristics (the paper's M4): the
    selected individuals *are* ``Scom``, scores preserved, nothing re-scored."""

    def combine(
        self, ctx: SearchContext, selected: Population, n_offspring: int
    ) -> Population:
        if n_offspring != selected.size_per_spot:
            raise MetaheuristicError(
                "NoCombination cannot change the population size "
                f"({selected.size_per_spot} -> {n_offspring})"
            )
        return selected.copy()
