"""Shared search context handed to every template operator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import MetaheuristicError
from repro.metaheuristics.evaluation import Evaluator
from repro.metaheuristics.population import Population
from repro.metaheuristics.rng import SpotRngPool
from repro.molecules.spots import Spot

__all__ = ["SearchContext"]


@dataclass
class SearchContext:
    """Everything operators need: spots, bounds, RNG streams, the evaluator.

    Attributes
    ----------
    spots:
        The receptor spots this search covers (may be a subset of the full
        spot list when a device owns a spot partition).
    evaluator:
        Scores flat pose batches; also the accounting seam for the runtime.
    rng:
        Per-spot random streams (see :class:`repro.metaheuristics.rng.SpotRngPool`).
    """

    spots: list[Spot]
    evaluator: Evaluator
    rng: SpotRngPool

    def __post_init__(self) -> None:
        if not self.spots:
            raise MetaheuristicError("search context needs at least one spot")
        if self.rng.n_spots != len(self.spots):
            raise MetaheuristicError(
                f"rng pool covers {self.rng.n_spots} spots but context has "
                f"{len(self.spots)}"
            )
        #: (n_spots, 3) spot centres.
        self.centers = np.stack([s.center for s in self.spots]).astype(FLOAT_DTYPE)
        #: (n_spots,) translation search half-widths.
        self.radii = np.array([s.radius for s in self.spots], dtype=FLOAT_DTYPE)
        #: (n_spots,) global spot indices (for evaluator accounting).
        self.global_ids = np.array([s.index for s in self.spots], dtype=np.int64)

    @property
    def n_spots(self) -> int:
        """Number of spots in this context."""
        return len(self.spots)

    def clip_to_bounds(self, translations: np.ndarray) -> np.ndarray:
        """Clamp ``(n_spots, k, 3)`` translations into each spot's search box."""
        lo = (self.centers - self.radii[:, None])[:, None, :]
        hi = (self.centers + self.radii[:, None])[:, None, :]
        return np.clip(translations, lo, hi)

    def evaluate_population(self, population: Population, kind: str = "population") -> None:
        """Score every individual in place (one evaluator launch)."""
        spot_local, translations, quaternions = population.flat()
        spot_ids = self.global_ids[spot_local]
        population.set_scores_flat(
            self.evaluator.evaluate(spot_ids, translations, quaternions, kind=kind)
        )

    def evaluate_arrays(
        self, translations: np.ndarray, quaternions: np.ndarray, kind: str = "improve"
    ) -> np.ndarray:
        """Score ``(n_spots, k, …)`` arrays, returning ``(n_spots, k)`` scores."""
        s, k = translations.shape[:2]
        if s != self.n_spots:
            raise MetaheuristicError(
                f"arrays cover {s} spots, context has {self.n_spots}"
            )
        spot_ids = np.repeat(self.global_ids, k)
        scores = self.evaluator.evaluate(
            spot_ids,
            translations.reshape(s * k, 3),
            quaternions.reshape(s * k, 4),
            kind=kind,
        )
        return scores.reshape(s, k)
