"""Evaluators: where candidate solutions meet the scoring function.

The metaheuristic template never calls a scorer directly; it hands flat
batches to an :class:`Evaluator`. This indirection is the seam the parallel
runtime plugs into: a :class:`SerialEvaluator` scores on the host, while
:class:`repro.engine.executor.DeviceBatchEvaluator` additionally charges the
batch to simulated devices. Every evaluator records a :class:`LaunchRecord`
per call — the workload trace the hardware model times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import MetaheuristicError
from repro.scoring.base import BoundScorer

__all__ = ["Evaluator", "LaunchRecord", "EvaluationStats", "SerialEvaluator"]


@dataclass(frozen=True, slots=True)
class LaunchRecord:
    """One scoring-kernel launch: the unit of modelled device work.

    Attributes
    ----------
    n_conformations:
        Total poses scored in this launch.
    flops_per_pose:
        Modelled arithmetic per pose (from the bound scorer).
    spot_counts:
        Poses per *global* spot index for this launch — what spot-level
        partitioners need to charge devices correctly.
    kind:
        What template stage issued the launch: ``"population"`` (initialize
        or fresh offspring — carries full Select/Combine/Include host
        bookkeeping) or ``"improve"`` (a local-search step — lighter host
        work). The performance model charges host overhead by kind.
    n_receptor_atoms:
        Receptor size behind this launch's scoring kernel (drives the CPU
        cache-degradation term of the performance model).
    """

    n_conformations: int
    flops_per_pose: float
    spot_counts: dict[int, int]
    kind: str = "population"
    n_receptor_atoms: int = 0


@dataclass
class EvaluationStats:
    """Running totals over an evaluator's lifetime."""

    n_launches: int = 0
    n_conformations: int = 0
    total_flops: float = 0.0
    launches: list[LaunchRecord] = field(default_factory=list)

    def record(self, launch: LaunchRecord) -> None:
        """Append one launch and update totals."""
        self.n_launches += 1
        self.n_conformations += launch.n_conformations
        self.total_flops += launch.n_conformations * launch.flops_per_pose
        self.launches.append(launch)


@runtime_checkable
class Evaluator(Protocol):
    """Scores flat pose batches; implementations decide *where* that runs."""

    stats: EvaluationStats

    def evaluate(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        kind: str = "population",
    ) -> np.ndarray:
        """Return ``(n,)`` scores for ``n`` poses tagged with global spot ids."""
        ...


class SerialEvaluator:
    """Host-only evaluator wrapping one bound scorer."""

    def __init__(self, scorer: BoundScorer) -> None:
        self.scorer = scorer
        self.stats = EvaluationStats()

    def evaluate(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        kind: str = "population",
    ) -> np.ndarray:
        spot_ids = np.asarray(spot_ids)
        if spot_ids.shape[0] != translations.shape[0]:
            raise MetaheuristicError(
                f"{spot_ids.shape[0]} spot ids for {translations.shape[0]} poses"
            )
        unique, counts = np.unique(spot_ids, return_counts=True)
        self.stats.record(
            LaunchRecord(
                n_conformations=int(translations.shape[0]),
                flops_per_pose=self.scorer.flops_per_pose,
                spot_counts={int(s): int(c) for s, c in zip(unique, counts)},
                kind=kind,
                n_receptor_atoms=self.scorer.receptor.n_atoms,
            )
        )
        # Spot-aware scorers (per-spot receptor pruning) exploit the spot
        # tags; plain scorers ignore them via the base passthrough.
        if self.scorer.supports_spot_scoring:
            return self.scorer.score_spots(spot_ids, translations, quaternions)
        return self.scorer.score(translations, quaternions)
