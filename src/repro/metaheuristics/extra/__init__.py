"""Extension metaheuristics built from the same Algorithm 1 template."""

from repro.metaheuristics.extra.annealing import (
    AnnealingImprovement,
    ReplaceInclusion,
    make_simulated_annealing,
)
from repro.metaheuristics.extra.ant_colony import AntColonySampling, make_ant_colony
from repro.metaheuristics.extra.differential_evolution import (
    DifferentialMove,
    GreedyPairInclusion,
    make_differential_evolution,
)
from repro.metaheuristics.extra.grasp import GreedyRandomizedConstruction, make_grasp
from repro.metaheuristics.extra.hybrid import hybridize, make_memetic_ga, make_pso_annealing
from repro.metaheuristics.extra.pso import PsoInclusion, PsoMove, make_pso
from repro.metaheuristics.extra.tabu import TabuImprovement, make_tabu_search
from repro.metaheuristics.extra.variable_neighborhood import VnsImprovement, make_vns

__all__ = [
    "AnnealingImprovement",
    "AntColonySampling",
    "DifferentialMove",
    "GreedyPairInclusion",
    "GreedyRandomizedConstruction",
    "PsoInclusion",
    "PsoMove",
    "ReplaceInclusion",
    "TabuImprovement",
    "VnsImprovement",
    "hybridize",
    "make_ant_colony",
    "make_differential_evolution",
    "make_grasp",
    "make_memetic_ga",
    "make_pso",
    "make_pso_annealing",
    "make_simulated_annealing",
    "make_tabu_search",
    "make_vns",
]
