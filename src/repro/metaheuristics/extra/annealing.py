"""Simulated Annealing as a template instantiation.

A neighbourhood metaheuristic (§2.2): every individual is an independent
annealing walker. The Improve stage proposes a perturbed pose and accepts
with the Metropolis criterion; temperature decays geometrically across
template iterations (state held in the operator, like PSO's velocities).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import NoCombination
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.improvement import Improvement
from repro.metaheuristics.inclusion import Inclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.population import Population
from repro.metaheuristics.selection import IdentitySelection
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations
from repro.molecules.transforms import quaternion_multiply

__all__ = ["AnnealingImprovement", "ReplaceInclusion", "make_simulated_annealing"]


class ReplaceInclusion(Inclusion):
    """Walkers replace themselves (acceptance happened inside Improve)."""

    def include(
        self, ctx: SearchContext, offspring: Population, current: Population
    ) -> Population:
        if offspring.size_per_spot != current.size_per_spot:
            raise MetaheuristicError("annealing keeps the walker count constant")
        return offspring.copy()


class AnnealingImprovement(Improvement):
    """Metropolis steps at a geometrically cooling temperature.

    Parameters
    ----------
    steps:
        Proposals per walker per template iteration.
    t_start, t_end:
        Temperature endpoints (score units). The schedule interpolates
        geometrically over the *expected* total step budget
        ``steps × iterations_hint``.
    iterations_hint:
        Template iterations the schedule should span.
    translation_sigma, rotation_angle:
        Proposal move sizes.
    """

    def __init__(
        self,
        steps: int = 4,
        t_start: float = 5.0,
        t_end: float = 0.05,
        iterations_hint: int = 30,
        translation_sigma: float = 0.5,
        rotation_angle: float = 0.4,
    ) -> None:
        if steps < 1:
            raise MetaheuristicError(f"steps must be >= 1, got {steps}")
        if t_start <= 0 or t_end <= 0 or t_end > t_start:
            raise MetaheuristicError(
                f"need 0 < t_end <= t_start, got {t_end}, {t_start}"
            )
        if iterations_hint < 1:
            raise MetaheuristicError("iterations_hint must be >= 1")
        self.steps = int(steps)
        self.t_start = float(t_start)
        self.t_end = float(t_end)
        self.total_steps = self.steps * int(iterations_hint)
        self.translation_sigma = float(translation_sigma)
        self.rotation_angle = float(rotation_angle)
        self._step_count = 0

    def temperature(self) -> float:
        """Current temperature on the geometric schedule."""
        frac = min(1.0, self._step_count / max(1, self.total_steps - 1))
        return float(self.t_start * (self.t_end / self.t_start) ** frac)

    def improve(self, ctx: SearchContext, population: Population) -> Population:
        result = population.copy()
        if not result.is_evaluated():
            ctx.evaluate_population(result)
        k = result.size_per_spot
        for _ in range(self.steps):
            t = self.temperature()
            cand_t = result.translations + ctx.rng.normal(
                (k, 3), scale=self.translation_sigma
            )
            cand_t = ctx.clip_to_bounds(cand_t)
            cand_q = quaternion_multiply(
                ctx.rng.small_rotations(k, self.rotation_angle), result.quaternions
            )
            cand_s = ctx.evaluate_arrays(cand_t, cand_q)
            delta = cand_s - result.scores
            # Metropolis: always accept improvements; accept worsening moves
            # with probability exp(-Δ/T).
            with np.errstate(over="ignore"):
                accept_prob = np.exp(np.minimum(0.0, -delta) / t)
            accept = (delta <= 0) | (ctx.rng.random((k,)) < accept_prob)
            result.translations = np.where(accept[:, :, None], cand_t, result.translations)
            result.quaternions = np.where(accept[:, :, None], cand_q, result.quaternions)
            result.scores = np.where(accept, cand_s, result.scores)
            self._step_count += 1
        return result


def make_simulated_annealing(
    walkers: int = 32,
    iterations: int = 30,
    steps_per_iteration: int = 4,
    t_start: float = 5.0,
    t_end: float = 0.05,
) -> MetaheuristicSpec:
    """Simulated Annealing from the Algorithm 1 template."""
    return MetaheuristicSpec(
        name="SA",
        population_size=walkers,
        offspring_size=walkers,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=IdentitySelection(),
        combine=NoCombination(),
        improve=AnnealingImprovement(
            steps=steps_per_iteration,
            t_start=t_start,
            t_end=t_end,
            iterations_hint=iterations,
        ),
        include=ReplaceInclusion(),
    )
