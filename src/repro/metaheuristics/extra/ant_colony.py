"""Ant Colony Optimization (continuous-domain ACOR style) as a template
instantiation.

§2.2 lists Ant Colony among the distributed metaheuristics. We implement
the continuous variant (Socha & Dorigo's ACOR): the "pheromone" is a solution
*archive*; each ant samples a Gaussian around an archive member chosen by
rank weight, with the Gaussian width set by the archive's spread. The
archive lives in the Combine operator; elitist inclusion keeps it sharp.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import Combination
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.improvement import NoImprovement
from repro.metaheuristics.inclusion import ElitistInclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.population import Population
from repro.metaheuristics.selection import BestFraction
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations
from repro.molecules.transforms import quaternion_multiply

__all__ = ["AntColonySampling", "make_ant_colony"]


class AntColonySampling(Combination):
    """ACOR sampling: Gaussians around rank-weighted archive members.

    Parameters
    ----------
    locality:
        q of ACOR — smaller focuses sampling on the best archive members.
    evaporation:
        ξ of ACOR — scales the Gaussian width relative to the archive's
        mean absolute deviation (larger = slower convergence).
    rotation_angle:
        Orientation-channel sampling width (radians) at evaporation 1.
    """

    def __init__(
        self,
        locality: float = 0.3,
        evaporation: float = 0.85,
        rotation_angle: float = 0.5,
    ) -> None:
        if locality <= 0:
            raise MetaheuristicError(f"locality must be positive, got {locality}")
        if not 0.0 < evaporation <= 2.0:
            raise MetaheuristicError(
                f"evaporation must be in (0, 2], got {evaporation}"
            )
        self.locality = float(locality)
        self.evaporation = float(evaporation)
        self.rotation_angle = float(rotation_angle)

    def combine(
        self, ctx: SearchContext, selected: Population, n_offspring: int
    ) -> Population:
        if not selected.is_evaluated():
            raise MetaheuristicError("ACO needs an evaluated archive")
        archive = selected.sorted_by_score()
        k = archive.size_per_spot

        # Rank weights: Gaussian kernel over ranks (ACOR's ω).
        ranks = np.arange(k, dtype=float)
        sigma_rank = self.locality * k
        weights = np.exp(-(ranks**2) / (2.0 * sigma_rank**2))
        weights /= weights.sum()

        # Choose guide members per ant via inverse-CDF on the rank weights.
        cdf = np.cumsum(weights)
        u = ctx.rng.random((n_offspring,))  # (s, n)
        guides = np.searchsorted(cdf, u.reshape(-1)).reshape(u.shape)
        np.clip(guides, 0, k - 1, out=guides)

        rows = np.arange(archive.n_spots)[:, None]
        guide_t = archive.translations[rows, guides]
        guide_q = archive.quaternions[rows, guides]

        # Gaussian width per spot: evaporation × mean absolute deviation of
        # the archive (per coordinate), floored to keep exploration alive.
        mad = np.abs(
            archive.translations - archive.translations.mean(axis=1, keepdims=True)
        ).mean(axis=1)
        width = np.maximum(self.evaporation * mad, 0.05)  # (s, 3)
        noise = ctx.rng.normal((n_offspring, 3))
        new_t = guide_t + noise * width[:, None, :]
        new_t = ctx.clip_to_bounds(new_t)

        # Orientation channel: spin the guide by an angle shrinking with
        # the translation width (joint convergence).
        shrink = float(np.clip(width.mean() / (mad.mean() + 1e-9), 0.1, 1.0))
        spins = ctx.rng.small_rotations(n_offspring, self.rotation_angle * shrink)
        new_q = quaternion_multiply(spins, guide_q)
        return Population(new_t, new_q)


def make_ant_colony(
    archive_size: int = 24,
    ants: int = 24,
    iterations: int = 40,
    locality: float = 0.3,
    evaporation: float = 0.85,
) -> MetaheuristicSpec:
    """Continuous Ant Colony Optimization from the Algorithm 1 template."""
    return MetaheuristicSpec(
        name="ACO",
        population_size=archive_size,
        offspring_size=ants,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=BestFraction(1.0),
        combine=AntColonySampling(locality=locality, evaporation=evaporation),
        improve=NoImprovement(),
        include=ElitistInclusion(),
    )
