"""Differential Evolution as a template instantiation.

DE/rand/1/bin on the translation channel plus nlerp-style difference moves
on orientations: for each target ``x`` pick distinct ``a, b, c`` and build

    mutant = a + F · (b − c),   child = crossover(x, mutant, CR)

Greedy per-index replacement happens in the Include stage (the canonical DE
selection), so the Combine stage emits one trial vector per individual.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import Combination
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.improvement import NoImprovement
from repro.metaheuristics.inclusion import Inclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.population import Population
from repro.metaheuristics.selection import IdentitySelection
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations
from repro.molecules.transforms import quaternion_multiply

__all__ = ["DifferentialMove", "GreedyPairInclusion", "make_differential_evolution"]


class DifferentialMove(Combination):
    """DE/rand/1/bin trial-vector construction.

    Parameters
    ----------
    weight:
        Differential weight F.
    crossover:
        Binomial crossover rate CR.
    rotation_angle:
        Orientation mutation magnitude (quaternion-difference analogue).
    """

    def __init__(
        self, weight: float = 0.7, crossover: float = 0.9, rotation_angle: float = 0.4
    ) -> None:
        if not 0.0 < weight <= 2.0:
            raise MetaheuristicError(f"weight must be in (0, 2], got {weight}")
        if not 0.0 <= crossover <= 1.0:
            raise MetaheuristicError(f"crossover must be in [0, 1], got {crossover}")
        self.weight = float(weight)
        self.crossover = float(crossover)
        self.rotation_angle = float(rotation_angle)

    def combine(
        self, ctx: SearchContext, selected: Population, n_offspring: int
    ) -> Population:
        k = selected.size_per_spot
        if n_offspring != k:
            raise MetaheuristicError("DE produces exactly one trial per individual")
        if k < 4:
            raise MetaheuristicError("DE needs a population of at least 4")

        # Distinct a, b, c per target: draw offsets in [1, k) and shift.
        base = np.arange(k)
        off = ctx.rng.integers(1, k, (3, k))  # (s, 3, k)
        a = (base + off[:, 0]) % k
        b = (base + off[:, 1]) % k
        c = (base + off[:, 2]) % k
        # Repair collisions between b and c (a vs b/c collisions are rare
        # and harmless; b == c would zero the differential).
        collide = b == c
        c = np.where(collide, (c + 1) % k, c)

        rows = np.arange(selected.n_spots)[:, None]
        ta = selected.translations[rows, a]
        tb = selected.translations[rows, b]
        tc = selected.translations[rows, c]
        mutant = ta + self.weight * (tb - tc)

        cross = ctx.rng.random((k, 3)) < self.crossover  # (s, k, 3)
        # Guarantee at least one mutated component per individual.
        force = ctx.rng.integers(0, 3, (k,))  # (s, k)
        axis_idx = np.arange(3)[None, None, :]
        cross = cross | (axis_idx == force[:, :, None])
        trial_t = np.where(cross, mutant, selected.translations)
        trial_t = ctx.clip_to_bounds(trial_t)

        # Orientation: spin the target by a small random rotation scaled by
        # whether its translation mutated (keeps pose channels coupled).
        spins = ctx.rng.small_rotations(k, self.rotation_angle)
        trial_q = quaternion_multiply(spins, selected.quaternions[rows, a])
        return Population(trial_t, trial_q)


class GreedyPairInclusion(Inclusion):
    """Canonical DE selection: trial ``i`` replaces parent ``i`` iff better."""

    def include(
        self, ctx: SearchContext, offspring: Population, current: Population
    ) -> Population:
        if offspring.size_per_spot != current.size_per_spot:
            raise MetaheuristicError("DE trial count must equal the population size")
        if not (offspring.is_evaluated() and current.is_evaluated()):
            raise MetaheuristicError("DE inclusion needs evaluated populations")
        better = offspring.scores < current.scores
        nxt = current.copy()
        nxt.translations = np.where(
            better[:, :, None], offspring.translations, current.translations
        )
        nxt.quaternions = np.where(
            better[:, :, None], offspring.quaternions, current.quaternions
        )
        nxt.scores = np.where(better, offspring.scores, current.scores)
        return nxt


def make_differential_evolution(
    population: int = 32,
    iterations: int = 40,
    weight: float = 0.7,
    crossover: float = 0.9,
) -> MetaheuristicSpec:
    """Differential Evolution from the Algorithm 1 template."""
    return MetaheuristicSpec(
        name="DE",
        population_size=population,
        offspring_size=population,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=IdentitySelection(),
        combine=DifferentialMove(weight=weight, crossover=crossover),
        improve=NoImprovement(),
        include=GreedyPairInclusion(),
    )
