"""GRASP (Greedy Randomized Adaptive Search Procedure) as a template
instantiation.

§2.2 lists GRASP among the neighbourhood metaheuristics. Per template
iteration: *construct* greedily-randomised candidate poses (sample a larger
candidate cloud per spot, keep a random choice among the best α-fraction),
then *improve* them with hill climbing, then keep the best seen (elitist
inclusion). The construction lives in the Combine slot, so each iteration is
one fresh GRASP restart — the canonical multi-start structure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import Combination
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.improvement import HillClimb
from repro.metaheuristics.inclusion import ElitistInclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.population import Population
from repro.metaheuristics.selection import BestFraction
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations

__all__ = ["GreedyRandomizedConstruction", "make_grasp"]


class GreedyRandomizedConstruction(Combination):
    """The GRASP construction phase in the Combine slot.

    Samples ``oversample × n_offspring`` random poses per spot, scores
    them, and draws the offspring uniformly from the restricted candidate
    list (the best ``alpha`` fraction).

    Parameters
    ----------
    alpha:
        RCL fraction in (0, 1]: 1.0 degenerates to pure random sampling,
        small values approach pure greedy construction.
    oversample:
        Candidate-cloud multiplier.
    """

    def __init__(self, alpha: float = 0.3, oversample: int = 4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise MetaheuristicError(f"alpha must be in (0, 1], got {alpha}")
        if oversample < 1:
            raise MetaheuristicError(f"oversample must be >= 1, got {oversample}")
        self.alpha = float(alpha)
        self.oversample = int(oversample)

    def combine(
        self, ctx: SearchContext, selected: Population, n_offspring: int
    ) -> Population:
        if n_offspring < 1:
            raise MetaheuristicError(f"n_offspring must be >= 1, got {n_offspring}")
        cloud = n_offspring * self.oversample
        u = ctx.rng.random((cloud, 3))
        translations = ctx.centers[:, None, :] + (2.0 * u - 1.0) * ctx.radii[:, None, None]
        quaternions = ctx.rng.quaternions(cloud)
        scores = ctx.evaluate_arrays(translations, quaternions, kind="population")

        rcl = max(n_offspring, int(round(cloud * self.alpha)))
        order = np.argsort(scores, axis=1, kind="stable")[:, :rcl]
        pick = ctx.rng.integers(0, rcl, (n_offspring,))  # (s, n_offspring)
        rows = np.arange(translations.shape[0])[:, None]
        chosen = np.take_along_axis(order, pick, axis=1)
        return Population(
            translations[rows, chosen],
            quaternions[rows, chosen],
            scores[rows, chosen],
        )


def make_grasp(
    restarts: int = 8,
    per_restart: int = 16,
    alpha: float = 0.3,
    local_search_steps: int = 8,
) -> MetaheuristicSpec:
    """GRASP from the Algorithm 1 template.

    Parameters
    ----------
    restarts:
        Template iterations (= GRASP restarts).
    per_restart:
        Constructed solutions per spot per restart.
    """
    return MetaheuristicSpec(
        name="GRASP",
        population_size=per_restart,
        offspring_size=per_restart,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(restarts),
        select=BestFraction(1.0),
        combine=GreedyRandomizedConstruction(alpha=alpha),
        improve=HillClimb(steps=local_search_steps, fraction=1.0),
        include=ElitistInclusion(),
    )
