"""Hybrid metaheuristics.

§1: experiments are run "with different metaheuristics **and hybridations
of basic metaheuristics**"; §4.2.1 cites Raidl's unified view of hybrids.
Because Algorithm 1's six functions are independent objects, hybridisation
is literal composition: take the Combine of one method and the Improve of
another. :func:`hybridize` does exactly that, and two classic recipes are
provided ready-made.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import BlendCrossover
from repro.metaheuristics.extra.annealing import AnnealingImprovement
from repro.metaheuristics.extra.pso import PsoInclusion, PsoMove
from repro.metaheuristics.improvement import HillClimb
from repro.metaheuristics.inclusion import ElitistInclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.selection import BestFraction, IdentitySelection
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations

__all__ = ["hybridize", "make_memetic_ga", "make_pso_annealing"]


def hybridize(
    name: str,
    base: MetaheuristicSpec,
    **overrides,
) -> MetaheuristicSpec:
    """Compose a new metaheuristic by replacing template functions.

    Parameters
    ----------
    base:
        The spec providing the defaults.
    overrides:
        Any of the :class:`MetaheuristicSpec` fields (``select``,
        ``combine``, ``improve``, ``include``, ``initialize``, ``end``,
        ``population_size``, ``offspring_size``).
    """
    valid = {
        "population_size",
        "offspring_size",
        "initialize",
        "end",
        "select",
        "combine",
        "improve",
        "include",
    }
    unknown = set(overrides) - valid
    if unknown:
        raise MetaheuristicError(f"unknown spec fields: {sorted(unknown)}")
    return replace(base, name=name, **overrides)


def make_memetic_ga(
    population: int = 32,
    iterations: int = 20,
    local_search_steps: int = 6,
    improve_fraction: float = 0.25,
) -> MetaheuristicSpec:
    """GA exploration + hill-climb exploitation (the classic memetic
    algorithm — structurally the paper's M2/M3 family, exposed as an
    explicit hybrid recipe)."""
    return MetaheuristicSpec(
        name="GA+LS",
        population_size=population,
        offspring_size=population,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=BestFraction(1.0),
        combine=BlendCrossover(),
        improve=HillClimb(steps=local_search_steps, fraction=improve_fraction),
        include=ElitistInclusion(),
    )


def make_pso_annealing(
    swarm_size: int = 24,
    iterations: int = 20,
    sa_steps: int = 2,
    t_start: float = 2.0,
    t_end: float = 0.05,
) -> MetaheuristicSpec:
    """PSO moves + simulated-annealing refinement: the swarm explores, a
    short Metropolis walk after each move lets particles escape the wells
    PSO gets stuck circling. Inclusion replaces the swarm (PSO keeps its
    own personal-best memory, and replacement preserves the index
    correspondence its velocity state relies on)."""
    return MetaheuristicSpec(
        name="PSO+SA",
        population_size=swarm_size,
        offspring_size=swarm_size,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=IdentitySelection(),
        combine=PsoMove(),
        improve=AnnealingImprovement(
            steps=sa_steps,
            t_start=t_start,
            t_end=t_end,
            iterations_hint=iterations,
        ),
        include=PsoInclusion(),
    )
