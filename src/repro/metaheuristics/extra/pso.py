"""Particle Swarm Optimization as a template instantiation.

§2.2 lists PSO among the distributed metaheuristics the template covers.
PSO keeps per-particle velocity and personal-best state; that state lives in
the :class:`PsoMove` operator (the template functions are objects, so
stateful metaheuristics fit the same six slots).

Velocity update (standard inertia form, per spot, per particle)::

    v ← ω v + c₁ r₁ (pbest − x) + c₂ r₂ (gbest − x)
    x ← x + v

Orientations follow the same rule in quaternion-difference space
(nlerp-style pull toward the personal/global best orientation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import Combination
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.improvement import NoImprovement
from repro.metaheuristics.inclusion import Inclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.population import Population
from repro.metaheuristics.selection import IdentitySelection
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations

__all__ = ["PsoMove", "PsoInclusion", "make_pso"]


class PsoMove(Combination):
    """The PSO position/velocity update, as the Combine stage.

    Holds the swarm state: velocities, personal bests, and their scores.
    State initialises lazily on the first call (when the population shape
    becomes known).
    """

    def __init__(
        self,
        inertia: float = 0.72,
        cognitive: float = 1.49,
        social: float = 1.49,
        max_velocity: float = 2.0,
    ) -> None:
        if not 0.0 <= inertia <= 1.0:
            raise MetaheuristicError(f"inertia must be in [0, 1], got {inertia}")
        if cognitive < 0 or social < 0:
            raise MetaheuristicError("cognitive/social factors must be >= 0")
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)
        self.max_velocity = float(max_velocity)
        self._velocity: np.ndarray | None = None
        self._pbest_t: np.ndarray | None = None
        self._pbest_q: np.ndarray | None = None
        self._pbest_s: np.ndarray | None = None

    def observe(self, population: Population) -> None:
        """Update personal bests from an evaluated population."""
        if self._pbest_s is None:
            self._pbest_t = population.translations.copy()
            self._pbest_q = population.quaternions.copy()
            self._pbest_s = population.scores.copy()
            return
        better = population.scores < self._pbest_s
        self._pbest_t = np.where(better[:, :, None], population.translations, self._pbest_t)
        self._pbest_q = np.where(better[:, :, None], population.quaternions, self._pbest_q)
        self._pbest_s = np.where(better, population.scores, self._pbest_s)

    def combine(
        self, ctx: SearchContext, selected: Population, n_offspring: int
    ) -> Population:
        if n_offspring != selected.size_per_spot:
            raise MetaheuristicError("PSO keeps the swarm size constant")
        if not selected.is_evaluated():
            raise MetaheuristicError("PSO needs evaluated particles")
        self.observe(selected)
        assert self._pbest_t is not None and self._pbest_q is not None
        assert self._pbest_s is not None

        k = selected.size_per_spot
        if self._velocity is None:
            self._velocity = np.zeros_like(selected.translations)

        gbest_idx = np.argmin(self._pbest_s, axis=1)
        rows = np.arange(selected.n_spots)
        gbest_t = self._pbest_t[rows, gbest_idx][:, None, :]
        gbest_q = self._pbest_q[rows, gbest_idx][:, None, :]

        r1 = ctx.rng.random((k, 3))
        r2 = ctx.rng.random((k, 3))
        self._velocity = (
            self.inertia * self._velocity
            + self.cognitive * r1 * (self._pbest_t - selected.translations)
            + self.social * r2 * (gbest_t - selected.translations)
        )
        speed = np.linalg.norm(self._velocity, axis=2, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            scale = np.where(
                speed > self.max_velocity, self.max_velocity / speed, 1.0
            )
        self._velocity = self._velocity * scale
        translations = ctx.clip_to_bounds(selected.translations + self._velocity)

        # Orientation: nlerp pull toward pbest then gbest (hemisphere-aligned).
        w1 = 0.3 * ctx.rng.random((k,))[:, :, None]
        w2 = 0.3 * ctx.rng.random((k,))[:, :, None]
        q = selected.quaternions
        pq = np.where(
            np.einsum("skj,skj->sk", q, self._pbest_q)[:, :, None] < 0,
            -self._pbest_q,
            self._pbest_q,
        )
        q = (1 - w1) * q + w1 * pq
        gq = np.where(np.einsum("skj,skj->sk", q, gbest_q)[:, :, None] < 0, -gbest_q, gbest_q)
        q = (1 - w2) * q + w2 * gq
        return Population(translations, q)


class PsoInclusion(Inclusion):
    """Swarm replacement: the moved particles *are* the next population
    (bests are tracked inside :class:`PsoMove`, so no elitist merge)."""

    def include(
        self, ctx: SearchContext, offspring: Population, current: Population
    ) -> Population:
        if offspring.size_per_spot != current.size_per_spot:
            raise MetaheuristicError("PSO swarm size must stay constant")
        return offspring.copy()


def make_pso(
    swarm_size: int = 64,
    iterations: int = 40,
    inertia: float = 0.72,
    cognitive: float = 1.49,
    social: float = 1.49,
) -> MetaheuristicSpec:
    """Particle Swarm Optimization from the Algorithm 1 template."""
    return MetaheuristicSpec(
        name="PSO",
        population_size=swarm_size,
        offspring_size=swarm_size,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=IdentitySelection(),
        combine=PsoMove(inertia=inertia, cognitive=cognitive, social=social),
        improve=NoImprovement(),
        include=PsoInclusion(),
    )
