"""Tabu Search as a template instantiation.

A neighbourhood metaheuristic (§2.2). Each individual is a tabu walker: per
step it samples several candidate moves, discards candidates landing in
recently visited pose-space cells (the tabu list, a discretised memory), and
moves to the best non-tabu candidate — even if worse than the current pose
(that is what lets tabu search escape local minima).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import NoCombination
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.improvement import Improvement
from repro.metaheuristics.inclusion import Inclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.population import Population
from repro.metaheuristics.selection import IdentitySelection
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations
from repro.molecules.transforms import quaternion_multiply

__all__ = ["TabuImprovement", "make_tabu_search"]


class _ReplaceInclusion(Inclusion):
    """Walkers replace themselves (move acceptance happens in Improve)."""

    def include(
        self, ctx: SearchContext, offspring: Population, current: Population
    ) -> Population:
        if offspring.size_per_spot != current.size_per_spot:
            raise MetaheuristicError("tabu search keeps the walker count constant")
        return offspring.copy()


class TabuImprovement(Improvement):
    """Best-non-tabu move selection with a bounded visited-cell memory.

    Parameters
    ----------
    candidates:
        Moves proposed per walker per step (scored in one launch).
    tenure:
        Tabu-list length (visited cells remembered per walker).
    cell_size:
        Discretisation of translation space for the memory (Å).
    translation_sigma, rotation_angle:
        Move proposal sizes.
    """

    def __init__(
        self,
        candidates: int = 4,
        tenure: int = 16,
        cell_size: float = 0.75,
        translation_sigma: float = 0.6,
        rotation_angle: float = 0.4,
    ) -> None:
        if candidates < 1:
            raise MetaheuristicError(f"candidates must be >= 1, got {candidates}")
        if tenure < 1:
            raise MetaheuristicError(f"tenure must be >= 1, got {tenure}")
        if cell_size <= 0:
            raise MetaheuristicError(f"cell_size must be positive, got {cell_size}")
        self.candidates = int(candidates)
        self.tenure = int(tenure)
        self.cell_size = float(cell_size)
        self.translation_sigma = float(translation_sigma)
        self.rotation_angle = float(rotation_angle)
        # (spot, walker) -> deque of visited cells. Keyed lazily.
        self._memory: dict[tuple[int, int], deque[tuple[int, int, int]]] = {}

    def _cell(self, translation: np.ndarray) -> tuple[int, int, int]:
        c = np.floor(translation / self.cell_size).astype(int)
        return int(c[0]), int(c[1]), int(c[2])

    def improve(self, ctx: SearchContext, population: Population) -> Population:
        result = population.copy()
        if not result.is_evaluated():
            ctx.evaluate_population(result)
        s, k = result.n_spots, result.size_per_spot
        c = self.candidates

        # Propose c candidates per walker; score all in one launch.
        cand_t = (
            result.translations[:, :, None, :]
            + ctx.rng.normal((k, c, 3), scale=self.translation_sigma)
        ).reshape(s, k * c, 3)
        cand_t = ctx.clip_to_bounds(cand_t)
        spins = ctx.rng.small_rotations(k * c, self.rotation_angle)
        cand_q = quaternion_multiply(
            spins, np.repeat(result.quaternions, c, axis=1)
        )
        cand_s = ctx.evaluate_arrays(cand_t, cand_q).reshape(s, k, c)
        cand_t = cand_t.reshape(s, k, c, 3)
        cand_q = cand_q.reshape(s, k, c, 4)

        for si in range(s):
            for wi in range(k):
                memory = self._memory.setdefault(
                    (si, wi), deque(maxlen=self.tenure)
                )
                order = np.argsort(cand_s[si, wi], kind="stable")
                chosen = None
                for ci in order:
                    cell = self._cell(cand_t[si, wi, ci])
                    if cell not in memory:
                        chosen = int(ci)
                        break
                    # Aspiration criterion: a tabu move is allowed if it
                    # beats the walker's current score outright.
                    if cand_s[si, wi, ci] < result.scores[si, wi]:
                        chosen = int(ci)
                        break
                if chosen is None:
                    chosen = int(order[0])  # all tabu: take the best anyway
                memory.append(self._cell(result.translations[si, wi]))
                result.translations[si, wi] = cand_t[si, wi, chosen]
                result.quaternions[si, wi] = cand_q[si, wi, chosen]
                result.scores[si, wi] = cand_s[si, wi, chosen]
        return result


def make_tabu_search(
    walkers: int = 16,
    iterations: int = 30,
    candidates: int = 4,
    tenure: int = 16,
) -> MetaheuristicSpec:
    """Tabu Search from the Algorithm 1 template."""
    return MetaheuristicSpec(
        name="TABU",
        population_size=walkers,
        offspring_size=walkers,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=IdentitySelection(),
        combine=NoCombination(),
        improve=TabuImprovement(candidates=candidates, tenure=tenure),
        include=_ReplaceInclusion(),
    )
