"""Variable Neighbourhood Search as a template instantiation.

§2.2 lists VNS among the neighbourhood metaheuristics. Each walker keeps a
neighbourhood index ``κ``: moves are drawn at scale ``κ · base``; an
improving move resets ``κ = 1``, a failed one grows it (shake harder), up to
``k_max``. State (per-walker κ) lives in the Improve operator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import NoCombination
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.improvement import Improvement
from repro.metaheuristics.inclusion import ElitistInclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.population import Population
from repro.metaheuristics.selection import IdentitySelection
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations
from repro.molecules.transforms import quaternion_multiply

__all__ = ["VnsImprovement", "make_vns"]


class VnsImprovement(Improvement):
    """Shake-and-descend with adaptive neighbourhood sizes.

    Parameters
    ----------
    steps:
        Shake/descend rounds per template iteration.
    k_max:
        Largest neighbourhood index.
    base_sigma, base_angle:
        Neighbourhood-1 move sizes; neighbourhood κ scales both by κ.
    """

    def __init__(
        self,
        steps: int = 4,
        k_max: int = 4,
        base_sigma: float = 0.3,
        base_angle: float = 0.2,
    ) -> None:
        if steps < 1:
            raise MetaheuristicError(f"steps must be >= 1, got {steps}")
        if k_max < 1:
            raise MetaheuristicError(f"k_max must be >= 1, got {k_max}")
        self.steps = int(steps)
        self.k_max = int(k_max)
        self.base_sigma = float(base_sigma)
        self.base_angle = float(base_angle)
        self._kappa: np.ndarray | None = None  # (s, k) neighbourhood indices

    def improve(self, ctx: SearchContext, population: Population) -> Population:
        result = population.copy()
        if not result.is_evaluated():
            ctx.evaluate_population(result)
        s, k = result.n_spots, result.size_per_spot
        if self._kappa is None or self._kappa.shape != (s, k):
            self._kappa = np.ones((s, k), dtype=np.int64)

        for _ in range(self.steps):
            scale = self._kappa.astype(float)  # (s, k)
            cand_t = result.translations + scale[:, :, None] * ctx.rng.normal(
                (k, 3), scale=self.base_sigma
            )
            cand_t = ctx.clip_to_bounds(cand_t)
            # Rotation scale grows with κ by compounding κ base rotations
            # (keeps every walker's draw count equal per round).
            cand_q = result.quaternions
            max_kappa = int(self._kappa.max())
            applied = np.zeros((s, k), dtype=np.int64)
            for _round in range(max_kappa):
                need = applied < self._kappa
                spun = quaternion_multiply(
                    ctx.rng.small_rotations(k, self.base_angle), cand_q
                )
                cand_q = np.where(need[:, :, None], spun, cand_q)
                applied += need.astype(np.int64)
            cand_s = ctx.evaluate_arrays(cand_t, cand_q)
            better = cand_s < result.scores
            result.translations = np.where(better[:, :, None], cand_t, result.translations)
            result.quaternions = np.where(better[:, :, None], cand_q, result.quaternions)
            result.scores = np.where(better, cand_s, result.scores)
            # κ: reset on success, grow on failure.
            self._kappa = np.where(
                better, 1, np.minimum(self._kappa + 1, self.k_max)
            )
        return result


def make_vns(
    walkers: int = 16,
    iterations: int = 30,
    steps_per_iteration: int = 4,
    k_max: int = 4,
) -> MetaheuristicSpec:
    """Variable Neighbourhood Search from the Algorithm 1 template."""
    return MetaheuristicSpec(
        name="VNS",
        population_size=walkers,
        offspring_size=walkers,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=IdentitySelection(),
        combine=NoCombination(),
        improve=VnsImprovement(steps=steps_per_iteration, k_max=k_max),
        include=ElitistInclusion(),
    )
