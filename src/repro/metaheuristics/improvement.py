"""``Improve(Scom)`` strategies — the local-search stage.

§3.1: candidate solutions "can be also improved by applying a local search;
i.e. moving, translating and/or rotating with respect to each spot". The
*intensity* of this stage is the axis the paper varies between M2 (100 % of
elements improved), M3 (20 %) and M4 (pure local search on a huge set):
more intensification ⇒ more scoring launches ⇒ higher GPU speed-ups (§5).

The hill climber is vectorised: each step perturbs every improving
individual at once, scores the batch in one launch, and keeps the moves that
helped (first-improvement acceptance, per individual).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.population import Population
from repro.molecules.transforms import quaternion_multiply

__all__ = ["Improvement", "NoImprovement", "HillClimb"]


class Improvement(ABC):
    """Local search applied to (a fraction of) ``Scom``.

    Implementations must return a fully evaluated population.
    """

    @abstractmethod
    def improve(self, ctx: SearchContext, population: Population) -> Population:
        """Return the improved, fully evaluated population."""


class NoImprovement(Improvement):
    """Skip local search (the paper's M1: 0 % of elements improved).

    Only guarantees evaluation: unevaluated individuals are scored.
    """

    def improve(self, ctx: SearchContext, population: Population) -> Population:
        result = population.copy()
        if not result.is_evaluated():
            ctx.evaluate_population(result)
        return result


class HillClimb(Improvement):
    """Stochastic hill climbing on pose space.

    Parameters
    ----------
    steps:
        Local-search iterations (the intensification knob).
    fraction:
        Fraction of each spot group improved (Table 4's "% of elements to be
        improved"); the *best* individuals are picked.
    translation_sigma:
        Gaussian move width in Å.
    rotation_angle:
        Maximum rotation move in radians.
    anneal:
        When True, move sizes shrink linearly to 20 % over the steps —
        coarse-to-fine refinement.
    """

    def __init__(
        self,
        steps: int = 8,
        fraction: float = 1.0,
        translation_sigma: float = 0.4,
        rotation_angle: float = 0.3,
        anneal: bool = True,
    ) -> None:
        if steps < 1:
            raise MetaheuristicError(f"steps must be >= 1, got {steps}")
        if not 0.0 < fraction <= 1.0:
            raise MetaheuristicError(f"fraction must be in (0, 1], got {fraction}")
        self.steps = int(steps)
        self.fraction = float(fraction)
        self.translation_sigma = float(translation_sigma)
        self.rotation_angle = float(rotation_angle)
        self.anneal = bool(anneal)

    def improve(self, ctx: SearchContext, population: Population) -> Population:
        result = population.copy()
        if not result.is_evaluated():
            ctx.evaluate_population(result)

        k = result.size_per_spot
        m = max(1, min(k, int(round(k * self.fraction))))
        # Improve the best m of each spot group (memetic convention).
        order = np.argsort(result.scores, axis=1, kind="stable")[:, :m]
        rows = np.arange(result.n_spots)[:, None]

        cur_t = result.translations[rows, order].copy()  # (s, m, 3)
        cur_q = result.quaternions[rows, order].copy()  # (s, m, 4)
        cur_s = result.scores[rows, order].copy()  # (s, m)

        for step in range(self.steps):
            scale = 1.0 - 0.8 * (step / max(1, self.steps - 1)) if self.anneal else 1.0
            cand_t = cur_t + ctx.rng.normal((m, 3), scale=self.translation_sigma * scale)
            cand_t = ctx.clip_to_bounds(cand_t)
            spins = ctx.rng.small_rotations(m, self.rotation_angle * scale)
            cand_q = quaternion_multiply(spins, cur_q)
            cand_s = ctx.evaluate_arrays(cand_t, cand_q)
            better = cand_s < cur_s
            cur_t = np.where(better[:, :, None], cand_t, cur_t)
            cur_q = np.where(better[:, :, None], cand_q, cur_q)
            cur_s = np.where(better, cand_s, cur_s)

        result.translations[rows, order] = cur_t
        result.quaternions[rows, order] = cur_q
        result.scores[rows, order] = cur_s
        return result
