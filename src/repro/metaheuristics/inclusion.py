"""``Include(Scom, S)`` strategies.

Inclusion decides the next reference set from the current one plus the
combined/improved offspring. The paper's population metaheuristics "select
the best configurations from those in the reference set and those generated
by combination and improvement" (§4.2.1) — elitist truncation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.population import Population

__all__ = ["Inclusion", "ElitistInclusion", "GenerationalInclusion", "SteadyStateInclusion"]


class Inclusion(ABC):
    """Merges offspring into the reference set."""

    @abstractmethod
    def include(
        self, ctx: SearchContext, offspring: Population, current: Population
    ) -> Population:
        """Return the next reference set (same size as ``current``)."""


def _require_evaluated(*populations: Population) -> None:
    for p in populations:
        if not p.is_evaluated():
            raise MetaheuristicError("inclusion requires fully evaluated populations")


class ElitistInclusion(Inclusion):
    """Best-of-union truncation: next set = best ``k`` of ``S ∪ Scom``."""

    def include(
        self, ctx: SearchContext, offspring: Population, current: Population
    ) -> Population:
        _require_evaluated(offspring, current)
        union = current.concat(offspring)
        k = current.size_per_spot
        order = np.argsort(union.scores, axis=1, kind="stable")[:, :k]
        return union.take(order)


class GenerationalInclusion(Inclusion):
    """Full replacement with elitism: offspring replace the reference set,
    except the best ``elites`` of the old set survive (replacing the worst
    offspring)."""

    def __init__(self, elites: int = 1) -> None:
        if elites < 0:
            raise MetaheuristicError(f"elites must be >= 0, got {elites}")
        self.elites = int(elites)

    def include(
        self, ctx: SearchContext, offspring: Population, current: Population
    ) -> Population:
        _require_evaluated(offspring, current)
        k = current.size_per_spot
        if offspring.size_per_spot < k:
            raise MetaheuristicError(
                "generational inclusion needs at least as many offspring "
                f"({offspring.size_per_spot}) as the reference size ({k})"
            )
        best_children = np.argsort(offspring.scores, axis=1, kind="stable")[:, :k]
        nxt = offspring.take(best_children)
        e = min(self.elites, k)
        if e > 0:
            elite_idx = np.argsort(current.scores, axis=1, kind="stable")[:, :e]
            elites = current.take(elite_idx)
            worst = np.argsort(nxt.scores, axis=1, kind="stable")[:, k - e :]
            rows = np.arange(nxt.n_spots)[:, None]
            nxt.translations[rows, worst] = elites.translations
            nxt.quaternions[rows, worst] = elites.quaternions
            nxt.scores[rows, worst] = elites.scores
        return nxt


class SteadyStateInclusion(Inclusion):
    """Each offspring replaces the current worst individual if better."""

    def include(
        self, ctx: SearchContext, offspring: Population, current: Population
    ) -> Population:
        _require_evaluated(offspring, current)
        nxt = current.copy()
        rows = np.arange(nxt.n_spots)
        for j in range(offspring.size_per_spot):
            worst = np.argmax(nxt.scores, axis=1)
            child_scores = offspring.scores[:, j]
            replace = child_scores < nxt.scores[rows, worst]
            w = worst[replace]
            r = rows[replace]
            nxt.translations[r, w] = offspring.translations[replace, j]
            nxt.quaternions[r, w] = offspring.quaternions[replace, j]
            nxt.scores[r, w] = child_scores[replace]
        return nxt
