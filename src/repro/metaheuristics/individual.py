"""Candidate solutions (*conformations*) and their flat encoding.

§3.1: "a candidate solution (or individual) is a conformation" — a placement
of the ligand at one receptor spot, i.e. a translation plus an orientation.
The flat encoding is 7 floats ``[tx, ty, tz, qw, qx, qy, qz]``; crossover and
local-search operators work directly on the two components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import MetaheuristicError
from repro.molecules.transforms import normalize_quaternion

__all__ = ["Conformation", "encode_pose", "decode_pose", "POSE_DIM"]

#: Length of the flat pose vector (3 translation + 4 quaternion).
POSE_DIM: int = 7


@dataclass(frozen=True, slots=True)
class Conformation:
    """One candidate solution: a ligand pose anchored to a spot.

    Attributes
    ----------
    spot_index:
        Which receptor spot this conformation belongs to.
    translation:
        ``(3,)`` ligand-centroid position in receptor coordinates (Å).
    quaternion:
        ``(4,)`` unit orientation.
    score:
        Scoring-function value (kcal/mol, lower = better); ``nan`` when not
        yet evaluated.
    """

    spot_index: int
    translation: np.ndarray
    quaternion: np.ndarray
    score: float = float("nan")

    def __post_init__(self) -> None:
        t = np.ascontiguousarray(self.translation, dtype=FLOAT_DTYPE)
        q = np.ascontiguousarray(self.quaternion, dtype=FLOAT_DTYPE)
        if t.shape != (3,):
            raise MetaheuristicError(f"translation must have shape (3,), got {t.shape}")
        if q.shape != (4,):
            raise MetaheuristicError(f"quaternion must have shape (4,), got {q.shape}")
        object.__setattr__(self, "translation", t)
        object.__setattr__(self, "quaternion", normalize_quaternion(q))

    def encoded(self) -> np.ndarray:
        """Flat 7-vector encoding."""
        return encode_pose(self.translation, self.quaternion)

    def evaluated(self, score: float) -> "Conformation":
        """Copy with the score filled in."""
        return Conformation(self.spot_index, self.translation, self.quaternion, score)


def encode_pose(translation: np.ndarray, quaternion: np.ndarray) -> np.ndarray:
    """Pack translation(s) and quaternion(s) into flat pose vector(s).

    Accepts ``(3,)``/``(4,)`` or batched ``(..., 3)``/``(..., 4)``.
    """
    t = np.asarray(translation, dtype=FLOAT_DTYPE)
    q = np.asarray(quaternion, dtype=FLOAT_DTYPE)
    if t.shape[-1] != 3 or q.shape[-1] != 4 or t.shape[:-1] != q.shape[:-1]:
        raise MetaheuristicError(
            f"incompatible pose component shapes {t.shape} and {q.shape}"
        )
    return np.concatenate([t, q], axis=-1)


def decode_pose(encoded: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpack flat pose vector(s) into (translations, unit quaternions).

    Quaternions are re-normalised on decode, so operators are free to produce
    non-unit intermediate values.
    """
    encoded = np.asarray(encoded, dtype=FLOAT_DTYPE)
    if encoded.shape[-1] != POSE_DIM:
        raise MetaheuristicError(
            f"pose vectors must have last dimension {POSE_DIM}, got {encoded.shape}"
        )
    return encoded[..., :3], normalize_quaternion(encoded[..., 3:])
