"""``Initialize(S)`` strategies.

Initial conformations scatter the ligand around each spot: translations in
the spot's search box, orientations uniform on SO(3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.population import Population

__all__ = ["Initializer", "UniformSpotInitializer", "ShellInitializer"]


class Initializer(ABC):
    """Produces the unevaluated initial population."""

    @abstractmethod
    def initialize(self, ctx: SearchContext, size_per_spot: int) -> Population:
        """Create ``size_per_spot`` individuals for every spot."""


def _check_size(size_per_spot: int) -> None:
    if size_per_spot < 1:
        raise MetaheuristicError(f"size_per_spot must be >= 1, got {size_per_spot}")


class UniformSpotInitializer(Initializer):
    """Translations uniform in each spot's cube, orientations uniform."""

    def initialize(self, ctx: SearchContext, size_per_spot: int) -> Population:
        _check_size(size_per_spot)
        u = ctx.rng.random((size_per_spot, 3))  # (s, k, 3) in [0, 1)
        offsets = (2.0 * u - 1.0) * ctx.radii[:, None, None]
        translations = ctx.centers[:, None, :] + offsets
        quaternions = ctx.rng.quaternions(size_per_spot)
        return Population(translations, quaternions)


class ShellInitializer(Initializer):
    """Translations biased outward along the spot normal.

    Places individuals in the outer half of the search region (between
    ``bias`` and 1 of the radius along the normal, uniform sideways). Useful
    when spots hug the surface and inward placements mostly clash.
    """

    def __init__(self, bias: float = 0.25) -> None:
        if not 0.0 <= bias < 1.0:
            raise MetaheuristicError(f"bias must be in [0, 1), got {bias}")
        self.bias = float(bias)

    def initialize(self, ctx: SearchContext, size_per_spot: int) -> Population:
        _check_size(size_per_spot)
        normals = np.stack([s.normal for s in ctx.spots])  # (s, 3)
        u = ctx.rng.random((size_per_spot, 3))
        sideways = (2.0 * u - 1.0) * ctx.radii[:, None, None]
        # Replace the normal component with an outward-biased offset.
        along = (self.bias + (1.0 - self.bias) * ctx.rng.random((size_per_spot,))) * ctx.radii[
            :, None
        ]
        proj = np.einsum("skj,sj->sk", sideways, normals)
        sideways = sideways - proj[:, :, None] * normals[:, None, :]
        translations = (
            ctx.centers[:, None, :] + sideways + along[:, :, None] * normals[:, None, :]
        )
        translations = ctx.clip_to_bounds(translations)
        quaternions = ctx.rng.quaternions(size_per_spot)
        return Population(translations, quaternions)
