"""Independent multi-start execution.

§3.3: "Parallel runs do not incur any communication overhead, and the final
solution is chosen from all independent executions, given the stochastic
nature of metaheuristics." This module is that pattern as a library call:
run the same spec several times with independent seed streams and keep the
best outcome — the search-quality counterpart of the runtime's spot-level
parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MetaheuristicError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import Evaluator, SerialEvaluator
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import (
    MetaheuristicResult,
    MetaheuristicSpec,
    run_metaheuristic,
)
from repro.molecules.spots import Spot
from repro.scoring.base import BoundScorer

__all__ = ["MultistartResult", "run_multistart"]


@dataclass
class MultistartResult:
    """Outcome of N independent runs.

    Attributes
    ----------
    best:
        The winning run's result.
    runs:
        Every run's result, in seed order.
    total_evaluations:
        Scoring evaluations across all runs.
    """

    best: MetaheuristicResult
    runs: list[MetaheuristicResult]
    total_evaluations: int

    @property
    def best_score(self) -> float:
        """Best score over all runs."""
        return self.best.best.score

    @property
    def score_spread(self) -> float:
        """Best-to-worst spread of the final scores — the run-to-run
        variance the multi-start absorbs."""
        finals = [r.best.score for r in self.runs]
        return max(finals) - min(finals)


def run_multistart(
    spec: MetaheuristicSpec,
    spots: list[Spot],
    scorer: BoundScorer,
    n_runs: int,
    base_seed: int = 0,
    spec_factory=None,
) -> MultistartResult:
    """Run ``spec`` ``n_runs`` times with independent seeds; keep the best.

    Parameters
    ----------
    spec_factory:
        Optional zero-argument callable returning a fresh spec per run —
        required for *stateful* metaheuristics (PSO, SA, Tabu, VNS, DE hold
        state in their operator objects) so runs stay independent. When
        None, ``spec`` is reused (safe for the stateless M1–M4 presets).
    """
    if n_runs < 1:
        raise MetaheuristicError(f"n_runs must be >= 1, got {n_runs}")
    runs: list[MetaheuristicResult] = []
    total_evals = 0
    for run_index in range(n_runs):
        run_spec = spec_factory() if spec_factory is not None else spec
        evaluator: Evaluator = SerialEvaluator(scorer)
        ctx = SearchContext(
            spots=spots,
            evaluator=evaluator,
            # Seed streams disjoint per run: (base_seed, run, spot).
            rng=SpotRngPool(
                base_seed * 1_000_003 + run_index, [s.index for s in spots]
            ),
        )
        runs.append(run_metaheuristic(run_spec, ctx))
        total_evals += evaluator.stats.n_conformations
    best = min(runs, key=lambda r: r.best.score)
    return MultistartResult(best=best, runs=runs, total_evaluations=total_evals)
