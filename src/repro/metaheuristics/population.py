"""Population container: structure-of-arrays over (spot, individual).

The paper maintains one sub-population per spot ("a population of 64
individuals for each spot in the receptor", §4.2.1) and evolves all spots
simultaneously. We store the whole population as ``(n_spots, k)`` arrays so
every operator is vectorised across spots *and* individuals, mirroring the
one-warp-per-conformation data layout of the CUDA kernels.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import MetaheuristicError
from repro.metaheuristics.individual import Conformation
from repro.molecules.transforms import normalize_quaternion

__all__ = ["Population"]


class Population:
    """Candidate-solution set, grouped by spot.

    Parameters
    ----------
    translations:
        ``(n_spots, k, 3)``.
    quaternions:
        ``(n_spots, k, 4)`` — normalised on construction.
    scores:
        ``(n_spots, k)``; ``nan`` marks unevaluated individuals.
    """

    def __init__(
        self,
        translations: np.ndarray,
        quaternions: np.ndarray,
        scores: np.ndarray | None = None,
    ) -> None:
        translations = np.ascontiguousarray(translations, dtype=FLOAT_DTYPE)
        quaternions = np.ascontiguousarray(quaternions, dtype=FLOAT_DTYPE)
        if translations.ndim != 3 or translations.shape[2] != 3:
            raise MetaheuristicError(
                f"translations must have shape (s, k, 3), got {translations.shape}"
            )
        s, k = translations.shape[:2]
        if quaternions.shape != (s, k, 4):
            raise MetaheuristicError(
                f"quaternions must have shape ({s}, {k}, 4), got {quaternions.shape}"
            )
        self.translations = translations
        self.quaternions = normalize_quaternion(quaternions)
        if scores is None:
            self.scores = np.full((s, k), np.nan, dtype=FLOAT_DTYPE)
        else:
            self.scores = np.ascontiguousarray(scores, dtype=FLOAT_DTYPE)
            if self.scores.shape != (s, k):
                raise MetaheuristicError(
                    f"scores must have shape ({s}, {k}), got {self.scores.shape}"
                )

    # ------------------------------------------------------------------
    @property
    def n_spots(self) -> int:
        """Number of spot groups."""
        return int(self.translations.shape[0])

    @property
    def size_per_spot(self) -> int:
        """Individuals per spot (k)."""
        return int(self.translations.shape[1])

    @property
    def total(self) -> int:
        """Total number of individuals across all spots."""
        return self.n_spots * self.size_per_spot

    def __repr__(self) -> str:
        return (
            f"<Population spots={self.n_spots} per_spot={self.size_per_spot} "
            f"evaluated={int(np.isfinite(self.scores).sum())}/{self.total}>"
        )

    # ------------------------------------------------------------------
    def copy(self) -> "Population":
        """Deep copy."""
        return Population(
            self.translations.copy(), self.quaternions.copy(), self.scores.copy()
        )

    def is_evaluated(self) -> bool:
        """True when every individual has a finite score."""
        return bool(np.all(np.isfinite(self.scores)))

    def flat(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(spot_ids, translations, quaternions)`` flattened to 1-D batch.

        The order is spot-major: all of spot 0's individuals first. This is
        the layout handed to evaluators (and, in the modelled system, the
        layout copied to the GPUs in Algorithm 2).
        """
        s, k = self.n_spots, self.size_per_spot
        spot_ids = np.repeat(np.arange(s, dtype=np.int64), k)
        return (
            spot_ids,
            self.translations.reshape(s * k, 3),
            self.quaternions.reshape(s * k, 4),
        )

    def set_scores_flat(self, scores: np.ndarray) -> None:
        """Write back a flat ``(total,)`` score vector from :meth:`flat` order."""
        scores = np.asarray(scores, dtype=FLOAT_DTYPE)
        if scores.shape != (self.total,):
            raise MetaheuristicError(
                f"expected {self.total} scores, got shape {scores.shape}"
            )
        self.scores = scores.reshape(self.n_spots, self.size_per_spot).copy()

    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Population":
        """Gather individuals per spot.

        Parameters
        ----------
        indices:
            ``(n_spots, m)`` integer array; row ``s`` selects individuals of
            spot ``s``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2 or indices.shape[0] != self.n_spots:
            raise MetaheuristicError(
                f"indices must have shape ({self.n_spots}, m), got {indices.shape}"
            )
        rows = np.arange(self.n_spots)[:, None]
        return Population(
            self.translations[rows, indices],
            self.quaternions[rows, indices],
            self.scores[rows, indices],
        )

    def concat(self, other: "Population") -> "Population":
        """Concatenate along the per-spot axis (same spot count required)."""
        if other.n_spots != self.n_spots:
            raise MetaheuristicError(
                f"cannot concat populations with {self.n_spots} and "
                f"{other.n_spots} spots"
            )
        return Population(
            np.concatenate([self.translations, other.translations], axis=1),
            np.concatenate([self.quaternions, other.quaternions], axis=1),
            np.concatenate([self.scores, other.scores], axis=1),
        )

    def sorted_by_score(self) -> "Population":
        """Per-spot ascending score order (best first); nan sorts last."""
        order = np.argsort(self.scores, axis=1, kind="stable")
        return self.take(order)

    # ------------------------------------------------------------------
    def best_index_per_spot(self) -> np.ndarray:
        """``(n_spots,)`` index of the best (lowest-score) individual per spot."""
        if not self.is_evaluated():
            raise MetaheuristicError("population must be fully evaluated first")
        return np.argmin(self.scores, axis=1)

    def best_score_per_spot(self) -> np.ndarray:
        """``(n_spots,)`` best score per spot."""
        if not self.is_evaluated():
            raise MetaheuristicError("population must be fully evaluated first")
        return self.scores.min(axis=1)

    def best_conformation(self) -> Conformation:
        """Globally best individual across all spots."""
        if not self.is_evaluated():
            raise MetaheuristicError("population must be fully evaluated first")
        flat_idx = int(np.argmin(self.scores))
        s, i = divmod(flat_idx, self.size_per_spot)
        return Conformation(
            spot_index=s,
            translation=self.translations[s, i],
            quaternion=self.quaternions[s, i],
            score=float(self.scores[s, i]),
        )

    def best_conformation_per_spot(self) -> list[Conformation]:
        """Best individual of every spot, as value objects."""
        idx = self.best_index_per_spot()
        return [
            Conformation(
                spot_index=s,
                translation=self.translations[s, idx[s]],
                quaternion=self.quaternions[s, idx[s]],
                score=float(self.scores[s, idx[s]]),
            )
            for s in range(self.n_spots)
        ]

    def spot_subset(self, spot_indices: np.ndarray) -> "Population":
        """Select whole spot groups (used by spot-level work partitioning)."""
        spot_indices = np.asarray(spot_indices, dtype=np.int64)
        return Population(
            self.translations[spot_indices],
            self.quaternions[spot_indices],
            self.scores[spot_indices],
        )
