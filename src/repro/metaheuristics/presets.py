"""The paper's four benchmark metaheuristics (Table 4).

========= ============== ================= ====================
 name      initial S      % selected        % improved
========= ============== ================= ====================
 M1        64 × spots     100 %             0 %   (genetic algorithm)
 M2        64 × spots     100 %             100 % (scatter-search-like)
 M3        64 × spots     100 %             20 %  (light local search)
 M4        1024 × spots   does not apply    100 % (one-step neighbourhood)
========= ============== ================= ====================

The paper fixes the metaheuristic workloads but does not publish iteration
counts; the defaults below are calibrated so the *relative* scoring workload
(evaluations per spot) matches the relative OpenMP times of Table 6:
M1 : M2 : M3 : M4 ≈ 1 : 1.6 : 0.5 : 50.

``workload_scale`` shrinks or grows every preset proportionally (tests use
small scales; the benchmark harness uses 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import BlendCrossover, NoCombination
from repro.metaheuristics.improvement import HillClimb, NoImprovement
from repro.metaheuristics.inclusion import ElitistInclusion
from repro.metaheuristics.initialization import UniformSpotInitializer
from repro.metaheuristics.selection import BestFraction
from repro.metaheuristics.template import MetaheuristicSpec
from repro.metaheuristics.termination import MaxIterations

__all__ = ["PresetParameters", "PRESET_TABLE", "make_preset", "preset_names", "expected_evaluations_per_spot"]


@dataclass(frozen=True, slots=True)
class PresetParameters:
    """Table 4 row plus the calibrated loop counts.

    Attributes
    ----------
    population:
        Individuals per spot in the reference set.
    select_fraction:
        Fraction of S selected into Ssel (Table 4: 100 %).
    improve_fraction:
        Fraction of Scom improved by local search (Table 4).
    iterations:
        Template iterations (calibrated, see module docstring).
    local_search_steps:
        Hill-climb steps per Improve call (the intensification level).
    """

    population: int
    select_fraction: float
    improve_fraction: float
    iterations: int
    local_search_steps: int


#: Calibrated parameters for the paper's four metaheuristics.
PRESET_TABLE: dict[str, PresetParameters] = {
    "M1": PresetParameters(
        population=64,
        select_fraction=1.0,
        improve_fraction=0.0,
        iterations=40,
        local_search_steps=0,
    ),
    "M2": PresetParameters(
        population=64,
        select_fraction=1.0,
        improve_fraction=1.0,
        iterations=6,
        local_search_steps=10,
    ),
    "M3": PresetParameters(
        population=64,
        select_fraction=1.0,
        improve_fraction=0.2,
        iterations=7,
        local_search_steps=10,
    ),
    "M4": PresetParameters(
        population=1024,
        select_fraction=1.0,
        improve_fraction=1.0,
        iterations=1,
        local_search_steps=128,
    ),
}


def preset_names() -> tuple[str, ...]:
    """``("M1", "M2", "M3", "M4")``."""
    return tuple(PRESET_TABLE)


def make_preset(name: str, workload_scale: float = 1.0) -> MetaheuristicSpec:
    """Build the :class:`MetaheuristicSpec` for one of M1–M4.

    Parameters
    ----------
    name:
        ``"M1"`` … ``"M4"``.
    workload_scale:
        Proportional scaling of iterations / local-search steps / (for M4)
        population, with a floor of 1 on each. ``0.1`` gives a ~10× cheaper
        run with the same algorithmic structure — used by tests and smoke
        runs.
    """
    try:
        p = PRESET_TABLE[name]
    except KeyError:
        raise MetaheuristicError(
            f"unknown preset {name!r}; available: {sorted(PRESET_TABLE)}"
        ) from None
    if workload_scale <= 0:
        raise MetaheuristicError(f"workload_scale must be positive, got {workload_scale}")

    def scaled(x: int) -> int:
        return max(1, int(round(x * workload_scale)))

    if name == "M4":
        population = scaled(p.population)
        iterations = p.iterations  # M4 "applies only one step" (§4.2.1)
        steps = scaled(p.local_search_steps)
    else:
        population = p.population if workload_scale >= 1.0 else max(4, scaled(p.population))
        iterations = scaled(p.iterations)
        steps = p.local_search_steps

    if p.improve_fraction == 0.0:
        improver = NoImprovement()
    else:
        improver = HillClimb(steps=steps, fraction=p.improve_fraction)

    combiner = (
        NoCombination() if name == "M4" else BlendCrossover()
    )

    return MetaheuristicSpec(
        name=name,
        population_size=population,
        offspring_size=population,
        initialize=UniformSpotInitializer(),
        end=MaxIterations(iterations),
        select=BestFraction(p.select_fraction),
        combine=combiner,
        improve=improver,
        include=ElitistInclusion(),
    )


def expected_evaluations_per_spot(name: str, workload_scale: float = 1.0) -> int:
    """Scoring evaluations one spot costs under a preset.

    Used by tests (the evaluator's recorded totals must match) and by the
    analytic workload model in the experiment configs.
    """
    spec = make_preset(name, workload_scale)
    p = PRESET_TABLE[name]
    # Initialization scores the whole reference set once.
    total = spec.population_size
    if isinstance(spec.end, MaxIterations):
        iterations = spec.end.limit
    else:  # pragma: no cover - presets always use MaxIterations
        raise MetaheuristicError("preset uses a non-fixed end condition")
    per_iter = 0
    if not isinstance(spec.combine, NoCombination):
        per_iter += spec.offspring_size  # fresh offspring get scored
    if isinstance(spec.improve, HillClimb):
        m = max(1, min(spec.offspring_size, int(round(spec.offspring_size * p.improve_fraction))))
        per_iter += m * spec.improve.steps
    return total + iterations * per_iter
