"""Per-spot random-number streams.

Spots are "independent from each other" (§3.1) and the heterogeneous runtime
may assign any subset of spots to any device. To make results *partition
invariant* — the union of per-spot outcomes is identical no matter how spots
are split across devices — every spot owns its own PCG64 stream, spawned
deterministically from ``(seed, spot_index)``. Operators draw per spot and
stack, so spot ``s`` consumes exactly the same random sequence whether it
runs alone or alongside 31 others.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import MetaheuristicError
from repro.molecules.transforms import random_quaternion, small_random_rotation

__all__ = ["SpotRngPool"]


class SpotRngPool:
    """A deterministic bundle of per-spot generators.

    Parameters
    ----------
    seed:
        Base seed.
    spot_indices:
        The *global* indices of the spots this pool covers (a device working
        on spots [3, 7] gets streams identical to the full run's streams for
        those spots).
    """

    def __init__(self, seed: int, spot_indices: np.ndarray | list[int]) -> None:
        self.seed = int(seed)
        self.spot_indices = np.asarray(spot_indices, dtype=np.int64)
        if self.spot_indices.ndim != 1 or self.spot_indices.size == 0:
            raise MetaheuristicError("spot_indices must be a non-empty 1-D sequence")
        self._rngs = [
            np.random.Generator(np.random.PCG64(np.random.SeedSequence((self.seed, int(s)))))
            for s in self.spot_indices
        ]

    @property
    def n_spots(self) -> int:
        """Number of per-spot streams."""
        return len(self._rngs)

    def generator(self, local_spot: int) -> np.random.Generator:
        """The raw generator of one (locally indexed) spot."""
        return self._rngs[local_spot]

    # ------------------------------------------------------------------
    # stacked draws: every method returns (n_spots, ...) arrays
    # ------------------------------------------------------------------
    def random(self, shape_per_spot: tuple[int, ...]) -> np.ndarray:
        """Uniform [0, 1) draws, shape ``(n_spots, *shape_per_spot)``."""
        return np.stack(
            [rng.random(shape_per_spot) for rng in self._rngs]
        ).astype(FLOAT_DTYPE)

    def normal(
        self, shape_per_spot: tuple[int, ...], scale: float = 1.0
    ) -> np.ndarray:
        """Gaussian draws, shape ``(n_spots, *shape_per_spot)``."""
        return np.stack(
            [rng.normal(0.0, scale, shape_per_spot) for rng in self._rngs]
        ).astype(FLOAT_DTYPE)

    def integers(self, low: int, high: int, shape_per_spot: tuple[int, ...]) -> np.ndarray:
        """Integer draws in ``[low, high)``, shape ``(n_spots, *shape_per_spot)``."""
        return np.stack(
            [rng.integers(low, high, shape_per_spot) for rng in self._rngs]
        )

    def quaternions(self, k: int) -> np.ndarray:
        """Uniform unit quaternions, shape ``(n_spots, k, 4)``."""
        return np.stack([random_quaternion(rng, k) for rng in self._rngs])

    def small_rotations(self, k: int, max_angle: float) -> np.ndarray:
        """Perturbation quaternions, shape ``(n_spots, k, 4)``."""
        return np.stack(
            [small_random_rotation(rng, max_angle, k) for rng in self._rngs]
        )

    def permutations(self, k: int) -> np.ndarray:
        """Independent permutations of ``range(k)``, shape ``(n_spots, k)``."""
        return np.stack([rng.permutation(k) for rng in self._rngs])
