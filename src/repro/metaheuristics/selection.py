"""``Select(S, Ssel)`` strategies.

All selectors operate per spot and return a new (still evaluated)
:class:`~repro.metaheuristics.population.Population` holding the selected
individuals. The paper's M1–M3 select 100 % of each reference set, "from the
best ones" — i.e. rank-ordered truncation at fraction 1.0.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import MetaheuristicError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.population import Population

__all__ = ["Selection", "IdentitySelection", "BestFraction", "Tournament", "RouletteWheel"]


class Selection(ABC):
    """Chooses ``Ssel`` from the evaluated population ``S``."""

    @abstractmethod
    def select(self, ctx: SearchContext, population: Population) -> Population:
        """Return the selected sub-population (per spot)."""


def _selected_count(k: int, fraction: float) -> int:
    m = max(1, int(round(k * fraction)))
    return min(m, k)


class IdentitySelection(Selection):
    """Select everything *in place* (no reordering).

    Order-preserving selection matters for operators that hold per-index
    state, e.g. PSO velocities: truncation selection sorts individuals,
    which would scramble the index correspondence.
    """

    def select(self, ctx: SearchContext, population: Population) -> Population:
        return population.copy()


class BestFraction(Selection):
    """Truncation selection: the best ``fraction`` of each spot group,
    in ascending-score order."""

    def __init__(self, fraction: float = 1.0) -> None:
        if not 0.0 < fraction <= 1.0:
            raise MetaheuristicError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def select(self, ctx: SearchContext, population: Population) -> Population:
        m = _selected_count(population.size_per_spot, self.fraction)
        order = np.argsort(population.scores, axis=1, kind="stable")[:, :m]
        return population.take(order)


class Tournament(Selection):
    """k-way tournament with replacement, per spot.

    Draws ``count`` tournaments of ``arity`` contestants each; the lowest
    score wins. ``count`` defaults to the population size.
    """

    def __init__(self, arity: int = 2, count: int | None = None) -> None:
        if arity < 2:
            raise MetaheuristicError(f"tournament arity must be >= 2, got {arity}")
        if count is not None and count < 1:
            raise MetaheuristicError(f"tournament count must be >= 1, got {count}")
        self.arity = int(arity)
        self.count = count

    def select(self, ctx: SearchContext, population: Population) -> Population:
        k = population.size_per_spot
        count = k if self.count is None else self.count
        contestants = ctx.rng.integers(0, k, (count, self.arity))  # (s, count, arity)
        rows = np.arange(population.n_spots)[:, None, None]
        scores = population.scores[rows, contestants]  # (s, count, arity)
        winners_pos = np.argmin(scores, axis=2)
        winners = np.take_along_axis(contestants, winners_pos[:, :, None], axis=2)[
            :, :, 0
        ]
        return population.take(winners)


class RouletteWheel(Selection):
    """Fitness-proportional selection on rank-transformed scores.

    Raw LJ scores span many orders of magnitude (clashes), so proportional
    selection on raw values collapses; we use linear rank weights instead
    (best rank gets weight ``k``, worst gets 1).
    """

    def __init__(self, count: int | None = None) -> None:
        if count is not None and count < 1:
            raise MetaheuristicError(f"count must be >= 1, got {count}")
        self.count = count

    def select(self, ctx: SearchContext, population: Population) -> Population:
        s, k = population.n_spots, population.size_per_spot
        count = k if self.count is None else self.count
        order = np.argsort(population.scores, axis=1, kind="stable")
        ranks = np.empty_like(order)
        np.put_along_axis(ranks, order, np.arange(k)[None, :].repeat(s, 0), axis=1)
        weights = (k - ranks).astype(float)  # best -> k, worst -> 1
        cdf = np.cumsum(weights, axis=1)
        cdf /= cdf[:, -1:]
        u = ctx.rng.random((count,))  # (s, count)
        chosen = np.empty((s, count), dtype=np.int64)
        for i in range(s):  # searchsorted is per-row; s is small
            chosen[i] = np.searchsorted(cdf[i], u[i], side="right")
        np.clip(chosen, 0, k - 1, out=chosen)
        return population.take(chosen)
