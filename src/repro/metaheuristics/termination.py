"""End-condition strategies for the metaheuristic template.

Algorithm 1 loops ``while not End(S)``. Implementations receive a
:class:`TerminationState` snapshot each iteration and return True to stop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import MetaheuristicError

__all__ = [
    "TerminationState",
    "EndCondition",
    "MaxIterations",
    "TargetScore",
    "Stagnation",
    "AnyOf",
    "AllOf",
]


@dataclass(frozen=True, slots=True)
class TerminationState:
    """What an end condition may inspect after each iteration.

    Attributes
    ----------
    iteration:
        Completed iterations so far (0 before the first).
    best_score:
        Globally best score seen so far (+inf before first evaluation).
    best_history:
        Best score after each completed iteration.
    """

    iteration: int
    best_score: float
    best_history: tuple[float, ...]


class EndCondition(ABC):
    """``End(S)`` strategy."""

    @abstractmethod
    def should_stop(self, state: TerminationState) -> bool:
        """Return True to leave the template loop."""


class MaxIterations(EndCondition):
    """Stop after a fixed number of iterations (the paper's configuration:
    workload per metaheuristic is fixed so timings are comparable)."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise MetaheuristicError(f"iteration limit must be >= 1, got {limit}")
        self.limit = int(limit)

    def should_stop(self, state: TerminationState) -> bool:
        return state.iteration >= self.limit


class TargetScore(EndCondition):
    """Stop as soon as the best score drops to/below a target."""

    def __init__(self, target: float) -> None:
        self.target = float(target)

    def should_stop(self, state: TerminationState) -> bool:
        return state.best_score <= self.target


class Stagnation(EndCondition):
    """Stop when the best score has not improved by ``min_delta`` over the
    last ``patience`` iterations."""

    def __init__(self, patience: int, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise MetaheuristicError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise MetaheuristicError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)

    def should_stop(self, state: TerminationState) -> bool:
        h = state.best_history
        if len(h) <= self.patience:
            return False
        recent_best = min(h[-self.patience :])
        previous_best = min(h[: -self.patience])
        return not (recent_best < previous_best - self.min_delta) and np.isfinite(
            previous_best
        )


class AnyOf(EndCondition):
    """Stop when *any* member condition fires."""

    def __init__(self, *conditions: EndCondition) -> None:
        if not conditions:
            raise MetaheuristicError("AnyOf needs at least one condition")
        self.conditions = conditions

    def should_stop(self, state: TerminationState) -> bool:
        return any(c.should_stop(state) for c in self.conditions)


class AllOf(EndCondition):
    """Stop only when *all* member conditions fire."""

    def __init__(self, *conditions: EndCondition) -> None:
        if not conditions:
            raise MetaheuristicError("AllOf needs at least one condition")
        self.conditions = conditions

    def should_stop(self, state: TerminationState) -> bool:
        return all(c.should_stop(state) for c in self.conditions)
