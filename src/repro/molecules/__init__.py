"""Molecular substrate: structures, force field, transforms, surface, spots."""

from repro.molecules.elements import Element, get_element, is_known, known_elements
from repro.molecules.flexibility import FlexibleLigand
from repro.molecules.forcefield import ForceField, LJParameters, default_forcefield
from repro.molecules.pdb import dumps_pdb, loads_pdb, read_pdb, write_pdb
from repro.molecules.spots import Spot, farthest_point_sample, find_spots
from repro.molecules.structures import Atom, Ligand, Molecule, Receptor
from repro.molecules.surface import surface_atoms, surface_fraction, surface_mask
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.molecules.topology import (
    bond_graph,
    connected_components,
    infer_bonds,
    is_connected,
    ring_atoms,
    rotatable_bonds,
    topology_summary,
)
from repro.molecules.transforms import (
    apply_pose,
    apply_poses,
    identity_quaternion,
    normalize_quaternion,
    quaternion_conjugate,
    quaternion_from_axis_angle,
    quaternion_multiply,
    quaternion_to_matrix,
    random_quaternion,
    rotate_points,
    small_random_rotation,
)

__all__ = [
    "Atom",
    "Element",
    "FlexibleLigand",
    "ForceField",
    "LJParameters",
    "Ligand",
    "Molecule",
    "Receptor",
    "Spot",
    "apply_pose",
    "bond_graph",
    "connected_components",
    "apply_poses",
    "default_forcefield",
    "dumps_pdb",
    "farthest_point_sample",
    "find_spots",
    "generate_ligand",
    "generate_receptor",
    "get_element",
    "identity_quaternion",
    "infer_bonds",
    "is_connected",
    "is_known",
    "known_elements",
    "loads_pdb",
    "normalize_quaternion",
    "quaternion_conjugate",
    "quaternion_from_axis_angle",
    "quaternion_multiply",
    "quaternion_to_matrix",
    "random_quaternion",
    "read_pdb",
    "ring_atoms",
    "rotatable_bonds",
    "rotate_points",
    "small_random_rotation",
    "surface_atoms",
    "surface_fraction",
    "surface_mask",
    "topology_summary",
    "write_pdb",
]
