"""Periodic-table data for the elements that occur in protein–ligand systems.

Only the biologically relevant subset is tabulated; requesting an unknown
element raises :class:`~repro.errors.MoleculeError` rather than silently
defaulting, because van-der-Waals parameters feed directly into the scoring
function.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MoleculeError


@dataclass(frozen=True, slots=True)
class Element:
    """Immutable per-element data.

    Attributes
    ----------
    symbol:
        IUPAC symbol, canonical capitalisation (``"C"``, ``"Cl"``).
    atomic_number:
        Z.
    mass:
        Standard atomic weight in Dalton.
    vdw_radius:
        Bondi van-der-Waals radius in Å.
    covalent_radius:
        Single-bond covalent radius in Å (used by the synthetic structure
        generator to place bonded atoms at realistic distances).
    """

    symbol: str
    atomic_number: int
    mass: float
    vdw_radius: float
    covalent_radius: float


_ELEMENTS: dict[str, Element] = {
    e.symbol: e
    for e in (
        Element("H", 1, 1.008, 1.20, 0.31),
        Element("C", 6, 12.011, 1.70, 0.76),
        Element("N", 7, 14.007, 1.55, 0.71),
        Element("O", 8, 15.999, 1.52, 0.66),
        Element("F", 9, 18.998, 1.47, 0.57),
        Element("Na", 11, 22.990, 2.27, 1.66),
        Element("Mg", 12, 24.305, 1.73, 1.41),
        Element("P", 15, 30.974, 1.80, 1.07),
        Element("S", 16, 32.06, 1.80, 1.05),
        Element("Cl", 17, 35.45, 1.75, 1.02),
        Element("K", 19, 39.098, 2.75, 2.03),
        Element("Ca", 20, 40.078, 2.31, 1.76),
        Element("Fe", 26, 55.845, 2.44, 1.32),
        Element("Zn", 30, 65.38, 2.10, 1.22),
        Element("Br", 35, 79.904, 1.85, 1.20),
        Element("I", 53, 126.904, 1.98, 1.39),
    )
}

#: Elements a receptor protein is allowed to contain.
PROTEIN_ELEMENTS: tuple[str, ...] = ("H", "C", "N", "O", "S")

#: Elements a drug-like ligand is allowed to contain.
LIGAND_ELEMENTS: tuple[str, ...] = ("H", "C", "N", "O", "S", "P", "F", "Cl", "Br")


def get_element(symbol: str) -> Element:
    """Look up an element by symbol (case-insensitive).

    Raises
    ------
    MoleculeError
        If the element is not in the tabulated biological subset.
    """
    canonical = symbol.strip().capitalize()
    try:
        return _ELEMENTS[canonical]
    except KeyError:
        raise MoleculeError(f"unknown element symbol: {symbol!r}") from None


def known_elements() -> tuple[str, ...]:
    """Return all tabulated element symbols."""
    return tuple(_ELEMENTS)


def is_known(symbol: str) -> bool:
    """Return True when *symbol* names a tabulated element."""
    return symbol.strip().capitalize() in _ELEMENTS
