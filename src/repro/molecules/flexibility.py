"""Torsional ligand flexibility.

The paper docks rigid ligands and flags richer variants as future work
(§6: "we have tested a relatively simple variant of the algorithm").
AutoDock-class engines additionally search the ligand's *torsions* —
rotations about acyclic single bonds. This module provides that degree of
freedom: a :class:`FlexibleLigand` knows its rotatable bonds (from
:mod:`repro.molecules.topology`) and builds conformer coordinates for any
torsion-angle vector, which the pairwise scorers consume via
:meth:`repro.scoring.base.BoundScorer.score_coords`.

Convention: torsion ``k`` rotates the *smaller* fragment of bond
``(i, j)`` about the ``i→j`` axis by ``angles[k]`` radians, relative to the
input geometry. Torsions are applied independently (each moves a disjoint
"downstream" atom set ordered away from the anchor), so application order
does not matter for tree-shaped molecules.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import MoleculeError
from repro.molecules.structures import Ligand
from repro.molecules.topology import bond_graph, rotatable_bonds
from repro.molecules.transforms import quaternion_from_axis_angle, quaternion_to_matrix

__all__ = ["FlexibleLigand"]


class FlexibleLigand:
    """A ligand plus its torsional degrees of freedom.

    Parameters
    ----------
    ligand:
        The rigid template geometry (used as the zero-torsion reference).
    max_torsions:
        Cap on the torsion count (search-space control); the bonds moving
        the largest fragments are kept — they change the shape most.
    """

    def __init__(self, ligand: Ligand, max_torsions: int | None = None) -> None:
        self.ligand = ligand
        self.base_coords = np.ascontiguousarray(
            ligand.coords - ligand.coords.mean(axis=0), dtype=FLOAT_DTYPE
        )
        graph = bond_graph(ligand)
        candidates = rotatable_bonds(ligand)

        # For each rotatable bond, find the atom set downstream of j when
        # the edge (i, j) is cut; rotate the smaller side.
        torsions: list[tuple[int, int, np.ndarray]] = []
        for i, j in candidates:
            graph.remove_edge(i, j)
            side_j = self._component(graph, j)
            graph.add_edge(i, j)
            side_other = set(range(ligand.n_atoms)) - side_j
            if len(side_j) <= len(side_other):
                axis_from, axis_to, moving = i, j, side_j - {j}
            else:
                axis_from, axis_to, moving = j, i, side_other - {i}
            if not moving:
                continue
            torsions.append(
                (axis_from, axis_to, np.array(sorted(moving), dtype=np.int64))
            )

        # Keep the torsions that move the most atoms (largest shape change).
        torsions.sort(key=lambda t: len(t[2]), reverse=True)
        if max_torsions is not None:
            if max_torsions < 0:
                raise MoleculeError(f"max_torsions must be >= 0, got {max_torsions}")
            torsions = torsions[:max_torsions]
        self._torsions = torsions

    @staticmethod
    def _component(graph, start: int) -> set[int]:
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for node in frontier:
                for nb in graph.neighbors(node):
                    if nb not in seen:
                        seen.add(nb)
                        nxt.append(nb)
            frontier = nxt
        return seen

    # ------------------------------------------------------------------
    @property
    def n_torsions(self) -> int:
        """Torsional degrees of freedom."""
        return len(self._torsions)

    @property
    def torsion_bonds(self) -> list[tuple[int, int]]:
        """The ``(axis_from, axis_to)`` atom pairs, one per torsion."""
        return [(a, b) for a, b, _ in self._torsions]

    def moving_atoms(self, torsion: int) -> np.ndarray:
        """Atom indices torsion ``torsion`` rotates."""
        return self._torsions[torsion][2].copy()

    # ------------------------------------------------------------------
    def conformer(self, angles: np.ndarray) -> np.ndarray:
        """Coordinates (centred) for one torsion-angle vector (radians)."""
        angles = np.asarray(angles, dtype=FLOAT_DTYPE)
        if angles.shape != (self.n_torsions,):
            raise MoleculeError(
                f"expected {self.n_torsions} torsion angles, got {angles.shape}"
            )
        coords = self.base_coords.copy()
        for (a, b, moving), angle in zip(self._torsions, angles):
            if angle == 0.0:
                continue
            axis = coords[b] - coords[a]
            norm = np.linalg.norm(axis)
            if norm < 1e-9:  # pragma: no cover - degenerate bond geometry
                continue
            q = quaternion_from_axis_angle(axis, float(angle))
            rot = quaternion_to_matrix(q)
            pivot = coords[b]
            coords[moving] = (coords[moving] - pivot) @ rot.T + pivot
        return coords - coords.mean(axis=0)

    def conformers(self, angle_batch: np.ndarray) -> np.ndarray:
        """``(n, n_torsions)`` angle vectors → ``(n, n_atoms, 3)`` coords."""
        angle_batch = np.asarray(angle_batch, dtype=FLOAT_DTYPE)
        if angle_batch.ndim != 2 or angle_batch.shape[1] != self.n_torsions:
            raise MoleculeError(
                f"angle batch must have shape (n, {self.n_torsions}), "
                f"got {angle_batch.shape}"
            )
        return np.stack([self.conformer(a) for a in angle_batch])

    def bond_lengths_preserved(self, coords: np.ndarray, atol: float = 1e-6) -> bool:
        """Sanity check: torsions are isometries of every bonded pair."""
        from repro.molecules.topology import infer_bonds

        for i, j in infer_bonds(self.ligand):
            d_ref = np.linalg.norm(self.base_coords[i] - self.base_coords[j])
            d_new = np.linalg.norm(coords[i] - coords[j])
            if abs(d_ref - d_new) > atol:
                return False
        return True
