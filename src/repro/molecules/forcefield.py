"""Lennard-Jones force-field parameters and mixing rules.

The paper scores poses with "a scoring function based on the Lennard-Jones
potential" (§3.1). We parameterise LJ 12-6 per *atom class* (element-level
granularity, AutoDock-style magnitudes) and combine unlike pairs with
Lorentz–Berthelot mixing:

* ``sigma_ij  = (sigma_i + sigma_j) / 2``
* ``epsilon_ij = sqrt(epsilon_i * epsilon_j)``

A :class:`ForceField` pre-computes dense per-pair parameter tables for a
(receptor, ligand) atom-type pairing so the inner scoring loop is pure
vectorised arithmetic with no dictionary lookups — the Python analogue of
moving parameters into GPU constant memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import ForceFieldError

__all__ = ["LJParameters", "ForceField", "default_forcefield"]


@dataclass(frozen=True, slots=True)
class LJParameters:
    """Per-atom-class Lennard-Jones parameters.

    Attributes
    ----------
    sigma:
        Zero-crossing distance in Å (``r_min = 2^(1/6) * sigma``).
    epsilon:
        Well depth in kcal/mol.
    """

    sigma: float
    epsilon: float

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise ForceFieldError(f"sigma must be positive, got {self.sigma}")
        if self.epsilon < 0.0:
            raise ForceFieldError(f"epsilon must be non-negative, got {self.epsilon}")


#: Element-class LJ parameters, AutoDock-like magnitudes (sigma from Rii/2^(1/6)).
_DEFAULT_PARAMETERS: dict[str, LJParameters] = {
    "H": LJParameters(sigma=1.78, epsilon=0.020),
    "C": LJParameters(sigma=3.56, epsilon=0.150),
    "N": LJParameters(sigma=3.12, epsilon=0.160),
    "O": LJParameters(sigma=2.85, epsilon=0.200),
    "F": LJParameters(sigma=2.74, epsilon=0.080),
    "Na": LJParameters(sigma=2.09, epsilon=0.175),
    "Mg": LJParameters(sigma=1.16, epsilon=0.875),
    "P": LJParameters(sigma=3.74, epsilon=0.200),
    "S": LJParameters(sigma=3.56, epsilon=0.200),
    "Cl": LJParameters(sigma=3.65, epsilon=0.276),
    "K": LJParameters(sigma=3.04, epsilon=0.035),
    "Ca": LJParameters(sigma=2.68, epsilon=0.550),
    "Fe": LJParameters(sigma=1.16, epsilon=0.010),
    "Zn": LJParameters(sigma=1.75, epsilon=0.550),
    "Br": LJParameters(sigma=3.92, epsilon=0.389),
    "I": LJParameters(sigma=4.19, epsilon=0.550),
}


class ForceField:
    """A table of LJ parameters plus Lorentz–Berthelot pair mixing.

    Parameters
    ----------
    parameters:
        Mapping from atom-class symbol to :class:`LJParameters`. Defaults to
        the built-in AutoDock-like table.
    """

    def __init__(self, parameters: dict[str, LJParameters] | None = None) -> None:
        self._parameters = dict(_DEFAULT_PARAMETERS if parameters is None else parameters)
        if not self._parameters:
            raise ForceFieldError("force field must define at least one atom class")

    @property
    def atom_classes(self) -> tuple[str, ...]:
        """All atom-class symbols this force field parameterises."""
        return tuple(self._parameters)

    def lookup(self, atom_class: str) -> LJParameters:
        """Return the LJ parameters for one atom class.

        Raises
        ------
        ForceFieldError
            If the class is not parameterised.
        """
        try:
            return self._parameters[atom_class]
        except KeyError:
            raise ForceFieldError(
                f"atom class {atom_class!r} is not parameterised; "
                f"known classes: {sorted(self._parameters)}"
            ) from None

    def mix(self, class_a: str, class_b: str) -> LJParameters:
        """Lorentz–Berthelot combination of two atom classes."""
        a = self.lookup(class_a)
        b = self.lookup(class_b)
        return LJParameters(
            sigma=0.5 * (a.sigma + b.sigma),
            epsilon=float(np.sqrt(a.epsilon * b.epsilon)),
        )

    def pair_tables(
        self, classes_a: list[str] | tuple[str, ...], classes_b: list[str] | tuple[str, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense (len(a), len(b)) arrays of mixed ``sigma`` and ``epsilon``.

        This is the precomputation step the CUDA implementation performs once
        per (receptor, ligand) pair before launching scoring kernels.
        """
        sig_a = np.array([self.lookup(c).sigma for c in classes_a], dtype=FLOAT_DTYPE)
        sig_b = np.array([self.lookup(c).sigma for c in classes_b], dtype=FLOAT_DTYPE)
        eps_a = np.array([self.lookup(c).epsilon for c in classes_a], dtype=FLOAT_DTYPE)
        eps_b = np.array([self.lookup(c).epsilon for c in classes_b], dtype=FLOAT_DTYPE)
        sigma = 0.5 * (sig_a[:, None] + sig_b[None, :])
        epsilon = np.sqrt(eps_a[:, None] * eps_b[None, :])
        return sigma, epsilon

    def with_override(self, atom_class: str, parameters: LJParameters) -> "ForceField":
        """Return a copy of this force field with one class replaced/added."""
        table = dict(self._parameters)
        table[atom_class] = parameters
        return ForceField(table)


_DEFAULT_FF: ForceField | None = None


def default_forcefield() -> ForceField:
    """Return the shared default force field (lazily constructed singleton)."""
    global _DEFAULT_FF
    if _DEFAULT_FF is None:
        _DEFAULT_FF = ForceField()
    return _DEFAULT_FF
