"""Minimal PDB-format reader and writer.

Supports the fixed-column ``ATOM``/``HETATM`` records that virtual-screening
pipelines consume, plus ``TITLE``/``END``. This is enough to (a) round-trip
the synthetic 2BSM/2BXG-like structures and (b) load real RCSB files when a
user has them locally.

Column layout follows the PDB v3.3 specification:

====== ======= ==============================
cols   field   notes
====== ======= ==============================
1-6    record  ``ATOM``/``HETATM``
7-11   serial
13-16  name
18-20  resName
22     chainID
23-26  resSeq
31-38  x       %8.3f
39-46  y       %8.3f
47-54  z       %8.3f
55-60  occupancy
61-66  tempFactor
77-78  element right-justified
====== ======= ==============================
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import PDBParseError
from repro.molecules.elements import is_known
from repro.molecules.structures import Ligand, Molecule, Receptor

__all__ = ["read_pdb", "write_pdb", "loads_pdb", "dumps_pdb"]


def _parse_atom_line(line: str, lineno: int) -> tuple[str, float, float, float, str, str, int]:
    """Parse one ATOM/HETATM record into (element, x, y, z, name, resname, resseq)."""
    if len(line) < 54:
        raise PDBParseError(f"line {lineno}: ATOM record too short ({len(line)} chars)")
    try:
        x = float(line[30:38])
        y = float(line[38:46])
        z = float(line[46:54])
    except ValueError as exc:
        raise PDBParseError(f"line {lineno}: bad coordinates: {exc}") from None
    name = line[12:16].strip()
    resname = line[17:20].strip() or "UNK"
    resseq_text = line[22:26].strip()
    try:
        resseq = int(resseq_text) if resseq_text else 1
    except ValueError:
        raise PDBParseError(f"line {lineno}: bad residue number {resseq_text!r}") from None
    element = line[76:78].strip() if len(line) >= 78 else ""
    if not element:
        # Fall back to the atom-name heuristic: first alphabetic character(s).
        stripped = name.lstrip("0123456789")
        if not stripped:
            raise PDBParseError(f"line {lineno}: cannot infer element from name {name!r}")
        element = stripped[:2] if is_known(stripped[:2]) else stripped[0]
    element = element.capitalize()
    if not is_known(element):
        raise PDBParseError(f"line {lineno}: unknown element {element!r}")
    return element, x, y, z, name, resname, resseq


def loads_pdb(text: str, kind: str = "molecule") -> Molecule:
    """Parse a PDB document from a string.

    Parameters
    ----------
    text:
        PDB file contents.
    kind:
        ``"molecule"``, ``"receptor"`` or ``"ligand"`` — selects the returned
        class.
    """
    return read_pdb(io.StringIO(text), kind=kind)


def read_pdb(source: str | Path | TextIO, kind: str = "molecule") -> Molecule:
    """Read a PDB file (path or open text handle) into a molecule.

    Only the first model of multi-model files is read (``ENDMDL`` stops
    parsing).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii", errors="replace") as handle:
            return read_pdb(handle, kind=kind)

    classes = {"molecule": Molecule, "receptor": Receptor, "ligand": Ligand}
    try:
        cls = classes[kind]
    except KeyError:
        raise PDBParseError(f"kind must be one of {sorted(classes)}, got {kind!r}") from None

    coords: list[tuple[float, float, float]] = []
    elements: list[str] = []
    names: list[str] = []
    residues: list[str] = []
    residue_indices: list[int] = []
    title = ""

    for lineno, line in enumerate(source, start=1):
        record = line[:6].strip()
        if record in ("ATOM", "HETATM"):
            element, x, y, z, name, resname, resseq = _parse_atom_line(line, lineno)
            coords.append((x, y, z))
            elements.append(element)
            names.append(name)
            residues.append(resname)
            residue_indices.append(resseq)
        elif record == "TITLE":
            title = (title + " " + line[10:].strip()).strip()
        elif record == "ENDMDL":
            break

    if not coords:
        raise PDBParseError("no ATOM/HETATM records found")
    return cls(
        coords=np.array(coords),
        elements=elements,
        names=names,
        residues=residues,
        residue_indices=np.array(residue_indices),
        title=title,
    )


def dumps_pdb(molecule: Molecule) -> str:
    """Serialise a molecule to PDB text."""
    out = io.StringIO()
    write_pdb(molecule, out)
    return out.getvalue()


def write_pdb(molecule: Molecule, destination: str | Path | TextIO) -> None:
    """Write a molecule as a PDB document.

    Coordinates beyond PDB's fixed-width field range (|x| >= 10000 Å) raise,
    as they would silently corrupt the column layout.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            write_pdb(molecule, handle)
        return

    if np.any(np.abs(molecule.coords) >= 10000.0):
        raise PDBParseError("coordinates exceed the PDB fixed-width field range")

    if molecule.title:
        destination.write(f"TITLE     {molecule.title}\n")
    record = "HETATM" if isinstance(molecule, Ligand) else "ATOM  "
    for i in range(molecule.n_atoms):
        x, y, z = molecule.coords[i]
        name = str(molecule.names[i])[:4]
        # PDB convention: 1-2 char element symbols start in column 14.
        padded_name = f" {name:<3s}" if len(name) < 4 else name
        destination.write(
            f"{record}{(i + 1) % 100000:5d} {padded_name} "
            f"{str(molecule.residues[i])[:3]:<3s} A"
            f"{int(molecule.residue_indices[i]) % 10000:4d}    "
            f"{x:8.3f}{y:8.3f}{z:8.3f}{1.0:6.2f}{0.0:6.2f}          "
            f"{str(molecule.elements[i]):>2s}\n"
        )
    destination.write("END\n")
