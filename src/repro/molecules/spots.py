"""Binding-spot extraction on the receptor surface.

Per the paper (§3.1): "Spots are identified by finding out a specific type of
atoms in the protein. All these spots are independent from each other and,
thus, they offer great opportunities for data-based parallelization."

We therefore (1) find surface atoms of a chosen *anchor element* (oxygen by
default — H-bond acceptors mark plausible binding hot spots), (2) thin them
to ``n_spots`` well-separated representatives with greedy farthest-point
sampling, and (3) attach to each spot an outward normal and a search radius
defining the neighbourhood the metaheuristic explores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import MoleculeError
from repro.molecules.structures import Receptor
from repro.molecules.surface import surface_mask

__all__ = ["Spot", "find_spots", "farthest_point_sample"]

#: Default half-width (Å) of the translation search box around a spot centre.
DEFAULT_SEARCH_RADIUS: float = 5.0

#: How far outside the anchor atom the spot centre is placed (Å), so the
#: ligand starts in solvent rather than inside the protein.
DEFAULT_STANDOFF: float = 3.0


@dataclass(frozen=True, slots=True)
class Spot:
    """One independent docking region on the receptor surface.

    Attributes
    ----------
    index:
        Stable spot id, ``0..n_spots-1``.
    center:
        ``(3,)`` search-region centre in receptor coordinates (Å), offset
        outward from the anchor atom.
    normal:
        ``(3,)`` unit outward direction (from the receptor centroid through
        the anchor atom).
    radius:
        Half-width of the translation search region (Å).
    anchor_atom:
        Index of the receptor atom that seeded this spot.
    """

    index: int
    center: np.ndarray
    normal: np.ndarray
    radius: float
    anchor_atom: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "center", np.ascontiguousarray(self.center, dtype=FLOAT_DTYPE)
        )
        object.__setattr__(
            self, "normal", np.ascontiguousarray(self.normal, dtype=FLOAT_DTYPE)
        )


def farthest_point_sample(points: np.ndarray, k: int, start: int = 0) -> np.ndarray:
    """Greedy farthest-point subsample of ``k`` indices from ``(n, 3)`` points.

    Deterministic given ``start``. Classic 2-approximation of the k-center
    objective; spreads spots evenly over the surface.
    """
    points = np.asarray(points, dtype=FLOAT_DTYPE)
    n = points.shape[0]
    if not 1 <= k <= n:
        raise MoleculeError(f"cannot sample {k} points from {n}")
    chosen = np.empty(k, dtype=np.int64)
    chosen[0] = start
    dist = np.linalg.norm(points - points[start], axis=1)
    for i in range(1, k):
        nxt = int(np.argmax(dist))
        chosen[i] = nxt
        dist = np.minimum(dist, np.linalg.norm(points - points[nxt], axis=1))
    return chosen


def find_spots(
    receptor: Receptor,
    n_spots: int,
    anchor_element: str = "O",
    search_radius: float = DEFAULT_SEARCH_RADIUS,
    standoff: float = DEFAULT_STANDOFF,
) -> list[Spot]:
    """Extract ``n_spots`` independent docking spots from a receptor surface.

    Parameters
    ----------
    receptor:
        Target structure.
    n_spots:
        Number of spots to return.
    anchor_element:
        Element symbol that marks candidate anchors ("a specific type of
        atoms in the protein"). Falls back to *all* surface atoms when the
        element yields fewer candidates than ``n_spots``.
    search_radius:
        Half-width of each spot's translation search region (Å).
    standoff:
        Outward offset of the spot centre from the anchor atom (Å).

    Raises
    ------
    MoleculeError
        If the receptor has fewer surface atoms than ``n_spots``.
    """
    if n_spots < 1:
        raise MoleculeError(f"n_spots must be >= 1, got {n_spots}")
    if search_radius <= 0:
        raise MoleculeError(f"search_radius must be positive, got {search_radius}")

    on_surface = surface_mask(receptor)
    anchors = np.flatnonzero(on_surface & (receptor.elements.astype(str) == anchor_element))
    if anchors.size < n_spots:
        anchors = np.flatnonzero(on_surface)
    if anchors.size < n_spots:
        raise MoleculeError(
            f"receptor exposes only {anchors.size} surface atoms; "
            f"cannot place {n_spots} spots"
        )

    picked = anchors[farthest_point_sample(receptor.coords[anchors], n_spots)]
    centroid = receptor.centroid()
    spots: list[Spot] = []
    for i, atom_index in enumerate(picked):
        outward = receptor.coords[atom_index] - centroid
        norm = np.linalg.norm(outward)
        normal = outward / norm if norm > 1e-9 else np.array([0.0, 0.0, 1.0])
        center = receptor.coords[atom_index] + standoff * normal
        spots.append(
            Spot(
                index=i,
                center=center,
                normal=normal,
                radius=search_radius,
                anchor_atom=int(atom_index),
            )
        )
    return spots
