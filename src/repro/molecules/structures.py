"""Molecular structure containers.

Structure-of-arrays layout: one :class:`numpy.ndarray` per attribute rather
than a list of ``Atom`` objects, because every hot path (scoring, pose
application, surface detection) operates on whole-molecule arrays. An
:class:`Atom` view class exists for ergonomic single-atom access in tests and
I/O code only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import MoleculeError
from repro.molecules.elements import get_element

__all__ = ["Atom", "Molecule", "Receptor", "Ligand"]


@dataclass(frozen=True, slots=True)
class Atom:
    """A single-atom value object (a *copy* of one SoA row, not a view)."""

    element: str
    position: tuple[float, float, float]
    charge: float = 0.0
    name: str = ""
    residue: str = ""
    residue_index: int = 0


class Molecule:
    """A rigid molecule stored as structure-of-arrays.

    Parameters
    ----------
    coords:
        ``(n_atoms, 3)`` float array of positions in Å.
    elements:
        Sequence of ``n_atoms`` element symbols; validated against the
        periodic-table subset in :mod:`repro.molecules.elements`.
    charges:
        Optional partial charges in e; defaults to zeros.
    names:
        Optional per-atom PDB names (e.g. ``"CA"``).
    residues:
        Optional per-atom residue names (e.g. ``"ALA"``).
    residue_indices:
        Optional per-atom residue sequence numbers.
    title:
        Free-form identifier (e.g. ``"2BSM-like receptor"``).
    """

    def __init__(
        self,
        coords: np.ndarray,
        elements: Sequence[str],
        charges: np.ndarray | None = None,
        names: Sequence[str] | None = None,
        residues: Sequence[str] | None = None,
        residue_indices: np.ndarray | None = None,
        title: str = "",
    ) -> None:
        coords = np.ascontiguousarray(coords, dtype=FLOAT_DTYPE)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise MoleculeError(f"coords must have shape (n, 3), got {coords.shape}")
        n = coords.shape[0]
        if n == 0:
            raise MoleculeError("a molecule must contain at least one atom")
        if len(elements) != n:
            raise MoleculeError(
                f"got {len(elements)} element symbols for {n} coordinates"
            )
        if not np.all(np.isfinite(coords)):
            raise MoleculeError("coords contain non-finite values")

        self.coords = coords
        # Canonicalise symbols and validate against the periodic subset.
        self.elements = np.array(
            [get_element(sym).symbol for sym in elements], dtype=object
        )
        if charges is None:
            self.charges = np.zeros(n, dtype=FLOAT_DTYPE)
        else:
            self.charges = np.ascontiguousarray(charges, dtype=FLOAT_DTYPE)
            if self.charges.shape != (n,):
                raise MoleculeError(
                    f"charges must have shape ({n},), got {self.charges.shape}"
                )
        self.names = np.array(
            list(names) if names is not None else [str(e) for e in self.elements],
            dtype=object,
        )
        if self.names.shape != (n,):
            raise MoleculeError(f"names must have length {n}")
        self.residues = np.array(
            list(residues) if residues is not None else ["UNK"] * n, dtype=object
        )
        if self.residues.shape != (n,):
            raise MoleculeError(f"residues must have length {n}")
        if residue_indices is None:
            self.residue_indices = np.ones(n, dtype=np.int64)
        else:
            self.residue_indices = np.ascontiguousarray(residue_indices, dtype=np.int64)
            if self.residue_indices.shape != (n,):
                raise MoleculeError(f"residue_indices must have length {n}")
        self.title = title

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        """Number of atoms."""
        return int(self.coords.shape[0])

    def __len__(self) -> int:
        return self.n_atoms

    def __repr__(self) -> str:
        label = f" {self.title!r}" if self.title else ""
        return f"<{type(self).__name__}{label} n_atoms={self.n_atoms}>"

    def atom(self, index: int) -> Atom:
        """Return a copy of one atom as an :class:`Atom` value object."""
        if not -self.n_atoms <= index < self.n_atoms:
            raise MoleculeError(f"atom index {index} out of range for {self.n_atoms}")
        return Atom(
            element=str(self.elements[index]),
            position=tuple(float(x) for x in self.coords[index]),
            charge=float(self.charges[index]),
            name=str(self.names[index]),
            residue=str(self.residues[index]),
            residue_index=int(self.residue_indices[index]),
        )

    def atoms(self) -> Iterator[Atom]:
        """Iterate over atoms as value objects (slow path; tests/I-O only)."""
        for i in range(self.n_atoms):
            yield self.atom(i)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def centroid(self) -> np.ndarray:
        """Geometric centre (unweighted mean position), shape ``(3,)``."""
        return self.coords.mean(axis=0)

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted centre, shape ``(3,)``."""
        masses = np.array([get_element(str(e)).mass for e in self.elements])
        return (self.coords * masses[:, None]).sum(axis=0) / masses.sum()

    def radius_of_gyration(self) -> float:
        """Root-mean-square distance of atoms from the centroid, in Å."""
        d = self.coords - self.centroid()
        return float(np.sqrt((d * d).sum(axis=1).mean()))

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """``(min_corner, max_corner)`` of the axis-aligned bounding box."""
        return self.coords.min(axis=0), self.coords.max(axis=0)

    def max_radius(self) -> float:
        """Distance from the centroid to the farthest atom, in Å."""
        d = self.coords - self.centroid()
        return float(np.sqrt((d * d).sum(axis=1).max()))

    # ------------------------------------------------------------------
    # transformed copies (molecules themselves are treated as immutable)
    # ------------------------------------------------------------------
    def translated(self, offset: np.ndarray) -> "Molecule":
        """Return a copy translated by ``offset`` (shape ``(3,)``)."""
        offset = np.asarray(offset, dtype=FLOAT_DTYPE)
        if offset.shape != (3,):
            raise MoleculeError(f"offset must have shape (3,), got {offset.shape}")
        return self._replace_coords(self.coords + offset)

    def centered(self) -> "Molecule":
        """Return a copy translated so the centroid sits at the origin."""
        return self.translated(-self.centroid())

    def _replace_coords(self, coords: np.ndarray) -> "Molecule":
        clone = type(self).__new__(type(self))
        clone.coords = np.ascontiguousarray(coords, dtype=FLOAT_DTYPE)
        clone.elements = self.elements
        clone.charges = self.charges
        clone.names = self.names
        clone.residues = self.residues
        clone.residue_indices = self.residue_indices
        clone.title = self.title
        return clone

    def element_counts(self) -> dict[str, int]:
        """Histogram of element symbols (e.g. ``{"C": 1024, ...}``)."""
        symbols, counts = np.unique(self.elements.astype(str), return_counts=True)
        return {str(s): int(c) for s, c in zip(symbols, counts)}


class Receptor(Molecule):
    """The target macromolecule (protein) a ligand is docked against."""


class Ligand(Molecule):
    """A small molecule docked against a :class:`Receptor`.

    Ligands are treated as rigid bodies, as in the paper: a *conformation*
    is a (translation, orientation) placement of the whole ligand.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.n_atoms > 256:
            raise MoleculeError(
                f"ligand has {self.n_atoms} atoms; small molecules are expected "
                "(<= 256 atoms). Did you mean Receptor?"
            )
