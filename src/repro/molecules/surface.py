"""Surface-atom detection.

BINDSURF-style screening "divides the whole protein surface into arbitrary
independent regions (or spots)" (§3.1). The first step is deciding which
atoms lie on the surface. We use a neighbour-density criterion: an atom is a
*surface atom* when fewer than ``threshold`` other atoms fall inside a probe
sphere around it — buried atoms are densely surrounded, surface atoms are
not. A KD-tree makes this ``O(n log n)``.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import MoleculeError
from repro.molecules.structures import Molecule

__all__ = ["surface_mask", "surface_atoms", "surface_fraction"]

#: Probe radius (Å) within which neighbours are counted.
DEFAULT_PROBE_RADIUS: float = 6.0

#: Adaptive burial cut-off: atoms with fewer neighbours than this fraction
#: of the *median* neighbour count are "surface". Interior atoms of a
#: globule see the full probe sphere filled; surface atoms see roughly half
#: of it, so 0.8 × median separates the two populations robustly across
#: structure sizes and densities.
DEFAULT_THRESHOLD_FRACTION: float = 0.8


def surface_mask(
    molecule: Molecule,
    probe_radius: float = DEFAULT_PROBE_RADIUS,
    neighbor_threshold: int | None = None,
    threshold_fraction: float = DEFAULT_THRESHOLD_FRACTION,
) -> np.ndarray:
    """Boolean mask over atoms, True where the atom is on the surface.

    Parameters
    ----------
    molecule:
        Structure to analyse.
    probe_radius:
        Counting sphere radius in Å.
    neighbor_threshold:
        Absolute burial cut-off: an atom with ``< neighbor_threshold``
        neighbours (excluding itself) inside the probe is surface. When
        None (the default), the cut-off adapts to the structure:
        ``threshold_fraction × median neighbour count``.
    threshold_fraction:
        Adaptive cut-off fraction (only used when ``neighbor_threshold`` is
        None).
    """
    if probe_radius <= 0.0:
        raise MoleculeError(f"probe_radius must be positive, got {probe_radius}")
    if neighbor_threshold is not None and neighbor_threshold < 1:
        raise MoleculeError(
            f"neighbor_threshold must be >= 1, got {neighbor_threshold}"
        )
    if not 0.0 < threshold_fraction <= 1.0:
        raise MoleculeError(
            f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
        )
    tree = cKDTree(molecule.coords)
    # query_ball_point counts include the atom itself; subtract one.
    counts = (
        np.array(tree.query_ball_point(molecule.coords, probe_radius, return_length=True))
        - 1
    )
    if neighbor_threshold is None:
        median = float(np.median(counts))
        if median < 8.0:
            # The probe sphere is mostly empty even at the median atom: the
            # molecule has no buried interior — everything is surface.
            return np.ones(molecule.n_atoms, dtype=bool)
        cut = threshold_fraction * median
    else:
        cut = float(neighbor_threshold)
    return counts < cut


def surface_atoms(
    molecule: Molecule,
    probe_radius: float = DEFAULT_PROBE_RADIUS,
    neighbor_threshold: int | None = None,
) -> np.ndarray:
    """Indices of surface atoms (sorted ascending)."""
    return np.flatnonzero(surface_mask(molecule, probe_radius, neighbor_threshold))


def surface_fraction(
    molecule: Molecule,
    probe_radius: float = DEFAULT_PROBE_RADIUS,
    neighbor_threshold: int | None = None,
) -> float:
    """Fraction of atoms classified as surface, in ``[0, 1]``."""
    mask = surface_mask(molecule, probe_radius, neighbor_threshold)
    return float(mask.mean())
