"""Synthetic protein/ligand structure generators.

The paper benchmarks on PDB entries 2BSM and 2BXG (Human Serum Albumin
crystal structures). This environment has no network access to RCSB, so we
generate *structurally realistic stand-ins* with the exact atom counts of the
paper's Table 5:

========== ========= =======
compound   receptor  ligand
========== ========= =======
2BSM       3264      45
2BXG       8609      32
========== ========= =======

Realism requirements (what the docking code actually depends on):

* compact globular packing at protein density (~10 Å³ per heavy atom),
* a residue/backbone organisation (Cα-trace random walk at 3.8 Å steps),
* crystal-structure element composition (heavy atoms only, protein ratios),
* drug-like ligands: connected atom graphs at covalent bond lengths,
* small partial charges with near-zero net charge.

These statistics determine both the scoring cost (``O(n_rec × n_lig)``) and
the shape of the Lennard-Jones landscape the metaheuristics optimise, which
is what the paper's evaluation exercises.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE, default_rng
from repro.errors import MoleculeError
from repro.molecules.elements import get_element
from repro.molecules.structures import Ligand, Receptor

__all__ = [
    "generate_receptor",
    "generate_bound_complex",
    "generate_receptor_with_pocket",
    "generate_ligand",
    "PROTEIN_HEAVY_COMPOSITION",
    "LIGAND_HEAVY_COMPOSITION",
]

#: Heavy-atom element frequencies in globular proteins (crystal structures
#: deposit no hydrogens), approximated from PDB-wide statistics.
PROTEIN_HEAVY_COMPOSITION: dict[str, float] = {
    "C": 0.63,
    "N": 0.17,
    "O": 0.19,
    "S": 0.01,
}

#: Heavy-atom element frequencies for drug-like small molecules.
LIGAND_HEAVY_COMPOSITION: dict[str, float] = {
    "C": 0.70,
    "N": 0.12,
    "O": 0.14,
    "S": 0.02,
    "Cl": 0.01,
    "F": 0.01,
}

#: Mean volume per heavy atom in a folded protein interior (Å³).
_VOLUME_PER_ATOM = 10.0

#: Cα–Cα virtual bond length along a protein backbone (Å).
_CA_STEP = 3.8

#: Average heavy atoms per residue (protein-wide mean ≈ 7.8; we use 8).
_ATOMS_PER_RESIDUE = 8

_RESIDUE_NAMES = (
    "ALA", "ARG", "ASN", "ASP", "CYS", "GLN", "GLU", "GLY", "HIS", "ILE",
    "LEU", "LYS", "MET", "PHE", "PRO", "SER", "THR", "TRP", "TYR", "VAL",
)


def _sample_elements(
    rng: np.random.Generator, n: int, composition: dict[str, float]
) -> list[str]:
    """Draw ``n`` element symbols from a composition distribution."""
    symbols = list(composition)
    probs = np.array([composition[s] for s in symbols], dtype=FLOAT_DTYPE)
    probs = probs / probs.sum()
    return [symbols[i] for i in rng.choice(len(symbols), size=n, p=probs)]


def _confined_walk(rng: np.random.Generator, n_steps: int, radius: float) -> np.ndarray:
    """Random walk of ``n_steps`` points with step ``_CA_STEP`` confined to a
    sphere of ``radius`` — the Cα trace of a compact globule.

    Steps that would exit the sphere are re-drawn (up to a bound); if the walk
    gets stuck it restarts the step towards the centre, which cannot fail.
    """
    points = np.empty((n_steps, 3), dtype=FLOAT_DTYPE)
    points[0] = 0.0
    for i in range(1, n_steps):
        for _ in range(16):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            candidate = points[i - 1] + _CA_STEP * direction
            if np.linalg.norm(candidate) <= radius:
                break
        else:
            # Fall back: step straight towards the centre.
            inward = -points[i - 1]
            norm = np.linalg.norm(inward)
            inward = inward / norm if norm > 1e-9 else np.array([1.0, 0.0, 0.0])
            candidate = points[i - 1] + _CA_STEP * inward
        points[i] = candidate
    return points


def generate_receptor(
    n_atoms: int,
    seed: int | None = None,
    title: str = "synthetic receptor",
) -> Receptor:
    """Generate a globular protein-like receptor with exactly ``n_atoms``.

    The construction: a confined Cα random walk defines residue centres at
    protein density; each residue contributes a cluster of heavy atoms placed
    at covalent-ish distances around its centre; element identities follow
    protein composition; small partial charges are assigned with net charge
    ~0 (side-chain charge pattern).

    Parameters
    ----------
    n_atoms:
        Exact number of atoms in the result.
    seed:
        Deterministic generation seed.
    title:
        Stored in :attr:`Molecule.title`.
    """
    if n_atoms < _ATOMS_PER_RESIDUE:
        raise MoleculeError(
            f"receptor needs at least {_ATOMS_PER_RESIDUE} atoms, got {n_atoms}"
        )
    rng = default_rng(seed)
    n_residues = max(1, n_atoms // _ATOMS_PER_RESIDUE)
    globule_radius = (3.0 * n_atoms * _VOLUME_PER_ATOM / (4.0 * np.pi)) ** (1.0 / 3.0)
    centers = _confined_walk(rng, n_residues, globule_radius)

    # Distribute atoms over residues: base count + remainder spread over the
    # first residues, so the total is exactly n_atoms.
    base = n_atoms // n_residues
    extra = n_atoms % n_residues
    counts = np.full(n_residues, base, dtype=np.int64)
    counts[:extra] += 1

    coords = np.empty((n_atoms, 3), dtype=FLOAT_DTYPE)
    residue_indices = np.empty(n_atoms, dtype=np.int64)
    residues: list[str] = []
    cursor = 0
    residue_choices = rng.choice(len(_RESIDUE_NAMES), size=n_residues)
    for r in range(n_residues):
        k = int(counts[r])
        # First atom of the residue sits on the trace (the "Cα"); the rest
        # scatter at 1.5 Å shells around it (bonded side-chain geometry).
        offsets = rng.normal(size=(k, 3))
        offsets /= np.linalg.norm(offsets, axis=1, keepdims=True)
        shell = 1.5 * np.sqrt(rng.random((k, 1))) * 2.0  # 0..3 Å, crowded near centre
        offsets *= shell
        offsets[0] = 0.0
        coords[cursor : cursor + k] = centers[r] + offsets
        residue_indices[cursor : cursor + k] = r + 1
        residues.extend([_RESIDUE_NAMES[residue_choices[r]]] * k)
        cursor += k

    elements = _sample_elements(rng, n_atoms, PROTEIN_HEAVY_COMPOSITION)
    # Charges: polar atoms (N, O) carry partial charges, carbons near zero.
    charges = np.zeros(n_atoms, dtype=FLOAT_DTYPE)
    for i, sym in enumerate(elements):
        if sym == "N":
            charges[i] = rng.normal(0.25, 0.1)
        elif sym == "O":
            charges[i] = rng.normal(-0.35, 0.1)
        elif sym == "S":
            charges[i] = rng.normal(-0.1, 0.05)
        else:
            charges[i] = rng.normal(0.02, 0.05)
    charges -= charges.mean()  # enforce neutrality

    names = [f"{sym}{i % 100}" for i, sym in enumerate(elements)]
    receptor = Receptor(
        coords=coords,
        elements=elements,
        charges=charges,
        names=names,
        residues=residues,
        residue_indices=residue_indices,
        title=title,
    )
    return receptor.centered()


def generate_ligand(
    n_atoms: int,
    seed: int | None = None,
    title: str = "synthetic ligand",
) -> Ligand:
    """Generate a connected drug-like ligand with exactly ``n_atoms``.

    Atoms are grown one at a time: each new atom bonds to a random existing
    atom at the sum of covalent radii, rejecting placements that clash with
    atoms it is not bonded to. The result is a connected molecular graph with
    realistic bond lengths, centred at the origin (the pose convention of
    :func:`repro.molecules.transforms.apply_pose`).
    """
    if n_atoms < 1:
        raise MoleculeError(f"ligand needs at least one atom, got {n_atoms}")
    rng = default_rng(seed)
    elements = _sample_elements(rng, n_atoms, LIGAND_HEAVY_COMPOSITION)
    coords = np.zeros((n_atoms, 3), dtype=FLOAT_DTYPE)
    radii = np.array([get_element(s).covalent_radius for s in elements])

    for i in range(1, n_atoms):
        placed = False
        for _ in range(64):
            parent = int(rng.integers(0, i))
            bond = radii[i] + radii[parent]
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            candidate = coords[parent] + bond * direction
            # Keep the bond graph a tree: the new atom must bond *only* to
            # its parent. Reject placements within geometric bonding range
            # (covalent sum + tolerance) of any other atom — that is what
            # gives the generated molecules drug-like topology (n−1 bonds,
            # several rotatable bonds) instead of fused clusters.
            d = np.linalg.norm(coords[:i] - candidate, axis=1)
            limits = radii[:i] + radii[i] + 0.5
            d[parent] = np.inf  # the bonded parent is allowed to be close
            if np.all(d >= limits):
                placed = True
                break
        # When no clash-free placement is found within the attempt budget,
        # the last candidate is accepted: one extra contact does not break
        # the LJ landscape and connectivity is preserved either way.
        del placed
        coords[i] = candidate

    charges = rng.normal(0.0, 0.15, size=n_atoms).astype(FLOAT_DTYPE)
    charges -= charges.mean()
    names = [f"{sym}{i + 1}" for i, sym in enumerate(elements)]
    ligand = Ligand(
        coords=coords,
        elements=elements,
        charges=charges,
        names=names,
        residues=["LIG"] * n_atoms,
        residue_indices=np.ones(n_atoms, dtype=np.int64),
        title=title,
    )
    return ligand.centered()


def generate_receptor_with_pocket(
    n_atoms: int,
    pocket_radius: float = 6.0,
    seed: int | None = None,
    title: str = "synthetic receptor with pocket",
) -> tuple[Receptor, np.ndarray]:
    """Generate a receptor with a concave surface *pocket* — a known
    binding site for validating blind whole-surface screening.

    BINDSURF's premise (§2.1) is that screening the entire surface finds
    binding sites no one specified. A testable version of that claim needs
    ground truth: this generator carves a hemispherical cavity into the
    globule's surface. A ligand nestled in the cavity touches receptor
    atoms on most sides, so its Lennard-Jones well is substantially deeper
    than at any convex surface spot — the screening engine should rank the
    pocket first without being told where it is.

    The construction over-generates atoms, removes everything inside the
    pocket sphere, and trims the farthest leftovers so the final count is
    exactly ``n_atoms``.

    Returns
    -------
    (Receptor, numpy.ndarray)
        The receptor (centred) and the pocket-mouth position ``(3,)`` in
        the returned receptor's coordinates.
    """
    if n_atoms < 4 * _ATOMS_PER_RESIDUE:
        raise MoleculeError(
            f"pocket receptors need at least {4 * _ATOMS_PER_RESIDUE} atoms"
        )
    if pocket_radius <= 0:
        raise MoleculeError(f"pocket_radius must be positive, got {pocket_radius}")
    rng = default_rng(seed)

    # Over-generate: the pocket removes roughly its sphere's share of atoms.
    globule_radius = (3.0 * n_atoms * _VOLUME_PER_ATOM / (4.0 * np.pi)) ** (1.0 / 3.0)
    if pocket_radius >= 0.9 * globule_radius:
        raise MoleculeError(
            f"pocket_radius {pocket_radius} does not fit a {n_atoms}-atom "
            f"globule (radius ~{globule_radius:.1f} A); lower pocket_radius"
        )
    overhead = 1.0 + 1.5 * (pocket_radius / globule_radius) ** 3 + 0.15
    base = generate_receptor(
        int(np.ceil(n_atoms * overhead)),
        seed=int(rng.integers(0, 2**31 - 1)),
        title=title,
    )

    # Pocket centre: on the surface shell, along a random direction.
    direction = rng.normal(size=3)
    direction /= np.linalg.norm(direction)
    radius_now = base.max_radius()
    center = direction * (radius_now - 0.55 * pocket_radius)

    d_pocket = np.linalg.norm(base.coords - center, axis=1)
    keep = d_pocket > pocket_radius
    if keep.sum() < n_atoms:
        raise MoleculeError(
            "pocket carving removed too many atoms; lower pocket_radius"
        )
    # Trim the farthest-from-centroid leftovers down to the exact count,
    # preserving the pocket walls (closest to the pocket are kept).
    kept_idx = np.flatnonzero(keep)
    order = np.argsort(d_pocket[kept_idx])  # pocket-wall atoms first
    final_idx = np.sort(kept_idx[order[:n_atoms]])

    receptor = Receptor(
        coords=base.coords[final_idx],
        elements=[str(e) for e in base.elements[final_idx]],
        charges=base.charges[final_idx],
        names=[str(n) for n in base.names[final_idx]],
        residues=[str(r) for r in base.residues[final_idx]],
        residue_indices=base.residue_indices[final_idx],
        title=title,
    )
    shift = receptor.centroid()
    return receptor.centered(), center - shift


def generate_bound_complex(
    n_atoms: int,
    ligand: Ligand,
    seed: int | None = None,
    clearance: float = 3.9,
    burial: float = 0.25,
    title: str = "synthetic co-crystal receptor",
) -> tuple[Receptor, np.ndarray, np.ndarray]:
    """Generate a receptor with a binding site *molded around a ligand pose*
    — a synthetic co-crystal for re-docking experiments.

    The classic docking validation is re-docking: take a complex of known
    geometry, strip the ligand, and ask the engine to recover a pose at
    least as good. This generator manufactures the ground truth: a globule
    is over-generated, the ligand is placed partially buried at the
    surface in a random orientation, every receptor atom closer than
    ``clearance`` (≈ the LJ contact distance) to any ligand atom is
    removed, and the structure is trimmed (farthest-from-site first) to
    exactly ``n_atoms``. The molded cavity's walls start right at van der
    Waals contact, so the reference pose is well-bound by construction.

    Returns
    -------
    (Receptor, numpy.ndarray, numpy.ndarray)
        The receptor (centred), the reference ligand-centroid position
        ``(3,)`` and the reference orientation quaternion ``(4,)``, both in
        the returned receptor's frame.
    """
    if n_atoms < 8 * _ATOMS_PER_RESIDUE:
        raise MoleculeError(
            f"bound complexes need at least {8 * _ATOMS_PER_RESIDUE} atoms"
        )
    if clearance <= 0:
        raise MoleculeError(f"clearance must be positive, got {clearance}")
    if not 0.0 <= burial <= 1.0:
        raise MoleculeError(f"burial must be in [0, 1], got {burial}")
    from repro.molecules.transforms import random_quaternion, rotate_points

    rng = default_rng(seed)
    base = generate_receptor(
        int(np.ceil(n_atoms * 1.15)),
        seed=int(rng.integers(0, 2**31 - 1)),
        title=title,
    )
    lig_centred = ligand.coords - ligand.coords.mean(axis=0)
    orientation = random_quaternion(rng)
    lig_rotated = rotate_points(lig_centred, orientation)

    direction = rng.normal(size=3)
    direction /= np.linalg.norm(direction)
    lig_radius = float(np.linalg.norm(lig_rotated, axis=1).max())
    site_center = direction * (base.max_radius() - burial * lig_radius - 3.0)
    placed = lig_rotated + site_center

    # Distance of every receptor atom to its nearest ligand atom.
    d = np.linalg.norm(
        base.coords[:, None, :] - placed[None, :, :], axis=2
    ).min(axis=1)
    kept = np.flatnonzero(d > clearance)
    if kept.size < n_atoms:
        raise MoleculeError(
            "site carving removed too many atoms; reduce clearance or burial"
        )
    order = np.argsort(d[kept])  # site walls first — trimming spares them
    final = np.sort(kept[order[:n_atoms]])

    receptor = Receptor(
        coords=base.coords[final],
        elements=[str(e) for e in base.elements[final]],
        charges=base.charges[final],
        names=[str(n) for n in base.names[final]],
        residues=[str(r) for r in base.residues[final]],
        residue_indices=base.residue_indices[final],
        title=title,
    )
    shift = receptor.centroid()
    return receptor.centered(), site_center - shift, orientation
