"""Molecular topology: bond inference and graph analysis.

The rigid-body docking core never needs bonds, but the substrate around it
does: the synthetic-ligand generator promises *connected, drug-like*
molecules, the flexible-ligand extension needs rotatable bonds, and
screening reports benefit from descriptors (rings, branching). Bonds are
inferred geometrically — two atoms bond when their distance is below the
sum of covalent radii plus a tolerance — and analysed with :mod:`networkx`.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.spatial import cKDTree

from repro.errors import MoleculeError
from repro.molecules.elements import get_element
from repro.molecules.structures import Molecule

__all__ = [
    "infer_bonds",
    "bond_graph",
    "is_connected",
    "connected_components",
    "rotatable_bonds",
    "ring_atoms",
    "topology_summary",
]

#: Slack added to the covalent-radii sum when classifying a contact as a
#: bond (accounts for generator jitter and real-structure variance).
BOND_TOLERANCE: float = 0.45


def infer_bonds(molecule: Molecule, tolerance: float = BOND_TOLERANCE) -> list[tuple[int, int]]:
    """Geometric bond inference.

    Returns sorted ``(i, j)`` index pairs with ``i < j``. Uses a KD-tree
    with the maximum possible bond length as search radius, so it is
    near-linear in atom count.
    """
    if tolerance < 0:
        raise MoleculeError(f"tolerance must be >= 0, got {tolerance}")
    radii = np.array(
        [get_element(str(e)).covalent_radius for e in molecule.elements]
    )
    max_bond = 2.0 * radii.max() + tolerance
    tree = cKDTree(molecule.coords)
    pairs = tree.query_pairs(max_bond, output_type="ndarray")
    if pairs.size == 0:
        return []
    d = np.linalg.norm(
        molecule.coords[pairs[:, 0]] - molecule.coords[pairs[:, 1]], axis=1
    )
    limit = radii[pairs[:, 0]] + radii[pairs[:, 1]] + tolerance
    keep = pairs[d <= limit]
    return [(int(i), int(j)) for i, j in keep]


def bond_graph(molecule: Molecule, tolerance: float = BOND_TOLERANCE) -> nx.Graph:
    """The molecule as an undirected graph (nodes carry ``element``)."""
    graph = nx.Graph()
    for i in range(molecule.n_atoms):
        graph.add_node(i, element=str(molecule.elements[i]))
    graph.add_edges_from(infer_bonds(molecule, tolerance))
    return graph


def is_connected(molecule: Molecule) -> bool:
    """True when the bond graph is a single connected component."""
    graph = bond_graph(molecule)
    return nx.is_connected(graph) if graph.number_of_nodes() > 0 else False


def connected_components(molecule: Molecule) -> list[set[int]]:
    """Atom-index sets of the bond graph's components (largest first)."""
    graph = bond_graph(molecule)
    return sorted(nx.connected_components(graph), key=len, reverse=True)


def ring_atoms(molecule: Molecule) -> set[int]:
    """Atoms that belong to at least one ring (cycle basis union)."""
    graph = bond_graph(molecule)
    atoms: set[int] = set()
    for cycle in nx.cycle_basis(graph):
        atoms.update(cycle)
    return atoms


def rotatable_bonds(molecule: Molecule) -> list[tuple[int, int]]:
    """Bonds a flexible-docking engine may rotate about.

    The standard definition: acyclic single bonds whose removal leaves both
    fragments with at least two atoms (rotating a terminal atom is a
    no-op), i.e. bridge edges between non-terminal atoms outside rings.
    """
    graph = bond_graph(molecule)
    in_ring = ring_atoms(molecule)
    bridges = set(nx.bridges(graph)) if graph.number_of_edges() else set()
    rotatable = []
    for i, j in sorted(tuple(sorted(e)) for e in bridges):
        if i in in_ring and j in in_ring:
            continue
        if graph.degree[i] < 2 or graph.degree[j] < 2:
            continue
        rotatable.append((i, j))
    return rotatable


def topology_summary(molecule: Molecule) -> dict[str, int | bool]:
    """Descriptor bundle for reports: bonds, rings, rotatables, connectivity."""
    graph = bond_graph(molecule)
    return {
        "n_atoms": molecule.n_atoms,
        "n_bonds": graph.number_of_edges(),
        "n_components": nx.number_connected_components(graph),
        "connected": nx.is_connected(graph) if graph.number_of_nodes() else False,
        "n_ring_atoms": len(ring_atoms(molecule)),
        "n_rotatable_bonds": len(rotatable_bonds(molecule)),
    }
