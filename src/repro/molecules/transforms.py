"""Rigid-body transforms: unit quaternions and pose application.

A *conformation* in the paper is a copy of the ligand with "a different
position and orientation with respect to each spot" (§3.1). We encode a pose
as 7 floats: a translation vector ``t ∈ R³`` and a unit quaternion
``q = (w, x, y, z)``. All routines are vectorised: they accept arrays of
poses and transform whole batches in one shot.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import MoleculeError

__all__ = [
    "identity_quaternion",
    "normalize_quaternion",
    "random_quaternion",
    "quaternion_from_axis_angle",
    "quaternion_multiply",
    "quaternion_conjugate",
    "quaternion_to_matrix",
    "rotate_points",
    "apply_pose",
    "apply_poses",
    "small_random_rotation",
]

_QUAT_EPS = 1e-12


def identity_quaternion() -> np.ndarray:
    """The no-rotation quaternion ``(1, 0, 0, 0)``."""
    return np.array([1.0, 0.0, 0.0, 0.0], dtype=FLOAT_DTYPE)


def normalize_quaternion(q: np.ndarray) -> np.ndarray:
    """Normalise quaternion(s) to unit length.

    Accepts shape ``(4,)`` or ``(n, 4)``. Zero-norm quaternions raise.
    """
    q = np.asarray(q, dtype=FLOAT_DTYPE)
    norm = np.linalg.norm(q, axis=-1, keepdims=True)
    if np.any(norm < _QUAT_EPS):
        raise MoleculeError("cannot normalise a zero quaternion")
    return q / norm


def random_quaternion(rng: np.random.Generator, n: int | None = None) -> np.ndarray:
    """Uniformly distributed unit quaternion(s) (Shoemake's subgroup method).

    Returns shape ``(4,)`` when ``n is None``, else ``(n, 4)``.
    """
    size = 1 if n is None else n
    u1, u2, u3 = rng.random((3, size))
    a = np.sqrt(1.0 - u1)
    b = np.sqrt(u1)
    q = np.stack(
        [
            a * np.sin(2 * np.pi * u2),
            a * np.cos(2 * np.pi * u2),
            b * np.sin(2 * np.pi * u3),
            b * np.cos(2 * np.pi * u3),
        ],
        axis=-1,
    ).astype(FLOAT_DTYPE)
    return q[0] if n is None else q


def quaternion_from_axis_angle(axis: np.ndarray, angle: float) -> np.ndarray:
    """Quaternion for a rotation of ``angle`` radians about ``axis``."""
    axis = np.asarray(axis, dtype=FLOAT_DTYPE)
    norm = np.linalg.norm(axis)
    if norm < _QUAT_EPS:
        raise MoleculeError("rotation axis must be non-zero")
    axis = axis / norm
    half = 0.5 * angle
    return np.concatenate(([np.cos(half)], np.sin(half) * axis)).astype(FLOAT_DTYPE)


def quaternion_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product ``q1 * q2`` (composition: rotate by q2, then q1).

    Broadcasts over leading dimensions; inputs shape ``(..., 4)``.
    """
    q1 = np.asarray(q1, dtype=FLOAT_DTYPE)
    q2 = np.asarray(q2, dtype=FLOAT_DTYPE)
    w1, x1, y1, z1 = np.moveaxis(q1, -1, 0)
    w2, x2, y2, z2 = np.moveaxis(q2, -1, 0)
    return np.stack(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ],
        axis=-1,
    )


def quaternion_conjugate(q: np.ndarray) -> np.ndarray:
    """Conjugate (= inverse for unit quaternions), shape-preserving."""
    q = np.asarray(q, dtype=FLOAT_DTYPE)
    out = q.copy()
    out[..., 1:] *= -1.0
    return out


def quaternion_to_matrix(q: np.ndarray) -> np.ndarray:
    """Rotation matrix/matrices for unit quaternion(s).

    Input ``(4,)`` → ``(3, 3)``; input ``(n, 4)`` → ``(n, 3, 3)``.
    """
    q = normalize_quaternion(q)
    single = q.ndim == 1
    if single:
        q = q[None, :]
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    m = np.empty((q.shape[0], 3, 3), dtype=FLOAT_DTYPE)
    m[:, 0, 0] = 1 - 2 * (y * y + z * z)
    m[:, 0, 1] = 2 * (x * y - z * w)
    m[:, 0, 2] = 2 * (x * z + y * w)
    m[:, 1, 0] = 2 * (x * y + z * w)
    m[:, 1, 1] = 1 - 2 * (x * x + z * z)
    m[:, 1, 2] = 2 * (y * z - x * w)
    m[:, 2, 0] = 2 * (x * z - y * w)
    m[:, 2, 1] = 2 * (y * z + x * w)
    m[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return m[0] if single else m


def rotate_points(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Rotate ``(n, 3)`` points by one unit quaternion."""
    return np.asarray(points, dtype=FLOAT_DTYPE) @ quaternion_to_matrix(q).T


def apply_pose(points: np.ndarray, translation: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Rotate points about their origin by ``q`` then translate.

    The convention throughout the library: ligand coordinates are stored
    centred at the origin; a pose first orients the ligand, then places its
    centroid at ``translation``.
    """
    return rotate_points(points, q) + np.asarray(translation, dtype=FLOAT_DTYPE)


def apply_poses(
    points: np.ndarray, translations: np.ndarray, quaternions: np.ndarray
) -> np.ndarray:
    """Apply a batch of poses to one point set.

    Parameters
    ----------
    points:
        ``(n_atoms, 3)`` origin-centred coordinates.
    translations:
        ``(n_poses, 3)``.
    quaternions:
        ``(n_poses, 4)`` unit quaternions.

    Returns
    -------
    numpy.ndarray
        ``(n_poses, n_atoms, 3)`` transformed coordinates.
    """
    points = np.asarray(points, dtype=FLOAT_DTYPE)
    translations = np.asarray(translations, dtype=FLOAT_DTYPE)
    quaternions = np.asarray(quaternions, dtype=FLOAT_DTYPE)
    if translations.ndim != 2 or translations.shape[1] != 3:
        raise MoleculeError(
            f"translations must have shape (n, 3), got {translations.shape}"
        )
    if quaternions.ndim != 2 or quaternions.shape[1] != 4:
        raise MoleculeError(
            f"quaternions must have shape (n, 4), got {quaternions.shape}"
        )
    if translations.shape[0] != quaternions.shape[0]:
        raise MoleculeError("translations and quaternions must have equal length")
    mats = quaternion_to_matrix(quaternions)  # (n_poses, 3, 3)
    # (p,3,3) @ (a,3) -> einsum over the shared axis; result (p, a, 3)
    rotated = np.einsum("pij,aj->pai", mats, points)
    return rotated + translations[:, None, :]


def small_random_rotation(
    rng: np.random.Generator, max_angle: float, n: int | None = None
) -> np.ndarray:
    """Random rotation(s) with angle uniform in ``[0, max_angle]``.

    Used by local-search moves: a perturbation quaternion composed onto the
    current orientation.
    """
    size = 1 if n is None else n
    axes = rng.normal(size=(size, 3))
    norms = np.linalg.norm(axes, axis=1, keepdims=True)
    # Resample degenerate axes is overkill at float64; nudge them instead.
    axes = np.where(norms < _QUAT_EPS, np.array([1.0, 0.0, 0.0]), axes / np.maximum(norms, _QUAT_EPS))
    angles = rng.random(size) * max_angle
    half = 0.5 * angles
    q = np.concatenate(
        [np.cos(half)[:, None], np.sin(half)[:, None] * axes], axis=1
    ).astype(FLOAT_DTYPE)
    return q[0] if n is None else q
