"""Runtime telemetry: metrics registry + span tracing for the whole stack.

"You cannot optimize what you cannot observe": the paper's heterogeneous
strategy is built on run-time measurement (the Eq. 1 warm-up), and this
package makes the same discipline available to every layer — the
process-parallel host runtime, the simulated schedulers, the campaign
runner, and the screening API.

Usage is one import away from any hot path::

    from repro import observability as obs

    obs.counter("campaign.ligands.done").inc()
    obs.gauge("host.worker.poses_per_s", worker=3).set(1.2e4)
    obs.histogram("campaign.dock.seconds").observe(0.8)
    with obs.span("warmup", workers=4) as tags:
        tags["elapsed_s"] = run()            # late annotation

The module-level functions proxy a process-global :class:`Telemetry`
session. ``disable()`` swaps every proxy to no-ops (used by the parity
tests and the overhead benchmark); instrumentation must never change
results either way — only observe them. Workers in other processes collect
into their own :class:`Telemetry` and the parent folds their
:meth:`Telemetry.snapshot` back in with :meth:`Telemetry.merge` at join
time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.observability.export import (
    load_snapshot,
    loads_snapshot,
    snapshot_to_json,
    snapshot_to_prometheus,
    snapshot_to_text,
    validate_snapshot,
    write_snapshot,
)
from repro.observability.metrics import (
    DEFAULT_SECONDS_EDGES,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.spans import DEFAULT_MAX_SPANS, SpanRecord, SpanTracer

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "SpanTracer",
    "SpanRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "DEFAULT_SECONDS_EDGES",
    "DEFAULT_MAX_SPANS",
    "get_telemetry",
    "set_telemetry",
    "enabled",
    "enable",
    "disable",
    "disabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "snapshot",
    "merge",
    "reset",
    "load_snapshot",
    "loads_snapshot",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "snapshot_to_text",
    "validate_snapshot",
    "write_snapshot",
    "mark",
    "TelemetrySampler",
    "SERIES_SCHEMA_VERSION",
    "read_series",
    "MetricsServer",
    "CampaignHealth",
    "snapshot_to_trace_events",
    "write_trace",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "flight_recorder",
    "flight_event",
    "flight_dir",
    "dump_flight",
    "reset_flight",
    "read_flight",
    "read_flight_dir",
    "install_flight_signal_dump",
    "DoctorReport",
    "diagnose_campaign",
]


class Telemetry:
    """One telemetry session: a metrics registry plus a span tracer.

    The two share one injectable ``clock`` so span durations and any
    clock-derived metrics are mutually consistent (and deterministic under
    a fake clock in tests).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.registry = MetricsRegistry(clock=clock)
        self.tracer = SpanTracer(clock=clock, max_spans=max_spans)

    # instrument accessors -------------------------------------------------
    def counter(self, name: str, **tags) -> Counter:
        return self.registry.counter(name, **tags)

    def gauge(self, name: str, **tags) -> Gauge:
        return self.registry.gauge(name, **tags)

    def histogram(
        self, name: str, edges: tuple[float, ...] | None = None, **tags
    ) -> Histogram:
        return self.registry.histogram(name, edges=edges, **tags)

    def span(self, name: str, **tags):
        return self.tracer.span(name, **tags)

    # snapshot / merge -----------------------------------------------------
    def snapshot(self) -> dict:
        """Freeze metrics *and* spans into one snapshot document."""
        doc = self.registry.snapshot()
        spans = self.tracer.snapshot()
        doc["spans"] = spans["spans"]
        doc["dropped_spans"] = spans["dropped"]
        return doc

    def merge(self, snapshot: dict) -> None:
        """Fold another session's snapshot document into this one."""
        self.registry.merge(snapshot)
        self.tracer.merge(
            {"spans": snapshot.get("spans", []),
             "dropped": snapshot.get("dropped_spans", 0)}
        )

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()


# ----------------------------------------------------------------------
# process-global session + no-op fallbacks
# ----------------------------------------------------------------------
class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_TELEMETRY = Telemetry()
_ENABLED = True


def get_telemetry() -> Telemetry:
    """The process-global telemetry session (live even while disabled)."""
    return _TELEMETRY


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Swap the global session (tests inject fake-clock sessions); returns it."""
    global _TELEMETRY
    _TELEMETRY = telemetry
    return telemetry


def enabled() -> bool:
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn every module-level proxy into a no-op (parity/overhead runs)."""
    global _ENABLED
    _ENABLED = False


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily disable telemetry (restores the previous state)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


@contextmanager
def _null_span() -> Iterator[dict]:
    yield {}


def counter(name: str, **tags):
    """Global counter (no-op while disabled)."""
    if not _ENABLED:
        return _NULL_INSTRUMENT
    return _TELEMETRY.counter(name, **tags)


def gauge(name: str, **tags):
    """Global gauge (no-op while disabled)."""
    if not _ENABLED:
        return _NULL_INSTRUMENT
    return _TELEMETRY.gauge(name, **tags)


def histogram(name: str, edges: tuple[float, ...] | None = None, **tags):
    """Global histogram (no-op while disabled)."""
    if not _ENABLED:
        return _NULL_INSTRUMENT
    return _TELEMETRY.histogram(name, edges=edges, **tags)


def span(name: str, **tags):
    """Global span context manager (no-op while disabled)."""
    if not _ENABLED:
        return _null_span()
    return _TELEMETRY.span(name, **tags)


def snapshot() -> dict:
    """Snapshot the global session (valid even while disabled)."""
    return _TELEMETRY.snapshot()


def merge(doc: dict) -> None:
    """Merge a worker snapshot into the global session (no-op while disabled)."""
    if _ENABLED:
        _TELEMETRY.merge(doc)


def reset() -> None:
    """Reset the global session (fresh run)."""
    _TELEMETRY.reset()


def mark(reason: str, force: bool = False) -> None:
    """Prompt live samplers for an event-driven sample (no-op otherwise).

    Hot paths call this at natural boundaries — a shard commit, a harvest
    after a parallel launch — so the time series shows worker-session folds
    the moment they land. Without an active
    :class:`~repro.observability.sampler.TelemetrySampler` (or while
    telemetry is disabled) it returns immediately.
    """
    if not _ENABLED:
        return
    from repro.observability import sampler as _sampler

    _sampler.mark_active(reason, force=force)


# Live-pipeline pieces (imported last: they import the symbols above).
from repro.observability.sampler import (  # noqa: E402
    SERIES_SCHEMA_VERSION,
    TelemetrySampler,
    read_series,
)
from repro.observability.serve import CampaignHealth, MetricsServer  # noqa: E402
from repro.observability.trace import (  # noqa: E402
    snapshot_to_trace_events,
    write_trace,
)
from repro.observability.flight import (  # noqa: E402
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    dump_flight,
    flight_dir,
    flight_event,
    flight_recorder,
    install_flight_signal_dump,
    read_flight,
    read_flight_dir,
    reset_flight,
)
from repro.observability.doctor import (  # noqa: E402
    DoctorReport,
    diagnose_campaign,
)
