"""``repro-vs doctor``: post-mortem fusion of a campaign's telemetry trail.

A finished (or crashed, or mysteriously slow) campaign leaves four artifact
families next to its store:

* the shard **journal** (``<store>.journal``) — intent, with wall-clock
  stamps and node attribution;
* the **flight dumps** (``<store>.flight.d/*.flight``) — each process's
  black-box ring of structured events (leases, steals, heartbeats, node
  deaths, fsync stalls, compactions, rebinds);
* the end-of-run **metrics snapshot** (``<store>.metrics.json``);
* optionally a live **series** file written by the sampler.

Each source alone answers one question; fused they answer the one operators
actually ask: *why was this campaign slow or stuck?* The doctor reads all
of them torn-tail-tolerantly (every artifact may have been cut short by the
very failure being diagnosed), runs a fixed battery of analyses, and emits
a :class:`DoctorReport` — sections with a one-line verdict each plus the
evidence lines that back it, renderable as text or JSON.

Import discipline: this module sits in ``repro.observability`` and must not
drag the campaign/cluster stacks in at import time — store access goes
through a function-level import of :mod:`repro.campaign.backends`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObservabilityError
from repro.observability.flight import flight_dir, read_flight_dir
from repro.observability.sampler import read_series

__all__ = ["DoctorReport", "diagnose_campaign"]

#: Bumped on incompatible report-JSON changes.
DOCTOR_SCHEMA_VERSION: int = 1

#: A shard slower than this multiple of the median is "slow" (§slow shards).
_SLOW_SHARD_FACTOR = 3.0
#: Steals/grants ratio above which lease traffic reads as a steal storm.
_STEAL_STORM_RATIO = 0.5
#: Worker share drift vs the Eq. 1 weight that is worth flagging.
_SHARE_DRIFT_WARN = 0.15
#: Mean journal fsync above this (seconds) indicates a struggling disk.
_FSYNC_MEAN_WARN = 0.05


@dataclass
class Section:
    """One analysis: a title, an ``ok``/``warn``/``bad`` verdict, evidence."""

    title: str
    verdict: str = "ok"
    headline: str = ""
    lines: list[str] = field(default_factory=list)

    def to_doc(self) -> dict:
        return {
            "title": self.title,
            "verdict": self.verdict,
            "headline": self.headline,
            "evidence": list(self.lines),
        }


@dataclass
class DoctorReport:
    """The fused post-mortem: sections plus an overall verdict."""

    store_path: str
    generated_wall: float
    sections: list[Section] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """Worst section verdict: ``bad`` > ``warn`` > ``ok``."""
        order = {"ok": 0, "warn": 1, "bad": 2}
        worst = max((order.get(s.verdict, 0) for s in self.sections), default=0)
        return {0: "ok", 1: "warn", 2: "bad"}[worst]

    def to_json(self) -> dict:
        return {
            "schema_version": DOCTOR_SCHEMA_VERSION,
            "store": self.store_path,
            "generated_wall": self.generated_wall,
            "verdict": self.verdict,
            "sections": [s.to_doc() for s in self.sections],
        }

    def to_text(self) -> str:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(self.generated_wall)
        )
        out = [
            f"repro-vs doctor — post-mortem for {self.store_path}",
            f"generated {stamp} UTC — overall verdict: {self.verdict.upper()}",
            "",
        ]
        for section in self.sections:
            out.append(f"== {section.title} [{section.verdict}] ==")
            if section.headline:
                out.append(f"  {section.headline}")
            for line in section.lines:
                out.append(f"    - {line}")
            out.append("")
        return "\n".join(out)


# ----------------------------------------------------------------------
# artifact readers (each tolerates the artifact being absent or torn)
# ----------------------------------------------------------------------
def _read_journal(path: Path) -> list[dict]:
    """Raw journal records; one torn tail line dropped, else raise."""
    if not path.exists():
        return []
    lines = [
        line
        for line in path.read_text(encoding="utf-8").split("\n")
        if line.strip()
    ]
    records: list[dict] = []
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except ValueError as exc:
            if index == len(lines) - 1:
                break  # the expected crash artifact
            raise ObservabilityError(
                f"corrupt journal record at {path}:{index + 1}"
            ) from exc
        records.append(record)
    return records


def _read_metrics(path: Path) -> dict | None:
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def _store_counts(store_path: str) -> dict | None:
    from repro.campaign.backends import open_store  # lazy: import cycle

    try:
        store = open_store(store_path)
    except Exception:
        return None
    try:
        return store.counts()
    finally:
        store.close()


def _flight_events(dumps: list[dict], *kinds: str) -> list[tuple[dict, dict]]:
    """Every (dump, event) across all readable dumps matching ``kinds``."""
    out = []
    for dump in dumps:
        for event in dump.get("events", ()):
            if event.get("kind") in kinds:
                out.append((dump, event))
    return out


def _role(dump: dict) -> str:
    header = dump.get("header") or {}
    return str(header.get("role", Path(str(dump.get("path", "?"))).stem))


def _clock(wall: object) -> str:
    """Wall-clock seconds -> HH:MM:SS UTC, for evidence lines."""
    try:
        return time.strftime("%H:%M:%S", time.gmtime(float(wall)))
    except (TypeError, ValueError):
        return "?"


def _hist_stats(metrics: dict | None, name: str) -> tuple[float, float] | None:
    """(mean, count) of one histogram summed across tag sets, or None."""
    if not metrics:
        return None
    total_sum = total_count = 0.0
    for hist in metrics.get("histograms", ()):
        if hist.get("name") == name:
            total_sum += float(hist.get("sum", 0.0))
            total_count += float(hist.get("count", 0.0))
    if total_count <= 0:
        return None
    return total_sum / total_count, total_count


# ----------------------------------------------------------------------
# analyses
# ----------------------------------------------------------------------
def _analyze_summary(
    store_path: str,
    journal: list[dict],
    dumps: list[dict],
    counts: dict | None,
    metrics: dict | None,
) -> Section:
    section = Section("summary")
    started = {r["shard"] for r in journal if r.get("record") == "shard_start"}
    finished = {r["shard"] for r in journal if r.get("record") == "shard_finish"}
    campaign_done = any(r.get("record") == "campaign_finish" for r in journal)
    if counts:
        section.lines.append(
            f"store: {counts.get('done', 0)} done, "
            f"{counts.get('failed', 0)} failed, "
            f"{counts.get('pending', 0)} pending"
        )
    if journal:
        section.lines.append(
            f"journal: {len(started)} shards started, {len(finished)} finished, "
            f"campaign_finish={'yes' if campaign_done else 'NO'}"
        )
    else:
        section.lines.append("journal: absent or empty")
    readable = [d for d in dumps if "events" in d]
    broken = [d for d in dumps if "error" in d]
    torn = [d for d in readable if d.get("torn")]
    if readable:
        roles = ", ".join(sorted(_role(d) for d in readable))
        section.lines.append(
            f"flight dumps: {len(readable)} readable ({roles})"
            + (f", {len(torn)} with torn tails" if torn else "")
        )
    else:
        section.lines.append("flight dumps: none found")
    for dump in broken:
        section.lines.append(
            f"flight dump unreadable: {dump.get('path')}: {dump.get('error')}"
        )
    if metrics is None:
        section.lines.append(f"metrics snapshot: {store_path}.metrics.json absent")
    if not campaign_done and journal:
        unfinished = sorted(started - finished)
        section.verdict = "warn"
        section.headline = (
            "campaign did not record campaign_finish — "
            f"{len(unfinished)} shard(s) left unfinished"
        )
    else:
        section.headline = "campaign artifacts present and consistent"
    return section


def _analyze_dead_nodes(journal: list[dict], dumps: list[dict]) -> Section:
    section = Section("dead nodes")
    deaths = _flight_events(dumps, "node.dead")
    if not deaths:
        section.headline = "no node deaths recorded"
        return section
    section.verdict = "bad"
    # Per-node journal attribution: last shard each dead node touched.
    for _, event in deaths:
        node = event.get("node")
        reclaimed = event.get("reclaimed") or []
        section.headline = f"node {node} died ({event.get('reason', 'unknown')})"
        section.lines.append(
            f"node {node} died: reason={event.get('reason', 'unknown')}, "
            f"{len(reclaimed)} lease(s) reclaimed "
            f"{sorted(reclaimed)}, {event.get('requeued', 0)} requeued"
        )
        beats = [
            e
            for _, e in _flight_events(dumps, "node.heartbeat")
            if e.get("node") == node
        ]
        if beats:
            section.lines.append(
                f"node {node}: last telemetry heartbeat at "
                f"{_clock(beats[-1].get('wall'))} UTC "
                f"(done={beats[-1].get('done')}, failed={beats[-1].get('failed')})"
            )
        node_shards = [
            r
            for r in journal
            if r.get("node") == node and r.get("record") == "shard_start"
        ]
        if node_shards:
            last = node_shards[-1]
            section.lines.append(
                f"node {node}: journal shows {len(node_shards)} shard start(s); "
                f"last was shard {last.get('shard')} at {_clock(last.get('t'))} UTC"
            )
    if len(deaths) > 1:
        names = sorted({e.get("node") for _, e in deaths})
        section.headline = f"{len(deaths)} node deaths: nodes {names}"
    return section


def _analyze_steals(dumps: list[dict]) -> Section:
    section = Section("work stealing")
    steals = _flight_events(dumps, "steal")
    grants = _flight_events(dumps, "lease.grant")
    if not grants and not steals:
        section.headline = "no lease traffic recorded (single-node run?)"
        return section
    ratio = len(steals) / max(1, len(grants))
    section.lines.append(
        f"{len(grants)} lease grant(s), {len(steals)} steal(s) "
        f"(ratio {ratio:.2f})"
    )
    victims: dict = {}
    for _, event in steals:
        victims[event.get("victim")] = victims.get(event.get("victim"), 0) + 1
    for victim, n in sorted(victims.items(), key=lambda kv: -kv[1]):
        section.lines.append(f"node {victim} was stolen from {n} time(s)")
    if len(grants) > 4 and ratio > _STEAL_STORM_RATIO:
        section.verdict = "warn"
        section.headline = (
            f"steal storm: {ratio:.0%} of grants were steals — node shares "
            "are badly mismatched to real speeds (check Eq. 1 inputs)"
        )
    else:
        section.headline = "steal traffic within normal bounds"
    return section


def _analyze_share_drift(
    metrics: dict | None, series: list[dict]
) -> Section:
    section = Section("Eq. 1 share drift")
    drift: dict = {}
    for record in reversed(series):
        candidate = record.get("derived", {}).get("share_drift")
        if candidate:
            drift = candidate
            break
    if not drift and metrics:
        weights: dict[str, float] = {}
        for gauge in metrics.get("gauges", ()):
            if gauge.get("name") == "host.warmup.weight":
                worker = str(gauge.get("tags", {}).get("worker"))
                weights[worker] = float(gauge.get("value", 0.0))
        poses: dict[str, float] = {}
        for counter in metrics.get("counters", ()):
            if counter.get("name") == "host.worker.poses":
                worker = str(counter.get("tags", {}).get("worker"))
                poses[worker] = poses.get(worker, 0.0) + float(
                    counter.get("value", 0.0)
                )
        total = sum(poses.values())
        if total > 0 and weights:
            drift = {
                w: poses[w] / total - weights[w]
                for w in poses
                if w in weights
            }
    if not drift:
        section.headline = "no per-worker share data (no warmup weights recorded)"
        return section
    worst = max(drift.items(), key=lambda kv: abs(kv[1]))
    for worker, value in sorted(drift.items()):
        section.lines.append(f"worker {worker}: share drift {value:+.3f}")
    if abs(worst[1]) > _SHARE_DRIFT_WARN:
        section.verdict = "warn"
        section.headline = (
            f"worker {worst[0]} drifted {worst[1]:+.1%} from its Eq. 1 "
            "weight — the static plan mispredicts this device"
        )
    else:
        section.headline = (
            f"observed shares track Eq. 1 weights (max drift {worst[1]:+.1%})"
        )
    return section


def _analyze_fsync(metrics: dict | None, dumps: list[dict]) -> Section:
    section = Section("journal fsync")
    stats = _hist_stats(metrics, "campaign.journal.fsync_seconds")
    stalls = _flight_events(dumps, "journal.stall")
    if stats is None and not stalls:
        section.headline = "no fsync data recorded"
        return section
    if stats is not None:
        mean, count = stats
        section.lines.append(
            f"{count:.0f} fsync(s), mean {mean * 1e3:.2f} ms"
        )
    for _, event in stalls:
        section.lines.append(
            f"stall: {event.get('seconds', 0.0):.3f}s flushing "
            f"{event.get('records')} record(s) at {_clock(event.get('wall'))} UTC"
        )
    if stalls or (stats is not None and stats[0] >= _FSYNC_MEAN_WARN):
        section.verdict = "warn"
        section.headline = (
            f"{len(stalls)} fsync stall(s) recorded — journal durability is "
            "contending with the store; consider --journal-batch"
        )
    else:
        section.headline = "fsync latency healthy"
    return section


def _analyze_slow_shards(journal: list[dict], dumps: list[dict]) -> Section:
    section = Section("slow shards")
    finishes = [
        event
        for _, event in _flight_events(dumps, "shard.finish")
        if event.get("wall") is not None
    ]
    if not finishes:
        section.headline = "no shard timings in flight dumps"
        return section
    walls = sorted(float(e["wall"]) for e in finishes)
    median = walls[len(walls) // 2]
    node_of = {
        r.get("shard"): r.get("node")
        for r in journal
        if r.get("record") == "shard_start" and r.get("node") is not None
    }
    slow = [
        e
        for e in finishes
        if median > 0 and float(e["wall"]) > _SLOW_SHARD_FACTOR * median
    ]
    section.lines.append(
        f"{len(finishes)} shard finish(es), median wall {median:.3f}s, "
        f"max {walls[-1]:.3f}s"
    )
    for event in sorted(slow, key=lambda e: -float(e["wall"]))[:5]:
        shard = event.get("shard")
        owner = event.get("node", node_of.get(shard))
        where = f" on node {owner}" if owner is not None else ""
        section.lines.append(
            f"shard {shard}{where}: {float(event['wall']):.3f}s "
            f"({float(event['wall']) / median:.1f}x median)"
        )
    if slow:
        section.verdict = "warn"
        section.headline = (
            f"{len(slow)} shard(s) ran >{_SLOW_SHARD_FACTOR:.0f}x the median — "
            "see per-shard attribution below"
        )
    else:
        section.headline = "shard walls are uniform"
    return section


def _analyze_verdict(
    sections: list[Section], journal: list[dict], dumps: list[dict]
) -> Section:
    """The 'why is this campaign slow/stuck' synthesis."""
    section = Section("diagnosis")
    by_title = {s.title: s for s in sections}
    campaign_done = any(r.get("record") == "campaign_finish" for r in journal)
    deaths = _flight_events(dumps, "node.dead")
    causes: list[str] = []
    if deaths:
        names = sorted({e.get("node") for _, e in deaths})
        recovered = campaign_done
        causes.append(
            f"node(s) {names} died mid-campaign; work was "
            + ("reclaimed and the campaign completed" if recovered
               else "reclaimed but the campaign never finished")
        )
    if by_title.get("work stealing", Section("")).verdict == "warn":
        causes.append("steal storm: initial node shares mismatched real speeds")
    if by_title.get("journal fsync", Section("")).verdict == "warn":
        causes.append("journal fsync stalls added per-shard latency")
    if by_title.get("slow shards", Section("")).verdict == "warn":
        causes.append("a minority of shards dominated wall time")
    if by_title.get("Eq. 1 share drift", Section("")).verdict == "warn":
        causes.append("device shares drifted from the Eq. 1 plan")
    if not campaign_done and journal:
        if not deaths:
            causes.append(
                "campaign stopped without campaign_finish and no node death "
                "was recorded — the coordinator itself likely died"
            )
        section.verdict = "bad"
        section.headline = "campaign is INCOMPLETE"
    elif causes:
        section.verdict = "warn"
        section.headline = "campaign completed, with findings"
    else:
        section.headline = "campaign completed; nothing anomalous found"
    for cause in causes:
        section.lines.append(cause)
    if not causes:
        section.lines.append("no slow/stuck causes identified by any analysis")
    return section


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def diagnose_campaign(
    store_path: str | Path, *, series_path: str | Path | None = None
) -> DoctorReport:
    """Fuse every artifact around ``store_path`` into a :class:`DoctorReport`.

    Raises :class:`ObservabilityError` only when there is *nothing* to
    analyze (no journal, no flight dumps, no metrics snapshot, no store);
    individual missing or torn artifacts merely narrow the report.
    """
    store_path = str(store_path)
    journal = _read_journal(Path(store_path + ".journal"))
    dumps = read_flight_dir(flight_dir(store_path))
    metrics = _read_metrics(Path(store_path + ".metrics.json"))
    series: list[dict] = []
    if series_path is not None:
        series = read_series(series_path)
    counts = _store_counts(store_path)
    if not journal and not dumps and metrics is None and counts is None:
        raise ObservabilityError(
            f"nothing to diagnose at {store_path}: no journal, flight dumps, "
            "metrics snapshot, or readable store found"
        )
    sections = [
        _analyze_summary(store_path, journal, dumps, counts, metrics),
        _analyze_dead_nodes(journal, dumps),
        _analyze_steals(dumps),
        _analyze_share_drift(metrics, series),
        _analyze_fsync(metrics, dumps),
        _analyze_slow_shards(journal, dumps),
    ]
    sections.append(_analyze_verdict(sections, journal, dumps))
    return DoctorReport(
        store_path=store_path,
        generated_wall=time.time(),
        sections=sections,
    )
