"""Snapshot document exporters: JSON, Prometheus textfile, human text.

A *snapshot document* is the combined, JSON-safe freeze of one telemetry
session — counters, gauges, histograms, spans — tagged with a schema
version (the same discipline as ``TRACE_FORMAT_VERSION`` in
:mod:`repro.engine.traceio`). It is what ``--metrics-out`` writes, what
``repro-vs metrics`` reads, and what the Prometheus textfile collector
scrapes.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import ObservabilityError
from repro.observability.metrics import METRICS_SCHEMA_VERSION

__all__ = [
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "snapshot_to_text",
    "load_snapshot",
    "loads_snapshot",
    "write_snapshot",
    "validate_snapshot",
]

_REQUIRED_KEYS = ("schema_version", "counters", "gauges", "histograms", "spans")

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _validate(doc: dict) -> dict:
    if not isinstance(doc, dict):
        raise ObservabilityError("metrics snapshot must be a JSON object")
    version = doc.get("schema_version")
    if version != METRICS_SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported metrics snapshot version {version!r} "
            f"(this library reads {METRICS_SCHEMA_VERSION})"
        )
    for key in _REQUIRED_KEYS:
        if key not in doc:
            raise ObservabilityError(f"metrics snapshot missing {key!r}")
    for family in ("counters", "gauges", "histograms", "spans"):
        if not isinstance(doc[family], list):
            raise ObservabilityError(f"snapshot {family!r} must be a list")
    return doc


def validate_snapshot(doc: dict) -> dict:
    """Public validation entry point (raises ObservabilityError; returns doc)."""
    return _validate(doc)


def snapshot_to_json(snapshot: dict) -> str:
    """Serialise a snapshot document (validated first)."""
    return json.dumps(_validate(snapshot), indent=1, sort_keys=True)


def loads_snapshot(text: str) -> dict:
    """Parse and validate a snapshot document from a JSON string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"invalid metrics snapshot JSON: {exc}") from exc
    return _validate(doc)


def load_snapshot(path: str | Path) -> dict:
    """Read and validate a snapshot document from a file."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read metrics snapshot: {exc}") from exc
    return loads_snapshot(text)


def write_snapshot(snapshot: dict, path: str | Path) -> None:
    """Write a validated snapshot document to ``path``."""
    Path(path).write_text(snapshot_to_json(snapshot), encoding="utf-8")


# ----------------------------------------------------------------------
# Prometheus textfile format
# ----------------------------------------------------------------------
#: ``# HELP`` text per dotted metric name. Families not listed here still
#: get a generic HELP line — the exposition format wants metadata on every
#: family, not just the famous ones.
_HELP: dict[str, str] = {
    "host.poses": "Poses scored by the host runtime",
    "host.queue_wait_seconds": "Seconds tasks waited in the host queue",
    "host.worker.poses": "Poses scored per worker session",
    "campaign.ligands.done": "Ligands completed by the campaign runner",
    "campaign.ligands.failed": "Ligands that exhausted their dock retries",
    "campaign.journal.appends": "Records appended to the campaign journal",
    "campaign.journal.flushes": "Journal group commits (write + fsync)",
    "campaign.journal.fsync_seconds": "Journal fsync latency",
    "campaign.shard.seconds": "Wall seconds per campaign shard",
    "store.disk.bytes": "On-disk footprint of the campaign store",
    "cluster.wire.seconds": "Result wire time from worker send to "
    "coordinator receive",
    "cluster.worker.heartbeats": "Heartbeat frames sent by a worker node",
    "cluster.nodes.lost": "Worker nodes declared dead by the coordinator",
    "span_seconds": "Span durations summarised per span name",
}


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_help_escape(value: str) -> str:
    """Escape HELP text: the format escapes only backslash and newline."""
    return str(value).replace("\\", "\\\\").replace("\n", "\\n")


def _prom_escape(value: object) -> str:
    """Escape one label value per the exposition format.

    Tag values flow in from user-supplied data (ligand titles, file paths),
    so backslashes, double quotes, and newlines must be escaped or a single
    hostile title corrupts the whole scrape. Order matters: backslashes
    first, or the escapes themselves get re-escaped.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(tags: dict, extra: dict | None = None) -> str:
    items = {**tags, **(extra or {})}
    if not items:
        return ""
    body = ",".join(
        f'{_NAME_RE.sub("_", str(k))}="{_prom_escape(v)}"'
        for k, v in sorted(items.items())
    )
    return "{" + body + "}"


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Spans are summarised as a ``repro_span_seconds`` counter pair
    (``_sum``/``_count`` per span name) rather than exported row by row —
    Prometheus is for aggregates; the JSON document keeps the full tree.
    """
    doc = _validate(snapshot)
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str, raw_name: str) -> None:
        if name not in typed:
            typed.add(name)
            help_text = _HELP.get(raw_name, f"repro-vs metric {raw_name}")
            lines.append(f"# HELP {name} {_prom_help_escape(help_text)}")
            lines.append(f"# TYPE {name} {kind}")

    for item in doc["counters"]:
        name = _prom_name(item["name"])
        header(name, "counter", item["name"])
        lines.append(f"{name}{_prom_labels(item['tags'])} {item['value']!r}")
    for item in doc["gauges"]:
        name = _prom_name(item["name"])
        header(name, "gauge", item["name"])
        lines.append(f"{name}{_prom_labels(item['tags'])} {item['value']!r}")
    for item in doc["histograms"]:
        name = _prom_name(item["name"])
        header(name, "histogram", item["name"])
        cumulative = 0
        for edge, count in zip(item["edges"], item["counts"]):
            cumulative += count
            labels = _prom_labels(item["tags"], {"le": f"{edge!r}"})
            lines.append(f"{name}_bucket{labels} {cumulative}")
        cumulative += item["counts"][-1]
        labels = _prom_labels(item["tags"], {"le": "+Inf"})
        lines.append(f"{name}_bucket{labels} {cumulative}")
        lines.append(f"{name}_sum{_prom_labels(item['tags'])} {item['sum']!r}")
        lines.append(f"{name}_count{_prom_labels(item['tags'])} {item['count']}")

    by_name: dict[str, list[dict]] = {}
    for span in doc["spans"]:
        by_name.setdefault(span["name"], []).append(span)
    for span_name in sorted(by_name):
        name = _prom_name("span_seconds")
        header(name, "summary", "span_seconds")
        labels = _prom_labels({"span": span_name})
        total = sum(s["duration_s"] for s in by_name[span_name])
        lines.append(f"{name}_sum{labels} {total!r}")
        lines.append(f"{name}_count{labels} {len(by_name[span_name])}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# human-readable summary
# ----------------------------------------------------------------------
def _fmt_tags(tags: dict) -> str:
    if not tags:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(tags.items())) + "}"


def snapshot_to_text(snapshot: dict) -> str:
    """One metrics snapshot as an aligned, skimmable report."""
    doc = _validate(snapshot)
    lines: list[str] = []
    if doc["counters"]:
        lines.append("counters:")
        for item in sorted(doc["counters"], key=lambda i: (i["name"], _fmt_tags(i["tags"]))):
            lines.append(
                f"  {item['name']}{_fmt_tags(item['tags'])} = {item['value']:g}"
            )
    if doc["gauges"]:
        lines.append("gauges:")
        for item in sorted(doc["gauges"], key=lambda i: (i["name"], _fmt_tags(i["tags"]))):
            lines.append(
                f"  {item['name']}{_fmt_tags(item['tags'])} = {item['value']:g}"
            )
    if doc["histograms"]:
        lines.append("histograms:")
        for item in sorted(doc["histograms"], key=lambda i: (i["name"], _fmt_tags(i["tags"]))):
            mean = item["sum"] / item["count"] if item["count"] else float("nan")
            lines.append(
                f"  {item['name']}{_fmt_tags(item['tags'])}: "
                f"n={item['count']} mean={mean:.6g} sum={item['sum']:.6g}"
            )
    if doc["spans"]:
        lines.append(f"spans ({len(doc['spans'])} recorded, "
                     f"{doc.get('dropped_spans', 0)} dropped):")
        by_name: dict[str, tuple[int, float]] = {}
        for span in doc["spans"]:
            n, total = by_name.get(span["name"], (0, 0.0))
            by_name[span["name"]] = (n + 1, total + span["duration_s"])
        for span_name in sorted(by_name):
            n, total = by_name[span_name]
            lines.append(
                f"  {span_name}: n={n} total={total:.6g}s mean={total / n:.6g}s"
            )
    return "\n".join(lines) if lines else "(empty snapshot)"
