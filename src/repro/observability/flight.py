"""Black-box flight recorder: a bounded ring of structured events.

Coordinators, workers, and single-node campaign runners append small
structured events (leases, steals, heartbeats, retries, compactions,
rebinds, node deaths) to a process-global in-memory ring buffer.  The
ring is bounded, so recording is O(1) and safe on any hot-ish path; the
newest events win, exactly like an aircraft flight recorder.

On clean exit, on SIGTERM, and best-effort when the coordinator detects
a node death, the ring is flushed to a CRC-framed ``*.flight`` dump:

    frame   := header (magic u16, kind u8, length u32, crc32 u32) payload
    kind 1  := JSON header record (schema, role, pid, clock references)
    kind 2  := JSON event record  (seq, t monotonic, wall, kind, fields)

The framing mirrors ``repro.campaign.colstore``: a torn tail (partial
header, partial payload, or a CRC mismatch at end-of-file) is tolerated
and reported, while corruption *before* the end of the file raises
:class:`~repro.errors.ObservabilityError`.  Dumps from a campaign land
in a ``<store>.flight.d/`` directory, one file per process role, where
``repro-vs doctor`` picks them up.

Recording is gated on the telemetry master switch: when
``repro.observability.disable()`` is in effect, :func:`flight_event`
is a no-op, so the recorder stays inside the telemetry overhead budget
and cannot perturb the bitwise science path.
"""
from __future__ import annotations

import json
import os
import signal
import struct
import threading
import time
import zlib
from collections import deque
from pathlib import Path

from repro.errors import ObservabilityError

FLIGHT_SCHEMA_VERSION = 1
DEFAULT_MAX_EVENTS = 4096
FLIGHT_SUFFIX = ".flight"

_FRAME = struct.Struct("<HBII")  # magic, kind, payload length, crc32
_FLIGHT_MAGIC = 0xF117
_K_HEADER = 1
_K_EVENT = 2


class FlightRecorder:
    """Thread-safe bounded ring buffer of structured events."""

    def __init__(
        self,
        role: str = "process",
        *,
        max_events: int = DEFAULT_MAX_EVENTS,
        clock=time.perf_counter,
        wall_clock=time.time,
    ) -> None:
        if max_events < 1:
            raise ObservabilityError("flight recorder needs max_events >= 1")
        self.role = role
        self.max_events = int(max_events)
        self._clock = clock
        self._wall_clock = wall_clock
        self._events: deque[dict] = deque(maxlen=self.max_events)
        self._lock = threading.Lock()
        self._seq = 0
        self._started_wall = wall_clock()
        self._started_clock = clock()

    def record(self, kind: str, **fields) -> None:
        """Append one event; O(1), oldest events are evicted when full."""
        t = self._clock()
        wall = self._wall_clock()
        with self._lock:
            self._seq += 1
            self._events.append(
                {"seq": self._seq, "t": t, "wall": wall, "kind": kind, **fields}
            )

    def events(self) -> list[dict]:
        """The current ring contents, oldest first."""
        with self._lock:
            return [dict(event) for event in self._events]

    @property
    def recorded(self) -> int:
        """Total events ever recorded (>= len(events()) once evicting)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        with self._lock:
            return max(0, self._seq - len(self._events))

    def reset(self, role: str | None = None) -> None:
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._started_wall = self._wall_clock()
            self._started_clock = self._clock()
            if role is not None:
                self.role = role

    def header(self) -> dict:
        with self._lock:
            return {
                "schema_version": FLIGHT_SCHEMA_VERSION,
                "role": self.role,
                "pid": os.getpid(),
                "started_wall": self._started_wall,
                "started_clock": self._started_clock,
                "dumped_wall": self._wall_clock(),
                "recorded": self._seq,
                "dropped": max(0, self._seq - len(self._events)),
            }

    def dump(self, path: str | Path) -> Path:
        """Write the ring to ``path`` as a CRC-framed ``*.flight`` file.

        The write goes through a temp file and ``os.replace`` so readers
        never see a half-written dump from *this* writer; torn tails only
        arise when the process dies mid-write, which the reader tolerates.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        chunks = [_pack_frame(_K_HEADER, _json_bytes(self.header()))]
        for event in self.events():
            chunks.append(_pack_frame(_K_EVENT, _json_bytes(event)))
        tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            handle.write(b"".join(chunks))
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:  # pragma: no cover - platform quirk
                pass
        os.replace(tmp, target)
        return target


def _json_bytes(doc: dict) -> bytes:
    return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode()


def _pack_frame(kind: int, payload: bytes) -> bytes:
    return (
        _FRAME.pack(_FLIGHT_MAGIC, kind, len(payload), zlib.crc32(payload))
        + payload
    )


def read_flight(path: str | Path) -> dict:
    """Read a ``*.flight`` dump, tolerating a torn tail.

    Returns ``{"header": dict | None, "events": [dict, ...], "torn": bool,
    "clean_bytes": int}``.  A partial frame at end-of-file (torn header,
    torn payload, or CRC mismatch on the final frame) sets ``torn`` and
    drops only the tail; corruption anywhere before the end raises
    :class:`ObservabilityError`.
    """
    data = Path(path).read_bytes()
    label = str(path)
    header: dict | None = None
    events: list[dict] = []
    offset = 0
    size = len(data)
    torn = False
    while offset < size:
        if offset + _FRAME.size > size:
            torn = True  # torn frame header at EOF
            break
        magic, kind, length, crc = _FRAME.unpack_from(data, offset)
        if magic != _FLIGHT_MAGIC:
            raise ObservabilityError(
                f"{label}: bad flight frame magic 0x{magic:04x} at byte {offset}"
            )
        end = offset + _FRAME.size + length
        if end > size:
            torn = True  # torn payload at EOF
            break
        payload = data[offset + _FRAME.size : end]
        if zlib.crc32(payload) != crc:
            if end >= size:
                torn = True  # torn final frame
                break
            raise ObservabilityError(
                f"{label}: flight frame CRC mismatch at byte {offset}"
            )
        try:
            doc = json.loads(payload)
        except ValueError as exc:
            raise ObservabilityError(
                f"{label}: undecodable flight payload at byte {offset}: {exc}"
            ) from None
        if kind == _K_HEADER:
            header = doc
        elif kind == _K_EVENT:
            events.append(doc)
        # unknown kinds are skipped for forward compatibility
        offset = end
    return {
        "header": header,
        "events": events,
        "torn": torn,
        "clean_bytes": offset,
    }


# ----------------------------------------------------------------------
# process-global recorder
# ----------------------------------------------------------------------

_RECORDER = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-global flight recorder."""
    return _RECORDER


def reset_flight(role: str | None = None) -> FlightRecorder:
    """Clear the global ring (e.g. at worker start) and retag its role."""
    _RECORDER.reset(role)
    return _RECORDER


def flight_event(kind: str, **fields) -> None:
    """Record one event on the global ring; no-op while telemetry is off."""
    from repro import observability as obs

    if not obs.enabled():
        return
    _RECORDER.record(kind, **fields)


def flight_dir(store_path: str | Path) -> Path:
    """The flight-dump directory convention for a campaign store path."""
    return Path(str(store_path) + ".flight.d")


def dump_flight(path: str | Path) -> Path | None:
    """Best-effort dump of the global ring; never raises."""
    try:
        return _RECORDER.dump(path)
    except OSError:
        return None


def read_flight_dir(directory: str | Path) -> list[dict]:
    """Read every ``*.flight`` dump in a directory, skipping unreadable ones.

    Each entry is the :func:`read_flight` document plus a ``"path"`` key.
    Corrupt files are reported as ``{"path": ..., "error": str}`` rather
    than aborting the whole scan — the doctor wants maximum forensics.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    dumps: list[dict] = []
    for path in sorted(directory.glob("*" + FLIGHT_SUFFIX)):
        try:
            doc = read_flight(path)
        except (ObservabilityError, OSError) as exc:
            dumps.append({"path": str(path), "error": str(exc)})
            continue
        doc["path"] = str(path)
        dumps.append(doc)
    return dumps


def install_flight_signal_dump(path: str | Path) -> bool:
    """Dump the global ring to ``path`` when SIGTERM arrives, then die.

    Returns ``False`` when the handler cannot be installed (non-main
    thread, unsupported platform) — callers treat that as best-effort.
    The previous handler is restored and the signal re-raised so the
    process still terminates with conventional SIGTERM semantics.
    """
    target = Path(path)

    def _handler(signum, frame):  # pragma: no cover - exercised via subprocess
        dump_flight(target)
        signal.signal(signal.SIGTERM, previous or signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):
        return False
    return True


__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "DEFAULT_MAX_EVENTS",
    "FlightRecorder",
    "read_flight",
    "read_flight_dir",
    "flight_recorder",
    "reset_flight",
    "flight_event",
    "flight_dir",
    "dump_flight",
    "install_flight_signal_dump",
]
