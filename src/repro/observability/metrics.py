"""Dependency-free metrics primitives: counters, gauges, histograms.

The registry is the paper's measurement discipline turned into a first-class
subsystem: the heterogeneous strategy assigns work from *measured* device
times (Eq. 1), so the runtime that reproduces it must be able to measure
itself. Three deliberate constraints shape the design:

* **Determinism** — histograms use *fixed* bucket edges chosen at
  registration time, never adaptive ones, so two runs of the same workload
  produce structurally identical snapshots (only observed values differ).
* **Multiprocessing safety** — a registry never crosses a process boundary
  live. Workers collect into their own registry, :meth:`MetricsRegistry.snapshot`
  turns it into a plain JSON-safe dict, and the parent folds it in with
  :meth:`MetricsRegistry.merge` at join time (counters and histogram buckets
  add; gauges keep the merged-in value).
* **Zero result perturbation** — nothing here touches NumPy, RNG state, or
  work ordering. Instrumented and uninstrumented runs are bitwise identical
  by construction (and by the parity test matrix).

Metric identity is ``(name, sorted tags)``; registering the same identity
twice returns the same instrument.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_EDGES",
    "METRICS_SCHEMA_VERSION",
]

#: Bumped on any incompatible snapshot schema change.
METRICS_SCHEMA_VERSION: int = 1

#: Default histogram edges for wall-clock durations in seconds: 1 µs .. ~2 min
#: in multiples of ~4 (fixed, so snapshots are structurally deterministic).
DEFAULT_SECONDS_EDGES: tuple[float, ...] = (
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3, 1.6384e-2,
    6.5536e-2, 0.262144, 1.048576, 4.194304, 16.777216, 67.108864, 134.217728,
)


def _tags_key(tags: dict) -> tuple[tuple[str, str], ...]:
    """Canonical hashable identity for a tag set (values stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in tags.items()))


class Counter:
    """Monotonically increasing count (events, poses, retries)."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: dict) -> None:
        self.name = name
        self.tags = dict(tags)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """Last-written value (a share, a rate, a pool size)."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: dict) -> None:
        self.name = name
        self.tags = dict(tags)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution (durations, batch sizes, queue waits).

    ``counts[i]`` counts observations ``<= edges[i]``; ``counts[-1]`` is the
    overflow (+Inf) bucket. Cumulative bucket values are computed only at
    export time, so ``observe`` stays one bisect + three adds.
    """

    __slots__ = ("name", "tags", "edges", "counts", "sum", "count")

    def __init__(self, name: str, tags: dict, edges: tuple[float, ...]) -> None:
        if not edges:
            raise ObservabilityError(f"histogram {name!r} needs at least one edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ObservabilityError(
                f"histogram {name!r} edges must be strictly increasing: {edges}"
            )
        self.name = name
        self.tags = dict(tags)
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.edges)
        while lo < hi:  # first edge >= value (upper-inclusive buckets)
            mid = (lo + hi) // 2
            if self.edges[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """One process's (or one worker's) collection of instruments.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds; injected by tests to make
        span durations deterministic. Defaults to :func:`time.perf_counter`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        # Registration and merge are locked: the docking pipeline's threads
        # register instruments and fold worker snapshots concurrently, and
        # two racing get-or-creates must never hand out two instruments for
        # one identity (the loser's counts would silently vanish).
        self._reg_lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration (idempotent: same identity returns the same instrument)
    # ------------------------------------------------------------------
    def counter(self, name: str, **tags) -> Counter:
        key = (name, _tags_key(tags))
        found = self._counters.get(key)
        if found is None:
            with self._reg_lock:
                found = self._counters.get(key)
                if found is None:
                    found = self._counters[key] = Counter(name, tags)
        return found

    def gauge(self, name: str, **tags) -> Gauge:
        key = (name, _tags_key(tags))
        found = self._gauges.get(key)
        if found is None:
            with self._reg_lock:
                found = self._gauges.get(key)
                if found is None:
                    found = self._gauges[key] = Gauge(name, tags)
        return found

    def histogram(
        self, name: str, edges: tuple[float, ...] | None = None, **tags
    ) -> Histogram:
        key = (name, _tags_key(tags))
        found = self._histograms.get(key)
        if found is None:
            with self._reg_lock:
                found = self._histograms.get(key)
                if found is None:
                    found = self._histograms[key] = Histogram(
                        name,
                        tags,
                        edges if edges is not None else DEFAULT_SECONDS_EDGES,
                    )
                    return found
        if edges is not None and tuple(edges) != found.edges:
            raise ObservabilityError(
                f"histogram {name!r} re-registered with different edges"
            )
        return found

    # ------------------------------------------------------------------
    # snapshot / merge — the multiprocessing seam
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Freeze every instrument into a JSON-safe dict (no live state)."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": [
                {"name": c.name, "tags": c.tags, "value": c.value}
                for c in self._counters.values()
            ],
            "gauges": [
                {"name": g.name, "tags": g.tags, "value": g.value}
                for g in self._gauges.values()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "tags": h.tags,
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for h in self._histograms.values()
            ],
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's snapshot in: counters/histograms add, gauges set."""
        version = snapshot.get("schema_version")
        if version != METRICS_SCHEMA_VERSION:
            raise ObservabilityError(
                f"cannot merge metrics snapshot version {version!r} "
                f"(this registry speaks {METRICS_SCHEMA_VERSION})"
            )
        for item in snapshot.get("counters", ()):
            self.counter(item["name"], **item["tags"]).value += float(item["value"])
        for item in snapshot.get("gauges", ()):
            self.gauge(item["name"], **item["tags"]).set(item["value"])
        for item in snapshot.get("histograms", ()):
            hist = self.histogram(
                item["name"], edges=tuple(item["edges"]), **item["tags"]
            )
            counts = item["counts"]
            if len(counts) != len(hist.counts):
                raise ObservabilityError(
                    f"histogram {item['name']!r} bucket mismatch on merge"
                )
            for i, n in enumerate(counts):
                hist.counts[i] += int(n)
            hist.sum += float(item["sum"])
            hist.count += int(item["count"])

    def reset(self) -> None:
        """Drop every instrument (fresh run)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
