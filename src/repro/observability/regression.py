"""Benchmark regression gate: diff two ``BENCH_*.json`` artifact sets.

Every benchmark run leaves a schema-versioned ``BENCH_<name>.json`` artifact
behind (``benchmarks/table_utils.py``), but until now nothing *compared*
them — the perf trajectory accumulated unread. This module turns a pair of
artifact sets (baseline vs current, each a directory of BENCH files or a
single file) into an aligned per-metric delta table and a pass/fail
verdict, so CI can refuse a PR that quietly slows a hot path.

Direction inference: most metric names say which way is good.
``*_seconds``/``*_ns``/``overhead*`` regress when they grow;
``*_per_s``/``speedup*``/``throughput*`` regress when they shrink. Metrics
whose name matches neither family are compared and reported but can never
fail the gate — a silent wrong-direction guess would be worse than no gate
at all.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExperimentError

__all__ = [
    "MetricDelta",
    "flatten_metrics",
    "metric_direction",
    "load_artifact_set",
    "compare_sets",
    "format_delta_table",
]

#: The BENCH envelope version this gate reads (mirrors table_utils).
BENCH_FORMAT_VERSION: int = 1

#: Metric-name fragments meaning "lower is better".
_LOWER_BETTER = re.compile(
    r"(seconds|_s$|_ns$|_ms$|_us$|overhead|latency|elapsed|wait|waste|idle)",
)
#: Metric-name fragments meaning "higher is better".
_HIGHER_BETTER = re.compile(
    r"(per_s|per_sec|throughput|speedup|gain|poses_per|ligands_per|ratio)",
)


@dataclass(frozen=True, slots=True)
class MetricDelta:
    """One aligned metric comparison between baseline and current."""

    benchmark: str
    metric: str
    baseline: float | None
    current: float | None
    delta_pct: float | None
    direction: str  # "lower", "higher", or "none" (report-only)
    status: str  # "ok", "regressed", "improved", "new", "missing"


def metric_direction(name: str) -> str:
    """Infer which way a metric should move: 'lower', 'higher', or 'none'.

    Higher-is-better patterns are checked first: ``poses_per_s`` must read
    as a throughput, not as a ``_s``-suffixed duration.
    """
    if _HIGHER_BETTER.search(name):
        return "higher"
    if _LOWER_BETTER.search(name):
        return "lower"
    return "none"


def flatten_metrics(data: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of one artifact's ``data`` tree, dot-keyed.

    Lists are indexed positionally (benchmark case order is deterministic),
    booleans and strings are skipped — they are facts, not metrics.
    """
    out: dict[str, float] = {}
    items: list[tuple[str, object]]
    if isinstance(data, dict):
        items = [(str(k), v) for k, v in data.items()]
    elif isinstance(data, (list, tuple)):
        items = [(str(i), v) for i, v in enumerate(data)]
    else:
        return out
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, (dict, list, tuple)):
            out.update(flatten_metrics(value, path))
    return out


def _load_artifact(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ExperimentError(f"cannot read BENCH artifact: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid BENCH artifact JSON in {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format_version") != BENCH_FORMAT_VERSION:
        raise ExperimentError(
            f"{path} is not a format-version-{BENCH_FORMAT_VERSION} BENCH artifact"
        )
    for key in ("benchmark", "data"):
        if key not in doc:
            raise ExperimentError(f"BENCH artifact {path} missing {key!r}")
    return doc


def load_artifact_set(path: str | Path) -> dict[str, dict]:
    """Load one artifact set: a BENCH file, or a directory of them.

    Returns ``{benchmark_name: artifact_doc}``.
    """
    path = Path(path)
    if path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
        if not files:
            raise ExperimentError(f"no BENCH_*.json artifacts under {path}")
    elif path.is_file():
        files = [path]
    else:
        raise ExperimentError(f"artifact set {path} does not exist")
    out: dict[str, dict] = {}
    for file in files:
        doc = _load_artifact(file)
        out[str(doc["benchmark"])] = doc
    return out


def compare_sets(
    baseline: str | Path,
    current: str | Path,
    threshold_pct: float = 10.0,
) -> list[MetricDelta]:
    """Align two artifact sets metric-by-metric; flag regressions.

    A metric regresses when it moves in its bad direction by strictly more
    than ``threshold_pct`` percent of the baseline value. Metrics present
    on only one side are reported (``new``/``missing``) but never fail.
    """
    if not threshold_pct >= 0:
        raise ExperimentError(f"threshold must be >= 0, got {threshold_pct}")
    base_set = load_artifact_set(baseline)
    cur_set = load_artifact_set(current)
    rows: list[MetricDelta] = []
    for bench in sorted(set(base_set) | set(cur_set)):
        base_metrics = (
            flatten_metrics(base_set[bench]["data"]) if bench in base_set else {}
        )
        cur_metrics = (
            flatten_metrics(cur_set[bench]["data"]) if bench in cur_set else {}
        )
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            base_v = base_metrics.get(metric)
            cur_v = cur_metrics.get(metric)
            direction = metric_direction(metric)
            if base_v is None:
                rows.append(
                    MetricDelta(bench, metric, None, cur_v, None, direction, "new")
                )
                continue
            if cur_v is None:
                rows.append(
                    MetricDelta(bench, metric, base_v, None, None, direction, "missing")
                )
                continue
            if base_v == 0.0:
                delta_pct = 0.0 if cur_v == 0.0 else float("inf")
            else:
                delta_pct = (cur_v - base_v) / abs(base_v) * 100.0
            if direction == "lower":
                bad = delta_pct > threshold_pct
                good = delta_pct < -threshold_pct
            elif direction == "higher":
                bad = delta_pct < -threshold_pct
                good = delta_pct > threshold_pct
            else:
                bad = good = False
            status = "regressed" if bad else ("improved" if good else "ok")
            rows.append(
                MetricDelta(bench, metric, base_v, cur_v, delta_pct, direction, status)
            )
    return rows


def _fmt_value(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def _fmt_delta(delta_pct: float | None) -> str:
    if delta_pct is None:
        return "-"
    return f"{delta_pct:+.1f}%"


def format_delta_table(rows: list[MetricDelta], threshold_pct: float) -> str:
    """Render aligned delta rows; regressions are shouted, noise stays calm."""
    headers = ("benchmark", "metric", "baseline", "current", "delta", "dir", "status")
    table = [
        (
            row.benchmark,
            row.metric,
            _fmt_value(row.baseline),
            _fmt_value(row.current),
            _fmt_delta(row.delta_pct),
            row.direction,
            "REGRESSED" if row.status == "regressed" else row.status,
        )
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table)) if table else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for r in table:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    n_reg = sum(1 for row in rows if row.status == "regressed")
    n_imp = sum(1 for row in rows if row.status == "improved")
    lines.append(
        f"\n{len(rows)} metrics compared (threshold {threshold_pct:g}%): "
        f"{n_reg} regressed, {n_imp} improved"
    )
    return "\n".join(lines)
