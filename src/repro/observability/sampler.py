"""Live time-series sampler: periodic telemetry snapshots as JSONL.

PR 3's telemetry is a single end-of-run snapshot — perfect for post-mortems,
useless for watching a multi-hour campaign. The sampler closes that gap: a
background thread periodically freezes the active :class:`~repro.observability.Telemetry`
session, differences it against the previous sample, and appends one
schema-versioned JSON line per sample to a *series file*. Each record
carries raw totals plus the derived window rates the heterogeneous runtime
is tuned by — poses/s, ligands/s, queue-wait trend, and per-worker share
drift against the Eq. 1 plan weights.

Three properties the rest of the stack depends on:

* **Observation only** — the sampler never mutates the registry, RNG state,
  or work ordering. Runs with and without a live sampler are bitwise
  identical (enforced by the parity matrix in
  ``tests/observability/test_parity.py``).
* **Rates never go negative** — worker-session folds and registry resets can
  make a counter's total jump arbitrarily between samples; window deltas are
  clamped at zero so a fold mid-window reads as a stall, never as negative
  throughput.
* **Torn tails are tolerated** — the series file is append-only JSONL, so a
  killed process leaves at most one truncated final line;
  :func:`read_series` drops it (the same contract as the campaign journal).

Event-driven sampling: hot paths call :func:`mark_active` (via
``obs.mark()``) at natural boundaries — a campaign shard commit, a
host-runtime harvest — so worker-session folds show up in the series at
the moment they merge rather than up to one interval later. Marks are
rate-limited to half the sampling interval unless forced.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable

from repro.errors import ObservabilityError

__all__ = [
    "TelemetrySampler",
    "SERIES_SCHEMA_VERSION",
    "compute_record",
    "read_series",
    "mark_active",
    "active_samplers",
]

#: Bumped on any incompatible series-record schema change.
SERIES_SCHEMA_VERSION: int = 1

#: Live samplers that ``mark_active`` fans out to (see ``obs.mark``).
_ACTIVE: list["TelemetrySampler"] = []
_ACTIVE_LOCK = threading.Lock()


def metric_key(name: str, tags: dict) -> str:
    """Canonical flat key for one instrument: ``name{k=v,...}``."""
    if not tags:
        return str(name)
    body = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return f"{name}{{{body}}}"


def _counter_totals(snapshot: dict) -> dict[str, float]:
    return {
        metric_key(c["name"], c["tags"]): float(c["value"])
        for c in snapshot.get("counters", ())
    }


def _histogram_totals(snapshot: dict) -> dict[str, tuple[float, float]]:
    return {
        metric_key(h["name"], h["tags"]): (float(h["sum"]), float(h["count"]))
        for h in snapshot.get("histograms", ())
    }


def _window_rate(cur: float, prev: float, dt: float) -> float:
    """Per-second rate over one window; clamped so resets read as 0, not <0."""
    return max(0.0, cur - prev) / dt if dt > 0 else 0.0


def _sum_matching(totals: dict[str, float], name: str) -> float:
    """Sum every series of one counter name across its tag sets."""
    return sum(
        v for k, v in totals.items() if k == name or k.startswith(name + "{")
    )


def _worker_series(totals: dict[str, float], name: str) -> dict[str, float]:
    """``worker=N`` tag value -> total, for one per-worker counter/gauge."""
    out: dict[str, float] = {}
    prefix = name + "{"
    for key, value in totals.items():
        if not key.startswith(prefix):
            continue
        for part in key[len(prefix) : -1].split(","):
            if part.startswith("worker="):
                out[part[len("worker=") :]] = value
    return out


def compute_record(
    prev: dict | None,
    snapshot: dict,
    *,
    dt: float,
    seq: int,
    reason: str,
    elapsed_s: float,
    wall_time: float,
) -> dict:
    """Build one series record from consecutive snapshots.

    ``prev`` is the previous sample's ``{"counters": ..., "histograms": ...}``
    totals (or ``None`` for the first sample, which rates against zero).
    Pure function of its inputs — the unit tests drive it directly with
    fabricated snapshots.
    """
    totals = _counter_totals(snapshot)
    hists = _histogram_totals(snapshot)
    prev_totals = prev["counters"] if prev else {}
    prev_hists = prev["histograms"] if prev else {}

    rates = {
        key: _window_rate(value, prev_totals.get(key, 0.0), dt)
        for key, value in totals.items()
    }
    hist_window: dict[str, dict] = {}
    for key, (total_sum, total_count) in hists.items():
        prev_sum, prev_count = prev_hists.get(key, (0.0, 0.0))
        w_count = max(0.0, total_count - prev_count)
        w_sum = max(0.0, total_sum - prev_sum)
        hist_window[key] = {
            "count": w_count,
            "sum": w_sum,
            "mean": (w_sum / w_count) if w_count else None,
        }

    derived: dict = {
        "poses_per_s": sum(
            rate for key, rate in rates.items()
            if key == "host.poses" or key.startswith("host.poses{")
        ),
        "ligands_per_s": rates.get("campaign.ligands.done", 0.0),
    }
    queue = hist_window.get("host.queue_wait_seconds")
    derived["queue_wait_mean_s"] = queue["mean"] if queue else None

    # Per-worker share of this window's poses vs the Eq. 1 plan weight.
    worker_now = _worker_series(totals, "host.worker.poses")
    if worker_now:
        worker_prev = _worker_series(prev_totals, "host.worker.poses")
        deltas = {
            w: max(0.0, v - worker_prev.get(w, 0.0)) for w, v in worker_now.items()
        }
        window_total = sum(deltas.values())
        gauges = {
            metric_key(g["name"], g["tags"]): float(g["value"])
            for g in snapshot.get("gauges", ())
        }
        weights = _worker_series(gauges, "host.warmup.weight")
        if window_total > 0:
            share = {w: d / window_total for w, d in deltas.items()}
            derived["worker_share"] = share
            if weights:
                derived["share_drift"] = {
                    w: s - weights[w] for w, s in share.items() if w in weights
                }

    return {
        "schema_version": SERIES_SCHEMA_VERSION,
        "seq": int(seq),
        "reason": str(reason),
        "wall_time": wall_time,
        "elapsed_s": elapsed_s,
        "window_s": dt,
        "counters": totals,
        "gauges": {
            metric_key(g["name"], g["tags"]): float(g["value"])
            for g in snapshot.get("gauges", ())
        },
        "rates": rates,
        "histograms_window": hist_window,
        "derived": derived,
    }


class TelemetrySampler:
    """Append periodic telemetry samples to a JSONL series file.

    Parameters
    ----------
    path:
        Series file; one JSON record per line, appended and flushed.
    interval_s:
        Sampling period in seconds; must be > 0.
    telemetry:
        A specific :class:`~repro.observability.Telemetry` session to watch,
        or ``None`` for the process-global session (resolved at each sample,
        so ``set_telemetry`` swaps are honoured).
    clock / wall_clock:
        Injectable monotonic and epoch clocks (tests).
    disk_path:
        Optional campaign store path. When set, every sample probes the
        store's on-disk footprint (via the backend-agnostic
        ``store_disk_bytes`` seam) and writes it into the record's gauges
        as ``store.disk.bytes`` — so a series file shows columnar-vs-SQLite
        growth over time even between the runner's shard-boundary gauge
        updates. The probe goes straight into the *record*, never into the
        watched registry, preserving the observation-only contract.

    Use as a context manager (``with TelemetrySampler(...)``) or pair
    :meth:`start`/:meth:`stop`. ``stop`` writes one final sample so a series
    always ends with the run's closing totals.
    """

    def __init__(
        self,
        path: str | Path,
        interval_s: float = 1.0,
        telemetry=None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
        disk_path: str | Path | None = None,
    ) -> None:
        interval_s = float(interval_s)
        if not interval_s > 0:
            raise ObservabilityError(
                f"sampler interval must be > 0 seconds, got {interval_s}"
            )
        self.path = Path(path)
        self.interval_s = interval_s
        if disk_path is not None and str(disk_path) == ":memory:":
            disk_path = None
        self.disk_path = disk_path
        self._telemetry = telemetry
        self._clock = clock
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._prev: dict | None = None
        self._seq = 0
        self._t0 = clock()
        self._last_sample_t = self._t0
        self.last_record: dict | None = None

    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        if self._telemetry is not None:
            session = self._telemetry
        else:
            from repro import observability as obs

            session = obs.get_telemetry()
        # The watched session is mutated by other threads; registering a new
        # instrument mid-iteration raises RuntimeError. Reads never corrupt —
        # retry the freeze a few times rather than locking the hot path.
        for _ in range(5):
            try:
                return session.snapshot()
            except RuntimeError:
                continue
        return session.snapshot()

    def _disk_bytes(self) -> float | None:
        """Probe the store's on-disk size; None when unset or unreadable."""
        if self.disk_path is None:
            return None
        from repro.campaign.backends import store_disk_bytes  # lazy: cycle

        try:
            return float(store_disk_bytes(self.disk_path))
        except Exception:
            return None

    def sample(self, reason: str = "interval") -> dict:
        """Take one sample now; append it to the series file; return it."""
        with self._lock:
            now = self._clock()
            snapshot = self._snapshot()
            record = compute_record(
                self._prev,
                snapshot,
                dt=max(0.0, now - self._last_sample_t),
                seq=self._seq,
                reason=reason,
                elapsed_s=now - self._t0,
                wall_time=self._wall_clock(),
            )
            disk_bytes = self._disk_bytes()
            if disk_bytes is not None:
                record["gauges"]["store.disk.bytes"] = disk_bytes
            self._prev = {
                "counters": _counter_totals(snapshot),
                "histograms": _histogram_totals(snapshot),
            }
            self._seq += 1
            self._last_sample_t = now
            self.last_record = record
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
            return record

    def mark(self, reason: str, force: bool = False) -> None:
        """Event-driven sample; rate-limited to interval/2 unless forced."""
        if not force and self._clock() - self._last_sample_t < self.interval_s / 2:
            return
        self.sample(reason)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TelemetrySampler":
        """Begin background sampling (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-sampler", daemon=True
        )
        with _ACTIVE_LOCK:
            _ACTIVE.append(self)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample("interval")
            except Exception:  # a sampling hiccup must never kill the run
                pass

    def stop(self) -> None:
        """Stop the thread and write one final sample. Idempotent."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=max(5.0, 2 * self.interval_s))
        with _ACTIVE_LOCK:
            if self in _ACTIVE:
                _ACTIVE.remove(self)
        self.sample("final")

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# event-driven marks (fanned out from obs.mark)
# ----------------------------------------------------------------------
def active_samplers() -> tuple[TelemetrySampler, ...]:
    """Currently started samplers (the ``obs.mark`` fan-out set)."""
    with _ACTIVE_LOCK:
        return tuple(_ACTIVE)


def mark_active(reason: str, force: bool = False) -> None:
    """Ask every active sampler for an event-driven sample."""
    if not _ACTIVE:  # fast path: no live sampler, nothing to do
        return
    for sampler in active_samplers():
        try:
            sampler.mark(reason, force=force)
        except Exception:
            pass


# ----------------------------------------------------------------------
# reading a series back
# ----------------------------------------------------------------------
def read_series(path: str | Path) -> list[dict]:
    """Parse a series file; tolerate one torn final line (crash tail).

    A record that fails to parse anywhere *before* the tail is real
    corruption and raises :class:`ObservabilityError`; an unparsable final
    line is the expected artifact of a killed writer and is dropped.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read metrics series: {exc}") from exc
    records: list[dict] = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                break  # torn tail: the writer died mid-append
            raise ObservabilityError(
                f"corrupt metrics series record at line {i + 1}: {exc}"
            ) from exc
        version = record.get("schema_version")
        if version != SERIES_SCHEMA_VERSION:
            raise ObservabilityError(
                f"unsupported series record version {version!r} at line {i + 1} "
                f"(this library reads {SERIES_SCHEMA_VERSION})"
            )
        records.append(record)
    return records
