"""Zero-dependency HTTP scrape endpoint: ``/metrics`` and ``/healthz``.

The Prometheus textfile rendering already exists (:mod:`repro.observability.export`);
this module puts it behind a socket so a running campaign can be scraped
instead of inspected post-mortem. Built entirely on :mod:`http.server` —
no third-party web framework, matching the rest of the observability
stack's stdlib-only discipline.

* ``GET /metrics`` — the watched telemetry session in the Prometheus text
  exposition format (label values scrape-safely escaped).
* ``GET /healthz`` — liveness JSON. When a :class:`CampaignHealth` is wired
  in, it carries campaign progress: shard index, done/failed counts, the
  current ligands/s, and an ETA taken from the live sampler's rate window
  when one is attached (falling back to the runner's session rate).

Binding to port 0 picks an ephemeral port (exposed as ``server.port``
after :meth:`MetricsServer.start`), which is how the integration tests run
a real scrape against a docking campaign without port collisions.
"""

from __future__ import annotations

import errno
import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.errors import ObservabilityError
from repro.observability.export import snapshot_to_prometheus

__all__ = ["MetricsServer", "CampaignHealth"]

#: Prometheus text exposition content type.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _json_safe(value):
    """Replace NaN/Inf with None so /healthz always emits strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class CampaignHealth:
    """Mutable progress holder feeding ``/healthz`` while a campaign runs.

    Wire :meth:`update` as (one of) the runner's ``progress`` callbacks;
    every shard refreshes the snapshot the handler serves. ``sampler`` may
    be a live :class:`~repro.observability.sampler.TelemetrySampler`; its
    latest window rate then drives the ETA instead of the runner's
    whole-session average (a long warm-up stops skewing the estimate).
    """

    def __init__(self, total_shards: int | None = None, sampler=None) -> None:
        self.total_shards = total_shards
        self.sampler = sampler
        self._lock = threading.Lock()
        self._progress = None
        self._status = "starting"

    def update(self, progress) -> None:
        """Record one CampaignProgress-shaped snapshot (thread-safe)."""
        with self._lock:
            self._progress = progress
            self._status = "running"

    def finish(self, status: str = "complete") -> None:
        with self._lock:
            self._status = status

    @staticmethod
    def _pool_idle_fraction(elapsed_seconds) -> float | None:
        """Fraction of the session the worker pool sat fully idle.

        Derived from the ``host.pool.idle.seconds`` counter (accumulated by
        the host runtime whenever no launch is in flight) over campaign
        elapsed time, so the doctor and a future multi-tenant server can see
        saturation: near 0.0 means the docking pipeline keeps the pool busy,
        near 1.0 means workers are waiting on the host. ``None`` before any
        elapsed time (or without a worker pool the counter stays 0, which
        reads as fully saturated serial execution).
        """
        from repro import observability as obs

        if not elapsed_seconds or elapsed_seconds <= 0:
            return None
        idle = obs.counter("host.pool.idle.seconds").value
        return min(1.0, idle / float(elapsed_seconds))

    def health(self) -> dict:
        """The ``/healthz`` document for the current state."""
        with self._lock:
            progress = self._progress
            status = self._status
        doc: dict = {"status": status, "total_shards": self.total_shards}
        if progress is not None:
            eta = progress.eta_seconds
            rate = progress.ligands_per_second
            record = self.sampler.last_record if self.sampler is not None else None
            if record is not None:
                window_rate = record["derived"].get("ligands_per_s") or 0.0
                if window_rate > 0 and progress.total is not None:
                    remaining = max(
                        0, progress.total - progress.done - progress.failed
                    )
                    eta = remaining / window_rate
                    rate = window_rate
            doc["campaign"] = {
                "shard": progress.shard_id,
                "done": progress.done,
                "failed": progress.failed,
                "total": progress.total,
                "elapsed_seconds": progress.elapsed_seconds,
                "ligands_per_second": rate,
                "eta_seconds": eta,
                "pool_idle_fraction": self._pool_idle_fraction(
                    progress.elapsed_seconds
                ),
            }
            # Distributed campaigns report a per-node table
            # (ClusterProgress.nodes): id, state, weight, done/failed, plus
            # the early-warning columns lease_queue_depth and
            # last_heartbeat_age_s — a node whose heartbeat age climbs
            # toward the death timeout is visibly stalling here before the
            # coordinator's death detection ever fires. Rows pass through
            # verbatim so new coordinator columns appear without edits.
            nodes = getattr(progress, "nodes", None)
            if nodes:
                doc["nodes"] = [dict(node) for node in nodes]
        return _json_safe(doc)


class _Handler(BaseHTTPRequestHandler):
    """Serves /metrics and /healthz from the owning server's callables."""

    server_version = "repro-vs-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = snapshot_to_prometheus(self.server.snapshot_fn())
                self._reply(200, _METRICS_CONTENT_TYPE, body.encode("utf-8"))
            elif path == "/healthz":
                health_fn = self.server.health_fn
                doc = health_fn() if health_fn is not None else {"status": "ok"}
                self._reply(
                    200,
                    "application/json",
                    json.dumps(_json_safe(doc), sort_keys=True).encode("utf-8"),
                )
            else:
                self._reply(404, "text/plain; charset=utf-8", b"not found\n")
        except Exception as exc:  # a scrape must never kill the server
            self._reply(
                500, "text/plain; charset=utf-8", f"error: {exc}\n".encode("utf-8")
            )

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # impatient scraper
            pass

    def log_message(self, fmt, *args) -> None:  # silence per-request noise
        pass


class MetricsServer:
    """A background HTTP server exposing one telemetry session.

    Parameters
    ----------
    port:
        TCP port; 0 binds an ephemeral one (read ``.port`` after start).
    host:
        Bind address; loopback by default — exposing a run beyond the local
        machine is an explicit decision.
    snapshot_fn:
        Zero-argument callable returning a snapshot document. Defaults to
        the process-global session's live snapshot, so ``/metrics`` always
        reflects the run in progress. Pass e.g.
        ``lambda: load_snapshot(path)`` to serve a snapshot file instead
        (textfile-collector mode, re-read on every scrape).
    health_fn:
        Zero-argument callable returning the ``/healthz`` JSON document
        (e.g. :meth:`CampaignHealth.health`); omitted → ``{"status": "ok"}``.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        snapshot_fn: Callable[[], dict] | None = None,
        health_fn: Callable[[], dict] | None = None,
    ) -> None:
        if not 0 <= int(port) <= 65535:
            raise ObservabilityError(f"port must be in [0, 65535], got {port}")
        self.host = host
        self._requested_port = int(port)
        self.port: int | None = None
        if snapshot_fn is None:
            from repro import observability as obs

            snapshot_fn = obs.snapshot
        self._snapshot_fn = snapshot_fn
        self._health_fn = health_fn
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    #: Bind retries on EADDRINUSE — a just-stopped server (or the previous
    #: campaign's scrape endpoint) can hold the port for a beat.
    _BIND_ATTEMPTS = 5
    _BIND_BACKOFF_S = 0.2

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        """Bind and serve in a daemon thread (idempotent).

        A fixed port that is momentarily occupied is retried with
        exponential backoff; a port that stays occupied raises an
        :class:`~repro.errors.ObservabilityError` naming it.
        """
        if self._server is not None:
            return self
        delay = self._BIND_BACKOFF_S
        for attempt in range(1, self._BIND_ATTEMPTS + 1):
            try:
                server = ThreadingHTTPServer(
                    (self.host, self._requested_port), _Handler
                )
                break
            except OSError as exc:
                in_use = exc.errno == errno.EADDRINUSE
                if in_use and attempt < self._BIND_ATTEMPTS:
                    time.sleep(delay)
                    delay *= 2
                    continue
                detail = (
                    f"port {self._requested_port} is already in use "
                    f"(gave up after {attempt} attempts); pass a different "
                    "--serve-metrics port, or 0 for an ephemeral one"
                    if in_use
                    else str(exc)
                )
                raise ObservabilityError(
                    f"cannot bind metrics server to "
                    f"{self.host}:{self._requested_port}: {detail}"
                ) from exc
        server.daemon_threads = True
        server.snapshot_fn = self._snapshot_fn
        server.health_fn = self._health_fn
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever, name="metrics-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release the socket. Idempotent."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def url(self) -> str:
        """Base URL once started (e.g. ``http://127.0.0.1:43121``)."""
        if self.port is None:
            raise ObservabilityError("metrics server is not started")
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
